"""Pytest bootstrap for running the suite from a source checkout.

The test-suite and the benchmarks import :mod:`repro` as an installed
package (``pip install -e .``).  In fully offline environments the editable
install may be unavailable (pip's build isolation cannot download
``setuptools``); inserting ``src/`` into ``sys.path`` keeps ``pytest`` usable
straight from the repository in that case.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
