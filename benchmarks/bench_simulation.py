#!/usr/bin/env python3
"""Benchmark of the PR-3 dense simulation core on the Figure 6 workload.

Measures, on the quick-scale Figure 6 task ensemble (paired ``C_off``
sweep over large random DAGs, ``n in [100, 250]``, original + transformed
variants, ``m in {2, 8}``):

* **reference trace engine** -- ``simulate(...).makespan()``: object-keyed
  dispatch, one ``NodeExecution`` per node, full trace assembly;
* **dense fast path** -- ``simulate_makespan_dense`` per call: integer
  dense indices, preallocated arrays, no trace;
* **batched dense path** -- ``simulate_many`` (serial, like-for-like
  ``jobs``): one compile per task variant serving every ``(cores,
  variant)`` cell.

Every makespan must be bit-identical across the three paths; the
acceptance threshold requires the batched dense path to be at least
``SPEEDUP_TARGET`` times faster end-to-end than the reference engine.
Aggregated results are written to ``BENCH_PR3.json`` at the repository
root, extending the performance trajectory of ``BENCH_PR1.json`` (cached
graph kernel) and ``BENCH_PR2.json`` (exact-makespan oracles).

``--vectorized`` benchmarks the PR-4 lockstep kernel instead: the full
quick-scale figure 6 ensemble (all six fractions, original + transformed
variants) simulated on the figure's four host sizes (``m in {2, 4, 8,
16}``), comparing the batched dense path (``simulate_many(...,
engine="dense")``, the PR-3 fast path) against the vectorised default.
Results go to ``BENCH_PR4.json``; with ``--smoke`` the run enforces the
``VECTORIZED_SPEEDUP_TARGET`` acceptance (>= 2x over the dense batched
path, makespans bit-identical) for CI.

Run with:  python benchmarks/bench_simulation.py  [--vectorized] [--smoke]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core.transformation import transform  # noqa: E402
from repro.experiments.config import quick_scale  # noqa: E402
from repro.generator.config import OffloadConfig  # noqa: E402
from repro.generator.presets import LARGE_TASKS_FIG6  # noqa: E402
from repro.generator.sweep import chunked_offload_fraction_sweep  # noqa: E402
from repro.simulation.batch import simulate_many  # noqa: E402
from repro.simulation.dense import simulate_makespan_dense  # noqa: E402
from repro.simulation.engine import simulate  # noqa: E402
from repro.simulation.platform import Platform  # noqa: E402
from repro.simulation.schedulers import BreadthFirstPolicy  # noqa: E402

OUTPUT = _REPO_ROOT / "BENCH_PR3.json"
OUTPUT_VECTORIZED = _REPO_ROOT / "BENCH_PR4.json"

#: Acceptance threshold: the batched dense path must be at least this many
#: times faster than the reference trace engine on the Figure 6 workload.
SPEEDUP_TARGET = 3.0

#: Acceptance threshold of ``--vectorized``: the lockstep kernel must be at
#: least this many times faster than the batched dense path.
VECTORIZED_SPEEDUP_TARGET = 2.0


#: Timed repetitions per path; the best (minimum) time is reported, which
#: makes the smoke gate robust against scheduler noise on shared CI runners.
REPEATS = 3


def figure6_workload(smoke: bool) -> tuple[list, list[Platform]]:
    """Original + transformed tasks of a quick-scale Figure 6 sweep point."""
    scale = quick_scale()
    fractions = [0.2] if smoke else [0.04, 0.2, 0.5]
    dags_per_point = 6 if smoke else scale.dags_per_point
    points = chunked_offload_fraction_sweep(
        fractions=fractions,
        dags_per_point=dags_per_point,
        generator_config=LARGE_TASKS_FIG6,
        offload_config=OffloadConfig(),
        root_seed=scale.seed,
    )
    tasks = [task for point in points for task in point.tasks]
    tasks = tasks + [transform(task).task for task in tasks]
    platforms = [Platform(cores, 1) for cores in scale.core_counts]
    return tasks, platforms


def _best_of(run, repeats: int = REPEATS) -> tuple[float, object]:
    best_s, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def bench_reference(tasks: list, platforms: list[Platform]) -> tuple[float, list]:
    policy = BreadthFirstPolicy()
    return _best_of(
        lambda: [
            simulate(task, platform, policy).makespan()
            for task in tasks
            for platform in platforms
        ]
    )


def bench_dense(tasks: list, platforms: list[Platform]) -> tuple[float, list]:
    policy = BreadthFirstPolicy()
    return _best_of(
        lambda: [
            simulate_makespan_dense(task, platform, policy)
            for task in tasks
            for platform in platforms
        ]
    )


def bench_batched(tasks: list, platforms: list[Platform]) -> tuple[float, list]:
    # engine="dense" pins the PR-3 fast path: this benchmark's comparison
    # is reference engine vs dense paths, not the PR-4 lockstep kernel.
    elapsed, grid = _best_of(
        lambda: simulate_many(tasks, platforms, BreadthFirstPolicy(), engine="dense")
    )
    return elapsed, [float(value) for value in grid.reshape(-1)]


def vectorized_workload() -> tuple[list, list[Platform]]:
    """The full quick-scale figure 6 ensemble on the figure's host sizes.

    All six quick-scale fractions with both variants (the ensemble the
    rewired figure 6 driver actually simulates), on the four host sizes the
    figure plots -- 576 cells, the batch regime the lockstep kernel is
    built for.
    """
    scale = quick_scale()
    points = chunked_offload_fraction_sweep(
        fractions=scale.fractions,
        dags_per_point=scale.dags_per_point,
        generator_config=LARGE_TASKS_FIG6,
        offload_config=OffloadConfig(),
        root_seed=scale.seed,
    )
    tasks = [task for point in points for task in point.tasks]
    tasks = tasks + [transform(task).task for task in tasks]
    platforms = [Platform(cores, 1) for cores in (2, 4, 8, 16)]
    return tasks, platforms


def main_vectorized(smoke: bool) -> dict:
    tasks, platforms = vectorized_workload()
    simulations = len(tasks) * len(platforms)
    node_counts = [task.node_count for task in tasks]

    # Warm both paths once (compiled-view caches, allocator) before timing;
    # best-of-5 keeps the CI gate robust against scheduler noise.
    simulate_many(tasks, platforms, BreadthFirstPolicy())
    dense_s, dense_grid = _best_of(
        lambda: simulate_many(
            tasks, platforms, BreadthFirstPolicy(), engine="dense"
        ),
        repeats=5,
    )
    vectorized_s, vectorized_grid = _best_of(
        lambda: simulate_many(tasks, platforms, BreadthFirstPolicy()),
        repeats=5,
    )
    identical = np.array_equal(dense_grid, vectorized_grid)
    speedup = dense_s / max(vectorized_s, 1e-9)

    document = {
        "benchmark": "vectorized_simulation",
        "pr": 4,
        "description": (
            "Vectorised lockstep kernel (simulate_many default; "
            "simulation/vectorized.py) vs the PR-3 dense batched path on "
            "the quick-scale figure 6 ensemble over the figure's four host "
            "sizes (see docs/performance.md)."
        ),
        "smoke": smoke,
        "simulations": simulations,
        "tasks": len(tasks),
        "platforms": [platform.host_cores for platform in platforms],
        "mean_nodes": float(np.mean(node_counts)),
        "dense_batched_s": dense_s,
        "vectorized_batched_s": vectorized_s,
        "vectorized_speedup": speedup,
        "makespans_identical": bool(identical),
        "acceptance": {
            "speedup": speedup,
            "speedup_target": VECTORIZED_SPEEDUP_TARGET,
            "speedup_met": speedup >= VECTORIZED_SPEEDUP_TARGET,
            "makespans_identical": bool(identical),
        },
    }

    print(
        f"figure 6 workload: {simulations} simulations "
        f"({len(tasks)} task variants x m in "
        f"{[p.host_cores for p in platforms]}, "
        f"mean n = {document['mean_nodes']:.0f})"
    )
    print(
        f"dense batched: {dense_s * 1000:.1f} ms | vectorized batched: "
        f"{vectorized_s * 1000:.1f} ms (x{speedup:.2f})"
    )
    if not smoke:
        OUTPUT_VECTORIZED.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"results written to {OUTPUT_VECTORIZED}")
    accepted = document["acceptance"]
    print(
        f"acceptance: vectorized x{accepted['speedup']:.2f} "
        f"(target x{accepted['speedup_target']:.1f}) -> "
        f"{'PASS' if accepted['speedup_met'] else 'FAIL'}; "
        f"makespans identical -> "
        f"{'PASS' if accepted['makespans_identical'] else 'FAIL'}"
    )
    return document


def main() -> dict:
    smoke = "--smoke" in sys.argv
    tasks, platforms = figure6_workload(smoke)
    simulations = len(tasks) * len(platforms)
    node_counts = [task.node_count for task in tasks]

    reference_s, reference = bench_reference(tasks, platforms)
    dense_s, dense = bench_dense(tasks, platforms)
    batched_s, batched = bench_batched(tasks, platforms)

    identical = reference == dense == batched
    speedup = reference_s / max(batched_s, 1e-9)
    per_call_speedup = reference_s / max(dense_s, 1e-9)

    document = {
        "benchmark": "dense_simulation",
        "pr": 3,
        "description": (
            "Trace-free dense-index simulation core (simulate_makespan_dense "
            "+ batched simulate_many with one compile per task variant) vs "
            "the object-keyed trace engine, on the quick-scale Figure 6 "
            "workload (see docs/performance.md)."
        ),
        "smoke": smoke,
        "simulations": simulations,
        "tasks": len(tasks),
        "platforms": [platform.host_cores for platform in platforms],
        "mean_nodes": float(np.mean(node_counts)),
        "reference_engine_s": reference_s,
        "dense_per_call_s": dense_s,
        "dense_batched_s": batched_s,
        "per_call_speedup": per_call_speedup,
        "batched_speedup": speedup,
        "makespans_identical": identical,
        "acceptance": {
            "speedup": speedup,
            "speedup_target": SPEEDUP_TARGET,
            "speedup_met": speedup >= SPEEDUP_TARGET,
            "makespans_identical": identical,
        },
    }

    print(
        f"figure 6 workload: {simulations} simulations "
        f"({len(tasks)} task variants x m in "
        f"{[p.host_cores for p in platforms]}, "
        f"mean n = {document['mean_nodes']:.0f})"
    )
    print(
        f"reference trace engine: {reference_s:.2f}s | dense per-call: "
        f"{dense_s:.2f}s (x{per_call_speedup:.1f}) | dense batched: "
        f"{batched_s:.2f}s (x{speedup:.1f})"
    )
    if not smoke:
        OUTPUT.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"results written to {OUTPUT}")
    accepted = document["acceptance"]
    print(
        f"acceptance: dense batched x{accepted['speedup']:.1f} "
        f"(target x{accepted['speedup_target']:.0f}) -> "
        f"{'PASS' if accepted['speedup_met'] else 'FAIL'}; "
        f"makespans identical -> "
        f"{'PASS' if accepted['makespans_identical'] else 'FAIL'}"
    )
    return document


if __name__ == "__main__":
    if "--vectorized" in sys.argv:
        result = main_vectorized("--smoke" in sys.argv)
    else:
        result = main()
    accepted = result["acceptance"]
    if not (accepted["speedup_met"] and accepted["makespans_identical"]):
        sys.exit(1)
