#!/usr/bin/env python3
"""Benchmark of the PR-3 dense simulation core on the Figure 6 workload.

Measures, on the quick-scale Figure 6 task ensemble (paired ``C_off``
sweep over large random DAGs, ``n in [100, 250]``, original + transformed
variants, ``m in {2, 8}``):

* **reference trace engine** -- ``simulate(...).makespan()``: object-keyed
  dispatch, one ``NodeExecution`` per node, full trace assembly;
* **dense fast path** -- ``simulate_makespan_dense`` per call: integer
  dense indices, preallocated arrays, no trace;
* **batched dense path** -- ``simulate_many`` (serial, like-for-like
  ``jobs``): one compile per task variant serving every ``(cores,
  variant)`` cell.

Every makespan must be bit-identical across the three paths; the
acceptance threshold requires the batched dense path to be at least
``SPEEDUP_TARGET`` times faster end-to-end than the reference engine.
Aggregated results are written to ``BENCH_PR3.json`` at the repository
root, extending the performance trajectory of ``BENCH_PR1.json`` (cached
graph kernel) and ``BENCH_PR2.json`` (exact-makespan oracles).

``--vectorized`` benchmarks the PR-4 lockstep kernel instead: the full
quick-scale figure 6 ensemble (all six fractions, original + transformed
variants) simulated on the figure's four host sizes (``m in {2, 4, 8,
16}``), comparing the batched dense path (``simulate_many(...,
engine="dense")``, the PR-3 fast path) against the vectorised default.
Results go to ``BENCH_PR4.json``; with ``--smoke`` the run enforces the
``VECTORIZED_SPEEDUP_TARGET`` acceptance (>= 2x over the dense batched
path, makespans bit-identical) for CI.

``--compiled`` benchmarks the PR-8 compiled C step-loop backend against the
numpy lockstep kernel on the same ensemble, measures the engine crossover
versus the dense path at small lane counts, and enforces the
``COMPILED_SPEEDUP_TARGET`` (>= 2x over the numpy kernel, bit-identical,
crossover <= ``CROSSOVER_MAX_LANES``).  Results go to ``BENCH_PR8.json``.

``--calibrate`` sweeps lane counts for both lockstep backends against the
dense engine and rewrites the committed calibration table
(``src/repro/simulation/calibration.json``) that ``engine="auto"`` and the
service's ``vector_threshold`` consult.

Run with:  python benchmarks/bench_simulation.py  [--vectorized | --compiled | --calibrate] [--smoke]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core.transformation import transform  # noqa: E402
from repro.experiments.config import quick_scale  # noqa: E402
from repro.generator.config import OffloadConfig  # noqa: E402
from repro.generator.presets import LARGE_TASKS_FIG6  # noqa: E402
from repro.generator.sweep import chunked_offload_fraction_sweep  # noqa: E402
from repro.simulation.batch import simulate_many  # noqa: E402
from repro.simulation.dense import simulate_makespan_dense  # noqa: E402
from repro.simulation.engine import simulate  # noqa: E402
from repro.simulation.platform import Platform  # noqa: E402
from repro.simulation.schedulers import BreadthFirstPolicy  # noqa: E402

OUTPUT = _REPO_ROOT / "BENCH_PR3.json"
OUTPUT_VECTORIZED = _REPO_ROOT / "BENCH_PR4.json"
OUTPUT_COMPILED = _REPO_ROOT / "BENCH_PR8.json"
CALIBRATION_OUTPUT = (
    _REPO_ROOT / "src" / "repro" / "simulation" / "calibration.json"
)

#: Acceptance threshold: the batched dense path must be at least this many
#: times faster than the reference trace engine on the Figure 6 workload.
SPEEDUP_TARGET = 3.0

#: Acceptance threshold of ``--vectorized``: the lockstep kernel must be at
#: least this many times faster than the batched dense path.
VECTORIZED_SPEEDUP_TARGET = 2.0

#: Acceptance thresholds of ``--compiled``: the C backend must be at least
#: this many times faster than the numpy lockstep kernel on the same
#: ensemble, and its measured crossover against the dense engine must sit
#: at or below this many lanes (target ~1).
COMPILED_SPEEDUP_TARGET = 2.0
CROSSOVER_MAX_LANES = 16


#: Timed repetitions per path; the best (minimum) time is reported, which
#: makes the smoke gate robust against scheduler noise on shared CI runners.
REPEATS = 3


def figure6_workload(smoke: bool) -> tuple[list, list[Platform]]:
    """Original + transformed tasks of a quick-scale Figure 6 sweep point."""
    scale = quick_scale()
    fractions = [0.2] if smoke else [0.04, 0.2, 0.5]
    dags_per_point = 6 if smoke else scale.dags_per_point
    points = chunked_offload_fraction_sweep(
        fractions=fractions,
        dags_per_point=dags_per_point,
        generator_config=LARGE_TASKS_FIG6,
        offload_config=OffloadConfig(),
        root_seed=scale.seed,
    )
    tasks = [task for point in points for task in point.tasks]
    tasks = tasks + [transform(task).task for task in tasks]
    platforms = [Platform(cores, 1) for cores in scale.core_counts]
    return tasks, platforms


def _best_of(run, repeats: int = REPEATS) -> tuple[float, object]:
    best_s, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def bench_reference(tasks: list, platforms: list[Platform]) -> tuple[float, list]:
    policy = BreadthFirstPolicy()
    return _best_of(
        lambda: [
            simulate(task, platform, policy).makespan()
            for task in tasks
            for platform in platforms
        ]
    )


def bench_dense(tasks: list, platforms: list[Platform]) -> tuple[float, list]:
    policy = BreadthFirstPolicy()
    return _best_of(
        lambda: [
            simulate_makespan_dense(task, platform, policy)
            for task in tasks
            for platform in platforms
        ]
    )


def bench_batched(tasks: list, platforms: list[Platform]) -> tuple[float, list]:
    # engine="dense" pins the PR-3 fast path: this benchmark's comparison
    # is reference engine vs dense paths, not the PR-4 lockstep kernel.
    elapsed, grid = _best_of(
        lambda: simulate_many(tasks, platforms, BreadthFirstPolicy(), engine="dense")
    )
    return elapsed, [float(value) for value in grid.reshape(-1)]


def vectorized_workload() -> tuple[list, list[Platform]]:
    """The full quick-scale figure 6 ensemble on the figure's host sizes.

    All six quick-scale fractions with both variants (the ensemble the
    rewired figure 6 driver actually simulates), on the four host sizes the
    figure plots -- 576 cells, the batch regime the lockstep kernel is
    built for.
    """
    scale = quick_scale()
    points = chunked_offload_fraction_sweep(
        fractions=scale.fractions,
        dags_per_point=scale.dags_per_point,
        generator_config=LARGE_TASKS_FIG6,
        offload_config=OffloadConfig(),
        root_seed=scale.seed,
    )
    tasks = [task for point in points for task in point.tasks]
    tasks = tasks + [transform(task).task for task in tasks]
    platforms = [Platform(cores, 1) for cores in (2, 4, 8, 16)]
    return tasks, platforms


def main_vectorized(smoke: bool) -> dict:
    tasks, platforms = vectorized_workload()
    simulations = len(tasks) * len(platforms)
    node_counts = [task.node_count for task in tasks]

    # Warm both paths once (compiled-view caches, allocator) before timing;
    # best-of-5 keeps the CI gate robust against scheduler noise.
    simulate_many(tasks, platforms, BreadthFirstPolicy())
    dense_s, dense_grid = _best_of(
        lambda: simulate_many(
            tasks, platforms, BreadthFirstPolicy(), engine="dense"
        ),
        repeats=5,
    )
    # Pin the numpy kernel: engine="auto" would resolve to the compiled
    # backend (PR 8) where available, and this gate measures the PR-4 path.
    vectorized_s, vectorized_grid = _best_of(
        lambda: simulate_many(
            tasks, platforms, BreadthFirstPolicy(), engine="lockstep"
        ),
        repeats=5,
    )
    identical = np.array_equal(dense_grid, vectorized_grid)
    speedup = dense_s / max(vectorized_s, 1e-9)

    document = {
        "benchmark": "vectorized_simulation",
        "pr": 4,
        "description": (
            "Vectorised lockstep kernel (simulate_many default; "
            "simulation/vectorized.py) vs the PR-3 dense batched path on "
            "the quick-scale figure 6 ensemble over the figure's four host "
            "sizes (see docs/performance.md)."
        ),
        "smoke": smoke,
        "simulations": simulations,
        "tasks": len(tasks),
        "platforms": [platform.host_cores for platform in platforms],
        "mean_nodes": float(np.mean(node_counts)),
        "dense_batched_s": dense_s,
        "vectorized_batched_s": vectorized_s,
        "vectorized_speedup": speedup,
        "makespans_identical": bool(identical),
        "acceptance": {
            "speedup": speedup,
            "speedup_target": VECTORIZED_SPEEDUP_TARGET,
            "speedup_met": speedup >= VECTORIZED_SPEEDUP_TARGET,
            "makespans_identical": bool(identical),
        },
    }

    print(
        f"figure 6 workload: {simulations} simulations "
        f"({len(tasks)} task variants x m in "
        f"{[p.host_cores for p in platforms]}, "
        f"mean n = {document['mean_nodes']:.0f})"
    )
    print(
        f"dense batched: {dense_s * 1000:.1f} ms | vectorized batched: "
        f"{vectorized_s * 1000:.1f} ms (x{speedup:.2f})"
    )
    if not smoke:
        OUTPUT_VECTORIZED.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"results written to {OUTPUT_VECTORIZED}")
    accepted = document["acceptance"]
    print(
        f"acceptance: vectorized x{accepted['speedup']:.2f} "
        f"(target x{accepted['speedup_target']:.1f}) -> "
        f"{'PASS' if accepted['speedup_met'] else 'FAIL'}; "
        f"makespans identical -> "
        f"{'PASS' if accepted['makespans_identical'] else 'FAIL'}"
    )
    return document


def _crossover_scan(
    tasks: list, lane_counts: list[int], engine: str, repeats: int = 3
) -> list[dict]:
    """Time ``engine`` vs dense at each lane count (one task per lane)."""
    platform = [Platform(4, 1)]
    policy = BreadthFirstPolicy()
    rows = []
    for lanes in lane_counts:
        subset = [tasks[i % len(tasks)] for i in range(lanes)]
        simulate_many(subset, platform, policy, engine=engine)  # warm
        dense_s, _ = _best_of(
            lambda: simulate_many(subset, platform, policy, engine="dense"),
            repeats=repeats,
        )
        engine_s, _ = _best_of(
            lambda: simulate_many(subset, platform, policy, engine=engine),
            repeats=repeats,
        )
        rows.append(
            {
                "lanes": lanes,
                "dense_s": dense_s,
                f"{engine}_s": engine_s,
                "speedup_vs_dense": dense_s / max(engine_s, 1e-9),
            }
        )
    return rows


def _crossover_lanes(rows: list[dict]) -> int | None:
    """Smallest lane count from which the engine wins at every tested size."""
    crossover = None
    for row in rows:
        if row["speedup_vs_dense"] >= 1.0:
            if crossover is None:
                crossover = row["lanes"]
        else:
            crossover = None
    return crossover


def main_compiled(smoke: bool) -> dict:
    from repro.simulation import _kernels

    if not _kernels.compiled_available():
        print(
            "compiled backend unavailable: "
            f"{_kernels.compiled_unavailable_reason()}"
        )
        sys.exit(1)

    tasks, platforms = vectorized_workload()
    simulations = len(tasks) * len(platforms)
    node_counts = [task.node_count for task in tasks]
    policy = BreadthFirstPolicy()

    # Warm every path once (compiled-view caches, the .so build) first.
    simulate_many(tasks[:4], platforms, policy, engine="compiled")
    simulate_many(tasks[:4], platforms, policy, engine="lockstep")
    repeats = 3 if smoke else 5
    lockstep_s, lockstep_grid = _best_of(
        lambda: simulate_many(tasks, platforms, policy, engine="lockstep"),
        repeats=repeats,
    )
    compiled_s, compiled_grid = _best_of(
        lambda: simulate_many(tasks, platforms, policy, engine="compiled"),
        repeats=repeats,
    )
    dense_s, dense_grid = _best_of(
        lambda: simulate_many(tasks, platforms, policy, engine="dense"),
        repeats=1 if smoke else 3,
    )
    identical = np.array_equal(compiled_grid, lockstep_grid) and np.array_equal(
        compiled_grid, dense_grid
    )
    speedup = lockstep_s / max(compiled_s, 1e-9)

    lane_counts = [1, 2, 4, 8, 16] if smoke else [1, 2, 4, 8, 16, 32, 64]
    crossover_rows = _crossover_scan(tasks, lane_counts, "compiled")
    crossover = _crossover_lanes(crossover_rows)
    crossover_met = crossover is not None and crossover <= CROSSOVER_MAX_LANES

    document = {
        "benchmark": "compiled_simulation",
        "pr": 8,
        "description": (
            "Compiled C step-loop backend (simulation/_kernels.py via "
            "ctypes) vs the numpy lockstep kernel and the dense batched "
            "path on the quick-scale figure 6 ensemble over the figure's "
            "four host sizes (see docs/performance.md section 10)."
        ),
        "smoke": smoke,
        "simulations": simulations,
        "tasks": len(tasks),
        "platforms": [platform.host_cores for platform in platforms],
        "mean_nodes": float(np.mean(node_counts)),
        "dense_batched_s": dense_s,
        "lockstep_numpy_s": lockstep_s,
        "compiled_s": compiled_s,
        "compiled_speedup_vs_lockstep": speedup,
        "compiled_speedup_vs_dense": dense_s / max(compiled_s, 1e-9),
        "crossover_scan": crossover_rows,
        "crossover_lanes": crossover,
        "makespans_identical": bool(identical),
        "acceptance": {
            "speedup": speedup,
            "speedup_target": COMPILED_SPEEDUP_TARGET,
            "speedup_met": speedup >= COMPILED_SPEEDUP_TARGET,
            "crossover_lanes": crossover,
            "crossover_max_lanes": CROSSOVER_MAX_LANES,
            "crossover_met": bool(crossover_met),
            "makespans_identical": bool(identical),
        },
    }

    print(
        f"figure 6 workload: {simulations} simulations "
        f"({len(tasks)} task variants x m in "
        f"{[p.host_cores for p in platforms]}, "
        f"mean n = {document['mean_nodes']:.0f})"
    )
    print(
        f"dense batched: {dense_s * 1000:.1f} ms | numpy lockstep: "
        f"{lockstep_s * 1000:.1f} ms | compiled: {compiled_s * 1000:.1f} ms "
        f"(x{speedup:.2f} vs numpy)"
    )
    print(
        "crossover vs dense: "
        + ", ".join(
            f"{row['lanes']}l x{row['speedup_vs_dense']:.2f}"
            for row in crossover_rows
        )
        + f" -> crossover at {crossover} lane(s)"
    )
    if not smoke:
        OUTPUT_COMPILED.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"results written to {OUTPUT_COMPILED}")
    accepted = document["acceptance"]
    print(
        f"acceptance: compiled x{accepted['speedup']:.2f} vs numpy lockstep "
        f"(target x{accepted['speedup_target']:.1f}) -> "
        f"{'PASS' if accepted['speedup_met'] else 'FAIL'}; "
        f"crossover {accepted['crossover_lanes']} lanes "
        f"(max {accepted['crossover_max_lanes']}) -> "
        f"{'PASS' if accepted['crossover_met'] else 'FAIL'}; "
        f"makespans identical -> "
        f"{'PASS' if accepted['makespans_identical'] else 'FAIL'}"
    )
    return document


def main_calibrate() -> dict:
    """Re-measure both engine crossovers and rewrite the shipped table."""
    from repro.simulation import _kernels

    tasks, _ = vectorized_workload()
    lane_counts = [1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256, 384]
    thresholds: dict[str, int] = {}
    scans: dict[str, list] = {}

    scans["lockstep"] = _crossover_scan(tasks, lane_counts, "lockstep")
    lockstep_cross = _crossover_lanes(scans["lockstep"])
    # When the numpy kernel never sustains a win inside the sweep, keep the
    # dense path preferred by pushing the threshold past the sweep.
    thresholds["lockstep"] = (
        lockstep_cross if lockstep_cross is not None else lane_counts[-1] * 2
    )
    if _kernels.compiled_available():
        scans["compiled"] = _crossover_scan(tasks, lane_counts, "compiled")
        compiled_cross = _crossover_lanes(scans["compiled"])
        thresholds["compiled"] = (
            compiled_cross
            if compiled_cross is not None
            else lane_counts[-1] * 2
        )
    else:
        print(
            "compiled backend unavailable "
            f"({_kernels.compiled_unavailable_reason()}); "
            "keeping the shipped compiled threshold"
        )

    document = {
        "generated_by": "benchmarks/bench_simulation.py --calibrate",
        "workload": (
            "quick-scale figure 6 ensemble tasks, one task per lane on "
            "Platform(4, 1), best-of-3 vs the dense batched path"
        ),
        "vector_threshold": thresholds,
        "crossover_scans": scans,
    }
    existing = {}
    try:
        existing = json.loads(CALIBRATION_OUTPUT.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        pass
    if "compiled" not in thresholds and isinstance(
        existing.get("vector_threshold"), dict
    ):
        kept = existing["vector_threshold"].get("compiled")
        if kept is not None:
            thresholds["compiled"] = kept
    CALIBRATION_OUTPUT.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    for engine, threshold in sorted(thresholds.items()):
        print(f"{engine}: vector threshold {threshold} lanes")
    print(f"calibration written to {CALIBRATION_OUTPUT}")
    return document


def main() -> dict:
    smoke = "--smoke" in sys.argv
    tasks, platforms = figure6_workload(smoke)
    simulations = len(tasks) * len(platforms)
    node_counts = [task.node_count for task in tasks]

    reference_s, reference = bench_reference(tasks, platforms)
    dense_s, dense = bench_dense(tasks, platforms)
    batched_s, batched = bench_batched(tasks, platforms)

    identical = reference == dense == batched
    speedup = reference_s / max(batched_s, 1e-9)
    per_call_speedup = reference_s / max(dense_s, 1e-9)

    document = {
        "benchmark": "dense_simulation",
        "pr": 3,
        "description": (
            "Trace-free dense-index simulation core (simulate_makespan_dense "
            "+ batched simulate_many with one compile per task variant) vs "
            "the object-keyed trace engine, on the quick-scale Figure 6 "
            "workload (see docs/performance.md)."
        ),
        "smoke": smoke,
        "simulations": simulations,
        "tasks": len(tasks),
        "platforms": [platform.host_cores for platform in platforms],
        "mean_nodes": float(np.mean(node_counts)),
        "reference_engine_s": reference_s,
        "dense_per_call_s": dense_s,
        "dense_batched_s": batched_s,
        "per_call_speedup": per_call_speedup,
        "batched_speedup": speedup,
        "makespans_identical": identical,
        "acceptance": {
            "speedup": speedup,
            "speedup_target": SPEEDUP_TARGET,
            "speedup_met": speedup >= SPEEDUP_TARGET,
            "makespans_identical": identical,
        },
    }

    print(
        f"figure 6 workload: {simulations} simulations "
        f"({len(tasks)} task variants x m in "
        f"{[p.host_cores for p in platforms]}, "
        f"mean n = {document['mean_nodes']:.0f})"
    )
    print(
        f"reference trace engine: {reference_s:.2f}s | dense per-call: "
        f"{dense_s:.2f}s (x{per_call_speedup:.1f}) | dense batched: "
        f"{batched_s:.2f}s (x{speedup:.1f})"
    )
    if not smoke:
        OUTPUT.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"results written to {OUTPUT}")
    accepted = document["acceptance"]
    print(
        f"acceptance: dense batched x{accepted['speedup']:.1f} "
        f"(target x{accepted['speedup_target']:.0f}) -> "
        f"{'PASS' if accepted['speedup_met'] else 'FAIL'}; "
        f"makespans identical -> "
        f"{'PASS' if accepted['makespans_identical'] else 'FAIL'}"
    )
    return document


if __name__ == "__main__":
    if "--calibrate" in sys.argv:
        main_calibrate()
        sys.exit(0)
    if "--compiled" in sys.argv:
        result = main_compiled("--smoke" in sys.argv)
        accepted = result["acceptance"]
        if not (
            accepted["speedup_met"]
            and accepted["makespans_identical"]
            and accepted["crossover_met"]
        ):
            sys.exit(1)
        sys.exit(0)
    if "--vectorized" in sys.argv:
        result = main_vectorized("--smoke" in sys.argv)
    else:
        result = main()
    accepted = result["acceptance"]
    if not (accepted["speedup_met"] and accepted["makespans_identical"]):
        sys.exit(1)
