"""Benchmark / reproduction of Figure 9 (Section 5.4).

Percentage change of ``R_hom(tau)`` with respect to ``R_het(tau')`` for
random large tasks, per host size, as the offloaded fraction grows.

Expected qualitative shape (checked below):

* the heterogeneous analysis wins for all but the smallest fractions (the
  paper locates the crossovers below 1.6-5 % of the volume);
* the average gain grows with ``C_off`` up to a peak located where
  ``C_off = R_hom(G_par)`` (the paper reports peaks of roughly 70 %, 55 %,
  40 % and 30 % for m = 2, 4, 8, 16);
* the gain ordering follows the host size: smaller ``m`` benefits more,
  because the interference term is divided by ``m``.
"""

from __future__ import annotations


def test_figure9(benchmark, experiment_scale, publish):
    from repro.experiments.figure9 import run_figure9

    result = benchmark.pedantic(
        run_figure9, kwargs={"scale": experiment_scale}, rounds=1, iterations=1
    )
    publish(result)

    core_counts = list(experiment_scale.core_counts)
    peaks = {}
    for cores in core_counts:
        series = result.series_by_label(f"m={cores}")
        peak_x, peak_y = series.max_point()
        peaks[cores] = (peak_x, peak_y)
        # The heterogeneous bound wins decisively for large fractions.
        assert peak_y > 0
        assert series.y[-1] > series.y[0]
        # The maximum observed single-task difference dominates the average.
        assert series.metadata["max_observed_difference"] >= peak_y - 1e-9

    # Gain ordering across host sizes at the peak: smaller m gains more.
    ordered = sorted(core_counts)
    for small, large in zip(ordered, ordered[1:]):
        assert peaks[small][1] >= peaks[large][1] - 5.0  # allow sampling noise
