"""Ablation: agreement and cost of the two optimal-makespan oracles.

The paper relies on a single oracle (CPLEX).  This reproduction has two
independent ones -- the HiGHS time-indexed ILP and an exact branch-and-bound
search -- and this benchmark verifies that they return identical makespans on
a population of small random heterogeneous tasks, while reporting their cost
(ILP model size, branch-and-bound explored states).  This is the evidence
backing the use of HiGHS as the Figure 7 reference.
"""

from __future__ import annotations


def test_ablation_ilp(benchmark, experiment_scale, publish):
    from repro.experiments.ablations import run_ilp_ablation

    result = benchmark.pedantic(
        run_ilp_ablation,
        kwargs={"scale": experiment_scale, "cores": 2, "task_count": 8},
        rounds=1,
        iterations=1,
    )
    publish(result)

    assert result.metadata["disagreements"] == 0
    ilp = result.series_by_label("ilp").y
    bnb = result.series_by_label("bnb").y
    assert len(ilp) == len(bnb) == 8
    assert all(abs(a - b) < 1e-6 for a, b in zip(ilp, bnb))
