"""Ablation: sensitivity of the Figure 6 conclusion to the scheduling policy.

The paper only simulates the GOMP breadth-first scheduler.  This ablation
re-runs the Figure 6 metric (percentage change of the average makespan of
``tau`` w.r.t. ``tau'``) under three different work-conserving policies and
checks that the qualitative conclusion -- the transformation pays off once
``C_off`` is a non-trivial share of the volume -- is not an artefact of the
breadth-first policy.
"""

from __future__ import annotations


def test_ablation_scheduler(benchmark, experiment_scale, publish):
    from repro.experiments.ablations import run_scheduler_ablation

    cores = 4 if 4 in experiment_scale.core_counts else experiment_scale.core_counts[0]
    result = benchmark.pedantic(
        run_scheduler_ablation,
        kwargs={"scale": experiment_scale, "cores": cores},
        rounds=1,
        iterations=1,
    )
    publish(result)

    for label in ("breadth-first", "depth-first"):
        series = result.series_by_label(label)
        assert max(series.y) > 0, f"{label}: the transformation never paid off"

    # The critical-path-first policy already avoids most host idling, so the
    # transformation helps it the least at the largest fraction.
    cp_first = result.series_by_label("critical-path-first")
    breadth = result.series_by_label("breadth-first")
    assert max(cp_first.y) <= max(breadth.y) + 15.0  # generous noise margin
