#!/usr/bin/env python3
"""Record the paper-scale reference runs under ``benchmarks/results/paper_scale/``.

Two experiments are recorded at the sampling effort of the original paper:

* **Figure 6** -- 100 DAGs per sweep point, the full 15-point fraction grid
  and all four host sizes (``m in {2, 4, 8, 16}``); 12 000 simulations
  served by the vectorised lockstep kernel
  (:mod:`repro.simulation.vectorized` via ``simulate_many``).
* **Figure 7** -- the paper's WCET range (``ilp_wcet_max = 100``) over the
  9-point small-task fraction grid for ``m in {2, 8}``, solved by the PR-2
  oracles (pruned branch-and-bound / warm-started HiGHS).  Two documented
  substitutions bound the run (see
  :func:`repro.experiments.config.figure7_paper_scale`): 25 DAGs per point
  and a 60 s per-instance cap standing in for the paper's 12 h CPLEX
  budget (trips are counted in the result metadata, never silent; a
  tripped HiGHS solve degrades to the verified warm-start incumbent).

Each run writes ``<name>.json`` / ``.csv`` / ``.txt`` into
``benchmarks/results/paper_scale/``; the JSON documents are also the golden
references of the slow regression tests
(``tests/test_paper_scale_goldens.py`` compares a fresh run against
``tests/data/figure6_paper_golden.json`` / ``figure7_paper_golden.json``).

Two further paper-scale workloads ride on the compiled lockstep backend
(PR 8) and are recorded the same way:

* **Figure 6 upper range** (``--figure 6-upper``) -- the same sweep over
  the paper's *upper* task-size band (``n in [250, 400]``,
  :data:`repro.generator.presets.LARGE_TASKS_UPPER_RANGE`), frozen as
  ``tests/data/figure6_upper_range_golden.json``.
* **Seven-policy scheduler ablation** (``--figure ablation``) -- every
  registered policy family over the Figure 6 sweep at paper scale,
  submitted request-by-request through the evaluation service's
  micro-batch queue (the grid executor coalesces the bursts into task x
  platform x policy grids); frozen as
  ``tests/data/scheduler_ablation_paper_golden.json``.

Run with:  python benchmarks/run_paper_scale.py [--figure 6|7|6-upper|ablation|all] [--jobs N]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = _REPO_ROOT / "benchmarks" / "results" / "paper_scale"


def _publish(result) -> None:
    from repro.experiments.tables import render_result, write_csv

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    table = render_result(result)
    (RESULTS_DIR / f"{result.name}.txt").write_text(table + "\n", encoding="utf-8")
    write_csv(result, RESULTS_DIR / f"{result.name}.csv")
    result.to_json(RESULTS_DIR / f"{result.name}.json")
    print(table)
    print(f"results written to {RESULTS_DIR / result.name}.{{json,csv,txt}}")


def run_figure6(jobs) -> None:
    from repro.experiments.config import paper_scale
    from repro.experiments.figure6 import run_figure6

    t0 = time.perf_counter()
    result = run_figure6(scale=paper_scale(), jobs=jobs)
    print(f"figure 6 at paper scale: {time.perf_counter() - t0:.1f}s")
    _publish(result)


def run_figure7(jobs) -> None:
    from repro.experiments.config import figure7_paper_scale
    from repro.experiments.figure7 import run_figure7
    from repro.ilp.batch import oracle_cache_clear

    oracle_cache_clear()  # the recorded run must not depend on memo state
    t0 = time.perf_counter()
    result = run_figure7(scale=figure7_paper_scale(), jobs=jobs)
    print(f"figure 7 at paper scale: {time.perf_counter() - t0:.1f}s")
    _publish(result)


def run_figure6_upper(jobs) -> None:
    from repro.experiments.config import paper_scale
    from repro.experiments.figure6 import run_figure6
    from repro.generator.presets import LARGE_TASKS_UPPER_RANGE

    t0 = time.perf_counter()
    result = run_figure6(
        scale=paper_scale(),
        generator_config=LARGE_TASKS_UPPER_RANGE,
        jobs=jobs,
    )
    result.name = "figure6_upper_range"
    result.title += " (upper task-size range)"
    print(f"figure 6 upper range at paper scale: {time.perf_counter() - t0:.1f}s")
    _publish(result)


def run_ablation(jobs) -> None:
    from repro.experiments.ablations import run_scheduler_ablation_service
    from repro.experiments.config import paper_scale

    t0 = time.perf_counter()
    result = run_scheduler_ablation_service(scale=paper_scale(), jobs=jobs)
    result.name = "scheduler_ablation_paper"
    print(
        f"seven-policy ablation at paper scale (via the service queue): "
        f"{time.perf_counter() - t0:.1f}s"
    )
    _publish(result)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure",
        choices=["6", "7", "6-upper", "ablation", "all"],
        default="all",
    )
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args()
    if args.figure in ("6", "all"):
        run_figure6(args.jobs)
    if args.figure in ("7", "all"):
        run_figure7(args.jobs)
    if args.figure in ("6-upper", "all"):
        run_figure6_upper(args.jobs)
    if args.figure in ("ablation", "all"):
        run_ablation(args.jobs)


if __name__ == "__main__":
    main()
