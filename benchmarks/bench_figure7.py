"""Benchmark / reproduction of Figure 7 (Section 5.3).

Average increment (in percent) of ``R_hom(tau)`` and ``R_het(tau')`` over the
minimum makespan computed by the ILP oracle, for small tasks, as a function
of the offloaded fraction.

Expected qualitative shape (checked below):

* both bounds always lie above the optimum (non-negative increments);
* the pessimism of ``R_het`` decreases as ``C_off`` grows (the paper reports
  it dropping below 1 % once the offloaded fraction is large enough);
* for large fractions ``R_het`` is tighter than ``R_hom``; only for very
  small fractions can ``R_hom`` win.

Substitution note: the paper used CPLEX with WCETs in ``[1, 100]`` and up to
12 hours per instance; at quick scale this harness uses HiGHS with a reduced
WCET range so the whole figure regenerates in seconds (see EXPERIMENTS.md).
"""

from __future__ import annotations


def test_figure7(benchmark, experiment_scale, publish):
    from repro.experiments.figure7 import run_figure7

    result = benchmark.pedantic(
        run_figure7, kwargs={"scale": experiment_scale}, rounds=1, iterations=1
    )
    publish(result)

    evaluated = [m for m in experiment_scale.core_counts if m in (2, 8)] or list(
        experiment_scale.core_counts[:2]
    )
    for cores in evaluated:
        hom = result.series_by_label(f"R_hom m={cores}")
        het = result.series_by_label(f"R_het m={cores}")
        # Upper bounds never undercut the optimal makespan.
        assert all(value >= -1e-6 for value in hom.y)
        assert all(value >= -1e-6 for value in het.y)
        # The heterogeneous bound tightens as the offloaded share grows ...
        assert het.y[-1] <= het.y[0] + 1e-9
        # ... and ends up at least as tight as the homogeneous bound.
        assert het.y[-1] <= hom.y[-1] + 1e-9
