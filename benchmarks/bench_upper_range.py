"""Reproduction of the paper's "similar trends for n in [250, 400]" claim.

Sections 5.2 and 5.4 evaluate on large tasks with n in [100, 250] and note
that "similar trends have been observed when n in [250, 400]".  This
benchmark re-runs the Figure 9 comparison on the upper node range and checks
that the qualitative conclusions indeed carry over:

* the heterogeneous analysis wins beyond a small offloaded fraction,
* the gain grows with the offloaded share,
* smaller hosts gain more than larger ones.
"""

from __future__ import annotations

from dataclasses import replace


def test_figure9_upper_node_range(benchmark, experiment_scale, publish):
    from repro.experiments.figure9 import run_figure9
    from repro.generator.presets import LARGE_TASKS_UPPER_RANGE

    # Generating 250-400 node DAGs is ~2x the work of the main figure; trim
    # the number of DAGs accordingly at quick scale.
    scale = replace(
        experiment_scale,
        dags_per_point=max(3, experiment_scale.dags_per_point // 2),
    )
    result = benchmark.pedantic(
        run_figure9,
        kwargs={"scale": scale, "generator_config": LARGE_TASKS_UPPER_RANGE},
        rounds=1,
        iterations=1,
    )
    result.name = "figure9-upper-range"
    result.title += " (n in [250, 400])"
    publish(result)

    core_counts = sorted(scale.core_counts)
    peak = {}
    for cores in core_counts:
        series = result.series_by_label(f"m={cores}")
        peak[cores] = series.max_point()[1]
        assert peak[cores] > 0
        assert series.y[-1] > series.y[0]
    for small, large in zip(core_counts, core_counts[1:]):
        assert peak[small] >= peak[large] - 5.0
