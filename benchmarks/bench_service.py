#!/usr/bin/env python3
"""Benchmark of the PR-5 evaluation service on a figure-6-shaped request mix.

Models the serving scenario the ROADMAP's north star describes: many
concurrent clients asking single-cell questions ("makespan of this task on
``m`` cores") drawn from the quick-scale figure 6 ensemble (original +
transformed variants, ``m in {2, 4, 8, 16}``), with each unique request
appearing ``REPEAT`` times in the (deterministically shuffled) mix -- live
traffic re-asks popular questions.

Three ways to serve the same mix, all of which must return **identical**
makespans:

* **naive per-request** -- what every pre-PR-5 entry point pays: each
  request parses its task document (``task_from_dict``), compiles it and
  runs one ``simulate_makespan`` -- no state survives between requests
  (the one-shot-process model of the CLI and drivers, minus process
  startup, so the baseline is conservative);
* **service, cold** -- a long-lived :class:`~repro.service.EvaluationService`
  receiving the burst from one thread per request: documents are parsed
  once per unique task, concurrent requests coalesce in the micro-batch
  queue (duplicates join in flight), and each flush runs one batched
  engine call;
* **service, warm** -- the identical burst again: pure fingerprint-keyed
  cache hits.

Acceptance (enforced by ``--smoke`` in CI, next to the PR 2-4 smokes):
the cold service must beat the naive path by ``SERVICE_SPEEDUP_TARGET``
(the batching/amortisation gain) and the warm service must beat it by
``HIT_SPEEDUP_TARGET`` (the hit-path gain), with bit-identical results.

``--faults`` switches to the PR-6 resilience benchmark instead: the cost
of a *disabled* fault point on the hot path (must be attribute-read cheap,
since ``fault_point`` calls are compiled into the engines permanently) and
the throughput of the degraded bound-sandwich oracle mode against full
exact solves -- written to ``BENCH_PR6.json``.

Run with:  python benchmarks/bench_service.py  [--smoke] [--faults]
"""

from __future__ import annotations

import json
import random
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core.transformation import transform  # noqa: E402
from repro.experiments.config import quick_scale  # noqa: E402
from repro.generator.config import OffloadConfig  # noqa: E402
from repro.generator.presets import LARGE_TASKS_FIG6  # noqa: E402
from repro.generator.sweep import chunked_offload_fraction_sweep  # noqa: E402
from repro.io.json_io import task_from_dict, task_to_dict  # noqa: E402
from repro.service import EvaluationService  # noqa: E402
from repro.simulation.engine import simulate_makespan  # noqa: E402
from repro.simulation.platform import Platform  # noqa: E402
from repro.simulation.schedulers import policy_by_name  # noqa: E402

OUTPUT = _REPO_ROOT / "BENCH_PR5.json"
FAULTS_OUTPUT = _REPO_ROOT / "BENCH_PR6.json"

#: Acceptance: cold service vs naive per-request (batching/amortisation).
SERVICE_SPEEDUP_TARGET = 2.0

#: Acceptance: warm service vs naive per-request (cache-hit path).
HIT_SPEEDUP_TARGET = 10.0

#: How often each unique request appears in the mix (live traffic re-asks
#: popular questions; the report carries both unique and total counts).
REPEAT = 3

#: Timed repetitions; the best (minimum) time is reported.
REPEATS = 3


def figure6_request_mix(smoke: bool):
    """``(documents, requests)``: task documents + shuffled (doc, m) mix."""
    scale = quick_scale()
    fractions = scale.fractions
    dags_per_point = 8 if smoke else scale.dags_per_point
    points = chunked_offload_fraction_sweep(
        fractions=fractions,
        dags_per_point=dags_per_point,
        generator_config=LARGE_TASKS_FIG6,
        offload_config=OffloadConfig(),
        root_seed=scale.seed,
    )
    tasks = [task for point in points for task in point.tasks]
    tasks = tasks + [transform(task).task for task in tasks]
    documents = [task_to_dict(task) for task in tasks]
    unique = [
        (index, cores)
        for index in range(len(documents))
        for cores in (2, 4, 8, 16)
    ]
    requests = unique * REPEAT
    random.Random(2018).shuffle(requests)
    return documents, requests


def bench_naive(documents, requests) -> tuple[float, list[float]]:
    """One-shot evaluation per request: parse + compile + simulate."""

    def run() -> list[float]:
        return [
            simulate_makespan(
                task_from_dict(documents[index]),
                Platform(cores),
                policy_by_name("breadth-first"),
            )
            for index, cores in requests
        ]

    best_s, result = float("inf"), None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = run()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def bench_service(documents, requests):
    """Thread-per-request burst against a fresh service; then the warm burst.

    Returns ``(cold_s, warm_s, cold_results, warm_results, stats)``; the
    cold time includes parsing each unique document once (the long-lived
    client keeps parsed tasks, unlike the one-shot baseline).
    """
    workers = min(len(requests), 256)
    best = None
    for _ in range(REPEATS):
        service = EvaluationService()
        pool = ThreadPoolExecutor(max_workers=workers)
        list(pool.map(lambda value: value, range(workers)))  # pre-spawn

        t0 = time.perf_counter()
        tasks = [task_from_dict(document) for document in documents]
        cold = list(
            pool.map(
                lambda request: service.submit_simulation(
                    tasks[request[0]], request[1], timeout=600
                ),
                requests,
            )
        )
        cold_s = time.perf_counter() - t0

        warm_s = float("inf")
        warm = None
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            warm = list(
                pool.map(
                    lambda request: service.submit_simulation(
                        tasks[request[0]], request[1], timeout=600
                    ),
                    requests,
                )
            )
            warm_s = min(warm_s, time.perf_counter() - t0)

        stats = service.stats()
        pool.shutdown()
        service.close()
        if best is None or cold_s < best[0]:
            best = (cold_s, warm_s, cold, warm, stats)
    return best


#: Acceptance: a disabled fault point must cost no more than this per call
#: (it is one global load + one attribute read; the margin is generous so
#: the check holds on loaded CI machines).
FAULT_OVERHEAD_TARGET_NS = 1000.0

#: Acceptance: the degraded bound-sandwich path must beat the exact solver
#: by at least this factor -- it exists to shed load, so it has to be cheap.
DEGRADED_SPEEDUP_TARGET = 2.0


def _solver_tasks(count: int, root_seed: int = 2018):
    """Solver-sized heterogeneous tasks with integer WCETs."""
    from repro.generator.config import GeneratorConfig, OffloadConfig
    from repro.generator.offload import make_heterogeneous
    from repro.generator.random_dag import DagStructureGenerator

    config = GeneratorConfig(
        p_par=0.6, n_par=3, max_depth=2, n_min=4, n_max=10, c_min=1, c_max=12
    )
    tasks = []
    for seed in range(root_seed, root_seed + count):
        host = DagStructureGenerator(
            config, np.random.default_rng(seed)
        ).generate_task()
        task = make_heterogeneous(
            host, OffloadConfig(), np.random.default_rng(seed + 1),
            target_fraction=0.25,
        )
        tasks.append(
            task.with_offloaded_wcet(max(1.0, float(round(task.offloaded_wcet))))
        )
    return tasks


def bench_faults(smoke: bool) -> dict:
    """PR-6 resilience benchmark: fault-point overhead + degraded throughput."""
    from repro.ilp.batch import minimum_makespans_many, oracle_cache_size
    from repro.resilience import FAULTS, fault_point

    assert not FAULTS.enabled, "fault injection must be disarmed for timing"

    # --- disabled fault-point overhead ---------------------------------
    calls = 200_000 if smoke else 1_000_000

    def noop() -> None:
        return None

    def time_loop(fn) -> float:
        best = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            for _ in range(calls):
                fn("bench.disabled")
            best = min(best, time.perf_counter() - t0)
        return best / calls * 1e9

    overhead_ns = time_loop(fault_point)
    baseline_ns = time_loop(lambda _name: noop())

    # --- degraded-mode throughput vs exact solves ----------------------
    tasks = _solver_tasks(12 if smoke else 48)

    exact_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        exact = minimum_makespans_many(tasks, 2, use_cache=False)
        exact_s = min(exact_s, time.perf_counter() - t0)

    cache_before = oracle_cache_size()
    degraded_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        degraded = minimum_makespans_many(tasks, 2, budget=0.0)
        degraded_s = min(degraded_s, time.perf_counter() - t0)

    all_flagged = all(result.degraded and not result.optimal for result in degraded)
    sandwich_holds = all(
        loose.engine_stats["lower_bound"] <= tight.makespan <= loose.makespan
        for loose, tight in zip(degraded, exact)
    )
    nothing_cached = oracle_cache_size() == cache_before
    degraded_speedup = exact_s / max(degraded_s, 1e-9)

    document = {
        "benchmark": "service_resilience",
        "pr": 6,
        "description": (
            "Resilience-layer costs: per-call overhead of a disabled "
            "fault point (repro/resilience/faults.py, compiled into the "
            "engine hot paths) and throughput of the degraded "
            "bound-sandwich oracle mode vs full exact solves "
            "(see docs/service.md, failure-mode runbook)."
        ),
        "smoke": smoke,
        "fault_point_calls": calls,
        "fault_point_disabled_ns": overhead_ns,
        "noop_call_baseline_ns": baseline_ns,
        "oracle_tasks": len(tasks),
        "exact_batch_s": exact_s,
        "degraded_batch_s": degraded_s,
        "exact_tasks_per_s": len(tasks) / exact_s,
        "degraded_tasks_per_s": len(tasks) / degraded_s,
        "degraded_speedup": degraded_speedup,
        "acceptance": {
            "fault_point_disabled_ns": overhead_ns,
            "fault_point_overhead_target_ns": FAULT_OVERHEAD_TARGET_NS,
            "fault_point_overhead_met": overhead_ns <= FAULT_OVERHEAD_TARGET_NS,
            "degraded_speedup": degraded_speedup,
            "degraded_speedup_target": DEGRADED_SPEEDUP_TARGET,
            "degraded_speedup_met": degraded_speedup >= DEGRADED_SPEEDUP_TARGET,
            "all_degraded_flagged": all_flagged,
            "bound_sandwich_holds": sandwich_holds,
            "degraded_never_cached": nothing_cached,
        },
    }

    print(
        f"disabled fault point: {overhead_ns:.0f} ns/call "
        f"(no-op call baseline {baseline_ns:.0f} ns) over {calls} calls"
    )
    print(
        f"oracle batch of {len(tasks)}: exact {exact_s:.3f}s "
        f"({document['exact_tasks_per_s']:.0f} tasks/s) | degraded "
        f"{degraded_s:.4f}s ({document['degraded_tasks_per_s']:.0f} tasks/s, "
        f"x{degraded_speedup:.1f})"
    )
    if not smoke:
        FAULTS_OUTPUT.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"results written to {FAULTS_OUTPUT}")
    accepted = document["acceptance"]
    print(
        f"acceptance: fault point {overhead_ns:.0f} ns "
        f"(target <= {FAULT_OVERHEAD_TARGET_NS:.0f}) -> "
        f"{'PASS' if accepted['fault_point_overhead_met'] else 'FAIL'}; "
        f"degraded x{degraded_speedup:.1f} "
        f"(target x{DEGRADED_SPEEDUP_TARGET:.0f}) -> "
        f"{'PASS' if accepted['degraded_speedup_met'] else 'FAIL'}; "
        f"flagged/sandwich/uncached -> "
        f"{'PASS' if accepted['all_degraded_flagged'] and accepted['bound_sandwich_holds'] and accepted['degraded_never_cached'] else 'FAIL'}"
    )
    return document


def main() -> dict:
    smoke = "--smoke" in sys.argv
    if "--faults" in sys.argv:
        return bench_faults(smoke)
    documents, requests = figure6_request_mix(smoke)
    unique = len(set(requests))
    print(
        f"figure 6 request mix: {len(requests)} requests "
        f"({unique} unique, x{REPEAT} repetition, "
        f"{len(documents)} task variants, m in [2, 4, 8, 16])"
    )

    naive_s, naive = bench_naive(documents, requests)
    cold_s, warm_s, cold, warm, stats = bench_service(documents, requests)

    identical = naive == cold == warm
    service_speedup = naive_s / max(cold_s, 1e-9)
    hit_speedup = naive_s / max(warm_s, 1e-9)

    document = {
        "benchmark": "evaluation_service",
        "pr": 5,
        "description": (
            "Long-lived evaluation service (micro-batching queue + "
            "fingerprint-keyed LRU cache over the batched engines; "
            "repro/service/) vs naive one-shot per-request "
            "simulate_makespan calls on a figure-6-shaped request mix "
            "(see docs/service.md)."
        ),
        "smoke": smoke,
        "requests": len(requests),
        "unique_requests": unique,
        "repetition": REPEAT,
        "task_variants": len(documents),
        "platforms": [2, 4, 8, 16],
        "naive_per_request_s": naive_s,
        "service_cold_s": cold_s,
        "service_warm_s": warm_s,
        "naive_requests_per_s": len(requests) / naive_s,
        "service_cold_requests_per_s": len(requests) / cold_s,
        "service_warm_requests_per_s": len(requests) / warm_s,
        "service_speedup": service_speedup,
        "hit_speedup": hit_speedup,
        "batches": stats["batching"]["batches"],
        "largest_batch": stats["batching"]["largest_batch"],
        "evaluated_cells": stats["engine"]["evaluated_cells"],
        "inflight_joins": stats["engine"]["inflight_joins"],
        "cache": {
            key: stats["cache"][key] for key in ("hits", "misses", "bytes")
        },
        "makespans_identical": bool(identical),
        "acceptance": {
            "service_speedup": service_speedup,
            "service_speedup_target": SERVICE_SPEEDUP_TARGET,
            "service_speedup_met": service_speedup >= SERVICE_SPEEDUP_TARGET,
            "hit_speedup": hit_speedup,
            "hit_speedup_target": HIT_SPEEDUP_TARGET,
            "hit_speedup_met": hit_speedup >= HIT_SPEEDUP_TARGET,
            "makespans_identical": bool(identical),
        },
    }

    print(
        f"naive one-shot: {naive_s:.3f}s ({document['naive_requests_per_s']:.0f} "
        f"req/s) | service cold: {cold_s:.3f}s "
        f"({document['service_cold_requests_per_s']:.0f} req/s, "
        f"x{service_speedup:.2f}) | service warm: {warm_s:.4f}s "
        f"({document['service_warm_requests_per_s']:.0f} req/s, "
        f"x{hit_speedup:.1f})"
    )
    print(
        f"coalescing: {len(requests)} requests -> {document['batches']} batches "
        f"(largest {document['largest_batch']}), "
        f"{document['evaluated_cells']} evaluated cells, "
        f"{document['inflight_joins']} in-flight joins"
    )
    if not smoke:
        OUTPUT.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"results written to {OUTPUT}")
    accepted = document["acceptance"]
    print(
        f"acceptance: batching x{accepted['service_speedup']:.2f} "
        f"(target x{accepted['service_speedup_target']:.1f}) -> "
        f"{'PASS' if accepted['service_speedup_met'] else 'FAIL'}; "
        f"hit path x{accepted['hit_speedup']:.1f} "
        f"(target x{accepted['hit_speedup_target']:.0f}) -> "
        f"{'PASS' if accepted['hit_speedup_met'] else 'FAIL'}; "
        f"makespans identical -> "
        f"{'PASS' if accepted['makespans_identical'] else 'FAIL'}"
    )
    return document


if __name__ == "__main__":
    result = main()
    accepted = result["acceptance"]
    if not all(value for key, value in accepted.items() if key.endswith("_met")):
        sys.exit(1)
    if not all(
        value
        for key, value in accepted.items()
        if isinstance(value, bool) and not key.endswith("_met")
    ):
        sys.exit(1)
