#!/usr/bin/env python3
"""Benchmark of the PR-2 exact-makespan subsystem on the Figure 7 workload.

Measures, on the quick-scale Figure 7 task ensembles (the paired
``C_off``-fraction sweep over small random DAGs):

* **branch-and-bound pruning** -- explored search states and wall time of
  the dominance-pruned sequence search vs the retained unpruned reference
  engine (``pruning=False``), with a makespan-identity check against both
  the reference and the HiGHS ILP (``m = 2`` sweep, the node sizes the
  reference engine can still enumerate);
* **ILP warm start** -- model size (binary start variables) and solve wall
  time of the warm-started model (incumbent horizon + tightened windows)
  vs the pre-PR-2 cold model, again with a makespan-identity check
  (``m = 2`` and ``m = 8`` sweeps);
* **batched oracle layer** -- instance deduplication and memo reuse of
  :func:`repro.ilp.batch.minimum_makespans_many` over the full sweep.

Aggregated results are written to ``BENCH_PR2.json`` at the repository
root, extending the performance trajectory started by ``BENCH_PR1.json``.

Run with:  python benchmarks/bench_ilp.py  [--smoke]
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import quick_scale  # noqa: E402
from repro.experiments.figure7 import node_range_for_cores  # noqa: E402
from repro.generator.config import OffloadConfig  # noqa: E402
from repro.generator.presets import SMALL_TASKS  # noqa: E402
from repro.generator.sweep import offload_fraction_sweep  # noqa: E402
from repro.ilp.batch import (  # noqa: E402
    minimum_makespans_many,
    oracle_cache_clear,
    oracle_cache_size,
)
from repro.ilp.branch_and_bound import branch_and_bound_makespan  # noqa: E402
from repro.ilp.solver import solve_minimum_makespan  # noqa: E402

OUTPUT = _REPO_ROOT / "BENCH_PR2.json"

#: Acceptance threshold: the pruned search must explore at least this many
#: times fewer states than the unpruned reference on the Figure 7 workload.
NODE_REDUCTION_TARGET = 5.0


def figure7_tasks(cores: int, dags_per_point: int) -> list:
    """The (rounded) task ensemble Figure 7 evaluates for host size ``m``."""
    scale = quick_scale()
    rng = np.random.default_rng(scale.seed + 7)
    node_range = node_range_for_cores(scale, cores)
    generator_config = replace(
        SMALL_TASKS,
        n_min=node_range[0],
        n_max=node_range[1],
        c_max=scale.ilp_wcet_max,
    )
    points = offload_fraction_sweep(
        fractions=scale.small_task_fractions,
        dags_per_point=dags_per_point,
        generator_config=generator_config,
        offload_config=OffloadConfig(),
        rng=rng,
        paired=True,
    )
    return [
        task.with_offloaded_wcet(max(1.0, round(task.offloaded_wcet)))
        for point in points
        for task in point.tasks
    ]


def bench_branch_and_bound(tasks: list, cores: int) -> dict:
    """Pruned vs reference search states and wall time; identity checks."""
    t0 = time.perf_counter()
    pruned = [branch_and_bound_makespan(task, cores) for task in tasks]
    pruned_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    reference = [
        branch_and_bound_makespan(task, cores, pruning=False) for task in tasks
    ]
    reference_s = time.perf_counter() - t0

    ilp = [solve_minimum_makespan(task, cores) for task in tasks]
    makespans_identical = all(
        p.makespan == r.makespan for p, r in zip(pruned, reference)
    )
    ilp_agreement = all(
        abs(p.makespan - s.makespan) < 1e-6 for p, s in zip(pruned, ilp)
    )
    pruned_states = sum(result.explored_states for result in pruned)
    reference_states = sum(result.explored_states for result in reference)
    # Instances resolved by the list-schedule==lower-bound early exit never
    # search at all; report them separately so the state reduction can be
    # attributed to the dominance/bound pruning and not only to the exit.
    searched = [
        (p.explored_states, r.explored_states)
        for p, r in zip(pruned, reference)
        if p.explored_states > 0
    ]
    return {
        "tasks": len(tasks),
        "cores": cores,
        "pruned_states": pruned_states,
        "reference_states": reference_states,
        "state_reduction": reference_states / max(pruned_states, 1),
        "pruned_short_circuited": len(tasks) - len(searched),
        "searched_state_reduction": (
            sum(r for _, r in searched) / max(sum(p for p, _ in searched), 1)
        )
        if searched
        else 1.0,
        "pruned_s": pruned_s,
        "reference_s": reference_s,
        "time_speedup": reference_s / max(pruned_s, 1e-9),
        "all_optimal": all(r.optimal for r in pruned + reference),
        "makespans_identical_to_reference": makespans_identical,
        "makespans_identical_to_ilp": ilp_agreement,
    }


def bench_ilp_warm_start(tasks: list, cores: int) -> dict:
    """Warm vs cold model size and solve time; identity checks."""
    t0 = time.perf_counter()
    warm = [solve_minimum_makespan(task, cores, warm_start=True) for task in tasks]
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = [solve_minimum_makespan(task, cores, warm_start=False) for task in tasks]
    cold_s = time.perf_counter() - t0

    return {
        "tasks": len(tasks),
        "cores": cores,
        "warm_variables": sum(s.variable_count for s in warm),
        "cold_variables": sum(s.variable_count for s in cold),
        "variable_reduction": sum(s.variable_count for s in cold)
        / max(sum(s.variable_count for s in warm), 1),
        "short_circuited": sum(1 for s in warm if s.variable_count == 0),
        "warm_s": warm_s,
        "cold_s": cold_s,
        "time_speedup": cold_s / max(warm_s, 1e-9),
        "makespans_identical": all(
            abs(a.makespan - b.makespan) < 1e-6 for a, b in zip(warm, cold)
        ),
    }


def bench_batched_oracle(tasks: list, cores: int) -> dict:
    """Deduplication and memo reuse of the batched oracle layer."""
    oracle_cache_clear()
    t0 = time.perf_counter()
    first = minimum_makespans_many(tasks, cores)
    first_s = time.perf_counter() - t0
    unique = oracle_cache_size()

    t0 = time.perf_counter()
    second = minimum_makespans_many(tasks, cores)
    second_s = time.perf_counter() - t0
    oracle_cache_clear()
    return {
        "tasks": len(tasks),
        "cores": cores,
        "unique_instances": unique,
        "dedup_share": 1.0 - unique / max(len(tasks), 1),
        "first_pass_s": first_s,
        "memoised_pass_s": second_s,
        "memo_speedup": first_s / max(second_s, 1e-9),
        "stable": all(
            a.makespan == b.makespan for a, b in zip(first, second)
        ),
    }


def main() -> dict:
    smoke = "--smoke" in sys.argv
    dags_per_point = 3 if smoke else 12

    tasks_m2 = figure7_tasks(2, dags_per_point)
    tasks_m8 = figure7_tasks(8, dags_per_point)

    document: dict = {
        "benchmark": "ilp_oracles",
        "pr": 2,
        "description": (
            "Pruned branch-and-bound vs unpruned reference, warm-started vs "
            "cold HiGHS ILP, and the batched memoised oracle layer, all on "
            "the quick-scale Figure 7 workload (see docs/performance.md)."
        ),
        "smoke": smoke,
        "dags_per_point": dags_per_point,
        "branch_and_bound": bench_branch_and_bound(tasks_m2, cores=2),
        "ilp_warm_start": [
            bench_ilp_warm_start(tasks_m2, cores=2),
            bench_ilp_warm_start(tasks_m8, cores=8),
        ],
        "batched_oracle": bench_batched_oracle(tasks_m2, cores=2),
    }
    bnb = document["branch_and_bound"]
    document["acceptance"] = {
        "node_reduction": bnb["state_reduction"],
        "node_reduction_target": NODE_REDUCTION_TARGET,
        "node_reduction_met": bnb["state_reduction"] >= NODE_REDUCTION_TARGET,
        "wall_time_drop": bnb["time_speedup"] > 1.0,
        "makespans_identical": bnb["makespans_identical_to_reference"]
        and bnb["makespans_identical_to_ilp"],
    }

    print(
        f"B&B (m=2, {bnb['tasks']} tasks): {bnb['reference_states']} -> "
        f"{bnb['pruned_states']} states (x{bnb['state_reduction']:.1f}; "
        f"x{bnb['searched_state_reduction']:.1f} on the "
        f"{bnb['tasks'] - bnb['pruned_short_circuited']} searched instances, "
        f"{bnb['pruned_short_circuited']} short-circuited), "
        f"{bnb['reference_s']:.2f}s -> {bnb['pruned_s']:.2f}s "
        f"(x{bnb['time_speedup']:.1f})"
    )
    for entry in document["ilp_warm_start"]:
        print(
            f"ILP (m={entry['cores']}, {entry['tasks']} tasks): "
            f"{entry['cold_variables']} -> {entry['warm_variables']} variables "
            f"(x{entry['variable_reduction']:.1f}), {entry['cold_s']:.2f}s -> "
            f"{entry['warm_s']:.2f}s (x{entry['time_speedup']:.1f}), "
            f"{entry['short_circuited']} short-circuited"
        )
    batched = document["batched_oracle"]
    print(
        f"batched oracle (m=2): {batched['tasks']} instances, "
        f"{batched['unique_instances']} unique "
        f"({100 * batched['dedup_share']:.0f}% deduplicated), memoised pass "
        f"x{batched['memo_speedup']:.0f}"
    )
    if not smoke:
        OUTPUT.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"\nresults written to {OUTPUT}")
    accepted = document["acceptance"]
    print(
        f"acceptance: node reduction x{accepted['node_reduction']:.1f} "
        f"(target x{accepted['node_reduction_target']:.0f}) -> "
        f"{'PASS' if accepted['node_reduction_met'] else 'FAIL'}; "
        f"makespans identical -> "
        f"{'PASS' if accepted['makespans_identical'] else 'FAIL'}"
    )
    return document


if __name__ == "__main__":
    result = main()
    accepted = result["acceptance"]
    if not (accepted["node_reduction_met"] and accepted["makespans_identical"]):
        sys.exit(1)
