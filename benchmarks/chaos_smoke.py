#!/usr/bin/env python3
"""Chaos smoke of the evaluation service (PR 6): faults on, nothing lost.

Boots a real ``repro serve`` subprocess with ``REPRO_FAULTS`` arming three
injected failures --

* ``service.batch:hang`` -- the first executor flush wedges for a second,
  so a concurrent burst piles up behind it and overflows the bounded
  admission queue (deterministic HTTP 429 shedding);
* ``parallel.chunk:kill`` (token-gated) -- exactly one simulation pool
  worker hard-exits mid-batch, forcing a pool respawn;
* ``oracle.solve:hang`` -- an exact-makespan solve outlives the oracle
  budget, degrading the rest of its batch to verified bounds;

then fires a mixed burst through :class:`repro.service.ServiceClient` and
checks the PR-6 resilience contract from the outside:

* **zero lost requests** -- every submission gets exactly one outcome
  (a result, or a structured 429/5xx error envelope); nothing hangs;
* the outcome partition is exactly {200, 429}: shed requests got 429 with
  ``Retry-After``, everything accepted resolved with the right answer;
* at least one makespan response is flagged ``degraded`` (and none of the
  degraded ones claims optimality), at least one is exact;
* ``/stats`` shows the worker respawn, the shed count, the degraded count
  and the tripped oracle breaker; the kill token was consumed;
* ``SIGTERM`` drains cleanly *and visibly*: a fourth fault
  (``service.drain:hang``) wedges the close-flush so the drain window is
  wide enough to probe -- ``/health`` must report ``draining`` (503), a
  POST during the drain must be refused ``closed``, every request accepted
  before the drain must still resolve, and the process exits 0.

Run with:  python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core.exceptions import (  # noqa: E402
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.generator.config import GeneratorConfig, OffloadConfig  # noqa: E402
from repro.generator.offload import make_heterogeneous  # noqa: E402
from repro.generator.random_dag import DagStructureGenerator  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

#: Bounded admission: the hung flush lets the burst pile past this.
MAX_PENDING = 64

#: Burst sizes (distinct tasks each -- duplicates would coalesce in flight
#: and bypass admission, muddying the shed accounting).
PLUG_REQUESTS = 4
BURST_REQUESTS = 80
MAKESPAN_REQUESTS = 6

_CONFIG = GeneratorConfig(
    p_par=0.6, n_par=3, max_depth=2, n_min=4, n_max=12, c_min=1, c_max=12
)


def _tasks(count: int, root_seed: int, integer_wcets: bool = False) -> list:
    tasks = []
    for seed in range(root_seed, root_seed + count):
        host = DagStructureGenerator(
            _CONFIG, np.random.default_rng(seed)
        ).generate_task()
        task = make_heterogeneous(
            host, OffloadConfig(), np.random.default_rng(seed + 1),
            target_fraction=0.25,
        )
        if integer_wcets:  # the exact solvers require integer WCETs
            task = task.with_offloaded_wcet(
                max(1.0, float(round(task.offloaded_wcet)))
            )
        tasks.append(task)
    return tasks


def _boot_server(tmp: Path, token: Path) -> tuple[subprocess.Popen, int]:
    port_file = tmp / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    env["REPRO_FAULTS"] = (
        "service.batch:hang:delay=1.0:times=2;"
        f"parallel.chunk:kill:token={token}:times=inf;"
        "oracle.solve:hang:delay=0.25:times=inf;"
        "service.drain:hang:delay=1.5:times=1"
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--jobs", "2",
            "--max-pending", str(MAX_PENDING),
            "--oracle-budget", "0.2",
            "--breaker-threshold", "1",
        ],
        env=env,
        cwd=_REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            return process, int(port_file.read_text().strip())
        if process.poll() is not None:
            print(process.stdout.read())
            raise SystemExit("server died before writing its port")
        time.sleep(0.05)
    process.kill()
    raise SystemExit("server never wrote its port file")


def _classify(call) -> tuple[str, object]:
    """One outcome per request: ('ok', value) or the mapped error class."""
    try:
        return ("ok", call())
    except ServiceOverloadedError as error:
        assert getattr(error, "retry_after", None), "429 must carry Retry-After"
        return ("shed", error)
    except ServiceError as error:  # anything else structured is a failure
        return ("unexpected", error)


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    token = tmp / "kill-one-worker"
    token.write_text("armed\n")
    process, port = _boot_server(tmp, token)
    client = ServiceClient(port=port, timeout=120, retries=0)
    print(f"chaos server on port {port} (REPRO_FAULTS armed), pid {process.pid}")

    try:
        assert client.health()["status"] == "ok"

        # --- phase 1: hang the first flush, overflow admission ----------
        plug = _tasks(PLUG_REQUESTS, root_seed=9000)
        burst = _tasks(BURST_REQUESTS, root_seed=9100)
        pool = ThreadPoolExecutor(max_workers=PLUG_REQUESTS + BURST_REQUESTS)
        plug_futures = [
            pool.submit(_classify, lambda t=t: client.simulate(t, cores=2))
            for t in plug
        ]
        time.sleep(0.3)  # the plug flush is now wedged in service.batch:hang
        burst_futures = [
            pool.submit(_classify, lambda t=t: client.simulate(t, cores=2))
            for t in burst
        ]

        # --- phase 2 (submission): park the oracle burst NOW ------------
        # The burst flush above is still wedged (service.batch fires twice),
        # so every makespan request parks behind it and coalesces into one
        # oracle batch.  Inside that batch the per-solve hang (0.25 s)
        # outlives the 0.2 s oracle budget: the instance that hangs still
        # returns exact, everything after it degrades to verified bounds.
        solver_tasks = _tasks(
            MAKESPAN_REQUESTS, root_seed=9300, integer_wcets=True
        )
        time.sleep(1.0)
        payload_futures = [
            pool.submit(lambda t=t: client.makespan(t, cores=2))
            for t in solver_tasks
        ]

        outcomes = [f.result(timeout=120) for f in plug_futures + burst_futures]

        total = PLUG_REQUESTS + BURST_REQUESTS
        assert len(outcomes) == total  # exactly one outcome each, none lost
        by_status: dict[str, int] = {}
        for status, _ in outcomes:
            by_status[status] = by_status.get(status, 0) + 1
        print(f"simulate burst of {total}: {by_status}")
        assert by_status.get("unexpected", 0) == 0, [
            error for status, error in outcomes if status == "unexpected"
        ]
        assert by_status.get("ok", 0) >= MAX_PENDING, by_status
        assert by_status.get("shed", 0) >= 1, "bounded admission never shed"
        for status, value in outcomes:
            if status == "ok":
                assert float(value) > 0.0

        # --- phase 2 (collection): the coalesced oracle batch degraded --
        payloads = [f.result(timeout=120) for f in payload_futures]
        pool.shutdown()
        degraded = [p for p in payloads if p["degraded"]]
        exact = [p for p in payloads if not p["degraded"]]
        print(
            f"makespan burst of {len(payloads)}: "
            f"{len(exact)} exact, {len(degraded)} degraded"
        )
        assert len(payloads) == MAKESPAN_REQUESTS
        assert degraded, "oracle budget never degraded anything"
        assert exact, "the whole batch degraded (hang should spare one)"
        for payload in degraded:
            assert not payload["optimal"]
            stats = payload["engine_stats"]
            assert stats["engine"] == "degraded-bounds"
            assert stats["lower_bound"] <= payload["makespan"]

        # --- phase 3: server-side counters saw all of it -----------------
        resilience = client.stats()["resilience"]
        print(
            f"server counters: shed={resilience['shed']} "
            f"degraded={resilience['degraded']} "
            f"respawns={resilience['worker_respawns']} "
            f"breaker={resilience['breaker']['state']}"
            f"/{resilience['breaker']['trips']} trip(s)"
        )
        assert resilience["shed"] == by_status.get("shed", 0)
        assert resilience["degraded"] == len(degraded)
        assert resilience["worker_respawns"] >= 1, "killed worker never respawned"
        assert resilience["breaker"]["trips"] >= 1
        assert not token.exists(), "kill token was never consumed"

        # --- phase 4: SIGTERM drains cleanly, and /health says so -------
        # A stream of fresh simulate requests keeps the queue non-empty,
        # so the close-flush exists and service.drain:hang wedges it for
        # 1.5 s -- a wide, deterministic window in which /health must
        # report "draining" and a new POST must be refused "closed".
        stream_outcomes: list[str] = []
        outcome_lock = threading.Lock()
        stream_stop = threading.Event()

        def stream(worker: int) -> None:
            seed = 20000 + worker * 1000
            while not stream_stop.is_set():
                task = _tasks(1, root_seed=seed)[0]
                seed += 1
                try:
                    makespan = client.simulate(task, cores=2)
                    assert float(makespan) > 0.0
                    outcome = "ok"
                except ServiceClosedError:
                    outcome = "closed"
                except ServiceOverloadedError:
                    outcome = "shed"
                except ServiceError as error:
                    # Connection-level failure on a *new* request after the
                    # listener went down is equivalent to "closed"; anything
                    # else structured is a real failure.
                    outcome = (
                        "closed"
                        if getattr(error, "retryable", False)
                        else "unexpected"
                    )
                with outcome_lock:
                    stream_outcomes.append(outcome)
                if outcome in ("closed", "unexpected"):
                    return

        streamers = [
            threading.Thread(target=stream, args=(i,)) for i in range(8)
        ]
        for thread in streamers:
            thread.start()
        time.sleep(0.5)  # the stream is established
        process.send_signal(signal.SIGTERM)

        draining_seen = False
        probe_samples: list[tuple[float, str]] = []
        probe_start = time.monotonic()
        probe_deadline = probe_start + 5.0
        while time.monotonic() < probe_deadline:
            try:
                status = client.health(timeout=2)["status"]
            except ServiceError as error:
                probe_samples.append(
                    (time.monotonic() - probe_start, f"error: {error}")
                )
                break  # listener already torn down
            probe_samples.append((time.monotonic() - probe_start, status))
            if status == "draining":
                draining_seen = True
                break
            time.sleep(0.02)
        if not draining_seen:
            for offset, status in probe_samples:
                print(f"  probe +{offset:.3f}s: {status}", flush=True)
        assert draining_seen, "/health never reported 'draining' during drain"
        try:
            client.simulate(_tasks(1, root_seed=31000)[0], cores=2)
            raise AssertionError("POST accepted during the drain")
        except (ServiceClosedError, ServiceError):
            pass  # refused (503 closed) or the listener is already gone
        stream_stop.set()
        for thread in streamers:
            thread.join(timeout=120)
        assert "unexpected" not in stream_outcomes, stream_outcomes
        print(
            f"drain stream: {stream_outcomes.count('ok')} ok, "
            f"{stream_outcomes.count('shed')} shed, "
            f"{stream_outcomes.count('closed')} refused after close; "
            f"/health reported 'draining' during the drain window"
        )
        output = process.communicate(timeout=60)[0]
        print(output, end="")
        assert process.returncode == 0, f"exit {process.returncode}"
        assert "draining" in output
        print("chaos smoke PASS: nothing lost, clean drain, exit 0")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


if __name__ == "__main__":
    sys.exit(main())
