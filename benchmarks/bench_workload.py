#!/usr/bin/env python3
"""Benchmark of the PR-9 shared-capacity coupled workload simulator.

The online-workload subsystem simulates many released job instances
contending for one host-core/accelerator pool.  Two engines implement the
same event-loop specification (``src/repro/simulation/workload.py``):

* **scalar reference** -- a per-event heapq loop over individual nodes,
  the semantic ground truth (``simulate_workload_reference``);
* **coupled lockstep** -- the numpy engine advancing the whole node space
  of every in-flight instance per event batch
  (``simulate_workload(..., backend="numpy")``).

The workload is sized like a saturated serving tier: several periodic
streams of host-side DAGs with short integer service times (RPC-scale
work units) released densely onto a wide host, so dozens of instances
overlap, the event lattice stays coarse, and every event step
retires/starts nodes in bulk -- the regime the coupled engine exists
for.  (Fine-grained fractional WCETs fragment the event lattice and
favour the scalar loop; ``resolve_workload_backend`` keeps ``"auto"`` on
the reference-compatible numpy path either way.)  Both engines must
return **bit-identical** per-instance completion times; the coupled
engine must beat the reference by ``COUPLED_SPEEDUP_TARGET``.

Acceptance is enforced by ``--smoke`` in CI, next to the PR 2-8 smokes;
a full run writes ``BENCH_PR9.json`` at the repository root, extending
the performance trajectory of ``BENCH_PR1.json`` ... ``BENCH_PR8.json``.

Run with:  python benchmarks/bench_workload.py  [--smoke]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import dataclasses  # noqa: E402

import numpy as np  # noqa: E402

from repro.generator.arrivals import PeriodicArrivals  # noqa: E402
from repro.generator.presets import SMALL_TASKS  # noqa: E402
from repro.generator.random_dag import DagStructureGenerator  # noqa: E402
from repro.parallel import spawn_seeds  # noqa: E402
from repro.simulation.platform import Platform  # noqa: E402
from repro.simulation.schedulers import policy_by_name  # noqa: E402
from repro.simulation.workload import (  # noqa: E402
    JobStream,
    build_workload,
    simulate_workload,
    simulate_workload_reference,
)

OUTPUT = _REPO_ROOT / "BENCH_PR9.json"

#: Acceptance: coupled lockstep vs the scalar reference event loop.
COUPLED_SPEEDUP_TARGET = 2.0

#: Shared platform: a wide serving-tier host so many instances overlap.
HOST_CORES = 1024
ACCELERATORS = 2

#: Timed repetitions; the best (minimum) time is reported.
REPEATS = 3


def build_benchmark_workload(smoke: bool):
    """A saturated multi-stream workload on the shared platform.

    Host-side DAGs with short integer WCETs (1..8 time units) on integer
    periods: the release/finish lattice stays coarse, so each event step
    carries a large retire/start batch -- the coupled engine's case.  The
    offered load is ~2x the host capacity, so the platform runs saturated
    for the whole horizon.
    """
    stream_count = 4 if smoke else 6
    instances_per_stream = 50 if smoke else 60
    config = dataclasses.replace(
        SMALL_TASKS.with_node_range(50, 100), c_min=1, c_max=8
    )
    streams = []
    for index, seed in enumerate(spawn_seeds(2018, stream_count)):
        task = DagStructureGenerator(config, seed).generate_task(f"tau_{index}")
        # Dense releases relative to the service rate: the platform runs
        # saturated, which is exactly where per-event batching pays.
        period = max(
            1.0, round(stream_count * task.volume / (2.0 * HOST_CORES))
        )
        streams.append(
            JobStream(
                task=task,
                arrivals=PeriodicArrivals(period=period),
                deadline=10.0 * period,
            )
        )
    horizon = instances_per_stream * max(
        stream.arrivals.period for stream in streams
    )
    return build_workload(streams, horizon)


def bench_engine(run) -> tuple[float, object]:
    best_s, result = float("inf"), None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = run()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def main() -> dict:
    smoke = "--smoke" in sys.argv
    workload = build_benchmark_workload(smoke)
    platform = Platform(HOST_CORES, ACCELERATORS)
    policy = policy_by_name("breadth-first")
    nodes = sum(len(job.task.graph.nodes()) for job in workload)
    print(
        f"workload: {len(workload)} instances, {nodes} nodes total, "
        f"platform m={HOST_CORES} + {ACCELERATORS} accelerators"
    )

    reference_s, reference = bench_engine(
        lambda: simulate_workload_reference(workload, platform, policy)
    )
    coupled_s, coupled = bench_engine(
        lambda: simulate_workload(workload, platform, policy, backend="numpy")
    )

    identical = bool(
        np.array_equal(reference.completions, coupled.completions)
    )
    speedup = reference_s / max(coupled_s, 1e-9)

    document = {
        "benchmark": "coupled_workload",
        "pr": 9,
        "description": (
            "Shared-capacity coupled lockstep workload simulator "
            "(simulation/workload.py) vs the scalar reference event loop "
            "on a saturated multi-stream workload over a wide host "
            "(see docs/workloads.md and docs/performance.md section 11)."
        ),
        "smoke": smoke,
        "instances": len(workload),
        "nodes_total": nodes,
        "host_cores": HOST_CORES,
        "accelerators": ACCELERATORS,
        "miss_ratio": coupled.miss_ratio(),
        "peak_backlog": coupled.peak_backlog(),
        "reference_s": reference_s,
        "coupled_s": coupled_s,
        "reference_instances_per_s": len(workload) / reference_s,
        "coupled_instances_per_s": len(workload) / coupled_s,
        "coupled_speedup": speedup,
        "acceptance": {
            "coupled_speedup": speedup,
            "coupled_speedup_target": COUPLED_SPEEDUP_TARGET,
            "coupled_speedup_met": speedup >= COUPLED_SPEEDUP_TARGET,
            "completions_bit_identical": identical,
        },
    }

    print(
        f"scalar reference: {reference_s:.3f}s "
        f"({document['reference_instances_per_s']:.0f} instances/s) | "
        f"coupled lockstep: {coupled_s:.3f}s "
        f"({document['coupled_instances_per_s']:.0f} instances/s, "
        f"x{speedup:.2f})"
    )
    if not smoke:
        OUTPUT.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"results written to {OUTPUT}")
    accepted = document["acceptance"]
    print(
        f"acceptance: coupled x{speedup:.2f} "
        f"(target x{COUPLED_SPEEDUP_TARGET:.1f}) -> "
        f"{'PASS' if accepted['coupled_speedup_met'] else 'FAIL'}; "
        f"completions bit-identical -> "
        f"{'PASS' if accepted['completions_bit_identical'] else 'FAIL'}"
    )
    return document


if __name__ == "__main__":
    result = main()
    accepted = result["acceptance"]
    if not all(
        value for key, value in accepted.items() if isinstance(value, bool)
    ):
        sys.exit(1)
