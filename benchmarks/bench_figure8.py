"""Benchmark / reproduction of Figure 8 (Section 5.4).

Occurrence percentage of the three Theorem 1 execution scenarios for random
large tasks as the offloaded fraction grows.

Expected qualitative shape (checked below):

* Scenario 1 dominates for small fractions and fades away as ``C_off``
  grows (the paper locates the hand-over below ~8 % of the volume);
* Scenario 2.2 takes over for intermediate fractions;
* Scenario 2.1 grows for large fractions, and it appears *earlier* for larger
  host sizes because ``R_hom(G_par)`` shrinks with ``m``;
* at every sweep point the three percentages sum to 100 %.
"""

from __future__ import annotations

import pytest


def test_figure8(benchmark, experiment_scale, publish):
    from repro.experiments.figure8 import run_figure8

    result = benchmark.pedantic(
        run_figure8, kwargs={"scale": experiment_scale}, rounds=1, iterations=1
    )
    publish(result)

    fractions = experiment_scale.fractions
    for cores in experiment_scale.core_counts:
        scenario1 = result.series_by_label(f"scenario 1 m={cores}")
        scenario21 = result.series_by_label(f"scenario 2.1 m={cores}")
        scenario22 = result.series_by_label(f"scenario 2.2 m={cores}")
        for index in range(len(fractions)):
            total = scenario1.y[index] + scenario21.y[index] + scenario22.y[index]
            assert total == pytest.approx(100.0)
        # Scenario 1 fades as the offloaded fraction grows.
        assert scenario1.y[0] >= scenario1.y[-1]
        # Scenario 2.1 eventually appears (large fractions push C_off past
        # R_hom(G_par)).
        assert max(scenario21.y) > 0 or max(fractions) < 0.2

    # Larger hosts reach Scenario 2.1 earlier (or at least as early).
    smallest, largest = min(experiment_scale.core_counts), max(experiment_scale.core_counts)
    small_21 = result.series_by_label(f"scenario 2.1 m={smallest}")
    large_21 = result.series_by_label(f"scenario 2.1 m={largest}")
    assert sum(large_21.y) >= sum(small_21.y) - 1e-9
