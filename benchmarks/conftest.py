"""Shared configuration of the benchmark harness.

Each benchmark regenerates one artefact of the paper's evaluation (a figure,
the worked example, or one of the reproduction's ablations), prints the
corresponding text table and writes it to ``benchmarks/results/``.

Scale selection
---------------
By default the benchmarks run at *quick* scale (a few seconds per figure,
qualitative shapes preserved).  Set the environment variable
``REPRO_BENCH_SCALE=paper`` to run the paper-scale configuration (100 DAGs
per sweep point, all four host sizes) -- expect minutes to hours, dominated
by the ILP experiment of Figure 7.
``REPRO_BENCH_DAGS=<n>`` overrides the number of DAGs per sweep point.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def experiment_scale():
    """The :class:`repro.experiments.ExperimentScale` used by every benchmark."""
    from repro.experiments.config import paper_scale, quick_scale

    scale = paper_scale() if os.environ.get("REPRO_BENCH_SCALE") == "paper" else quick_scale()
    dags_override = os.environ.get("REPRO_BENCH_DAGS")
    if dags_override:
        scale = scale.with_dags_per_point(int(dags_override))
    return scale


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory receiving the rendered tables and CSV exports."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def publish(results_dir: Path):
    """Callable fixture: render a result, persist it and print the table."""
    from repro.experiments.tables import render_result, write_csv

    def _publish(result) -> str:
        table = render_result(result)
        (results_dir / f"{result.name}.txt").write_text(table + "\n", encoding="utf-8")
        write_csv(result, results_dir / f"{result.name}.csv")
        result.to_json(results_dir / f"{result.name}.json")
        print()
        print(table)
        for series in result.series:
            if series.metadata:
                print(f"  [{series.label}] {series.metadata}")
        return table

    return _publish
