"""Benchmark / reproduction of Figure 6 (Section 5.2).

Percentage change of the average simulated execution time of the original
task ``tau`` with respect to the transformed task ``tau'`` under the
GOMP-style breadth-first scheduler, as the offloaded workload grows from a
few percent to most of the task volume.

Expected qualitative shape (checked below):

* for very small ``C_off`` the transformation *hurts* (negative values) --
  the paper reports crossovers around 11 %, 8 %, 6 % and 4.5 % of the volume
  for m = 2, 4, 8 and 16;
* beyond the crossover the transformation pays off (positive values), because
  the synchronisation point prevents the host from idling while the
  accelerator works (Figure 1(c));
* the benefit shrinks again for very large ``C_off`` in relative terms, since
  the offloaded execution dominates both makespans.
"""

from __future__ import annotations


def test_figure6(benchmark, experiment_scale, publish):
    from repro.experiments.figure6 import run_figure6

    result = benchmark.pedantic(
        run_figure6, kwargs={"scale": experiment_scale}, rounds=1, iterations=1
    )
    publish(result)

    for cores in experiment_scale.core_counts:
        series = result.series_by_label(f"m={cores}")
        # The transformation must win for a sufficiently large offloaded
        # fraction: the largest sampled fractions show a positive change.
        assert max(series.y) > 0, f"transformation never paid off for m={cores}"
        # The peak benefit is not at the smallest fraction.
        assert series.y[0] < max(series.y)

    # Small-C_off penalty grows with the core count (more parallelism lost),
    # so the first sample for the largest host is no better than for the
    # smallest host.
    smallest = result.series_by_label(f"m={min(experiment_scale.core_counts)}")
    largest = result.series_by_label(f"m={max(experiment_scale.core_counts)}")
    assert largest.y[0] <= smallest.y[0] + 1e-9
