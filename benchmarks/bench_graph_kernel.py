#!/usr/bin/env python3
"""Micro-benchmarks of the cached dense-index graph kernel.

Measures, on layered random DAGs of 50 / 500 / 2000 nodes:

* repeated **critical-path** queries -- cached vs. uncached (the uncached
  baseline calls :meth:`~repro.core.graph.DirectedAcyclicGraph.invalidate_caches`
  before every query, which is exactly what the kernel did implicitly before
  the cache existed: recompute the topological order and the longest-path
  labelling from scratch);
* repeated **reachability** queries (``are_parallel``/``descendants``) --
  cached bitmask tables vs. per-query BFS cost;
* the **batched analysis** (:func:`repro.analysis.batch.analyse_many`,
  one transformation per task shared across host sizes) vs. the naive
  per-``(task, m)`` loop.

Aggregated results are written to ``BENCH_PR1.json`` at the repository root
so the performance trajectory of the project is tracked across PRs.

Run with:  python benchmarks/bench_graph_kernel.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis import analyse, analyse_many  # noqa: E402
from repro.core.graph import DirectedAcyclicGraph  # noqa: E402
from repro.core.task import DagTask  # noqa: E402

#: DAG sizes of the sweep (node counts).
SIZES = (50, 500, 2000)

#: Host sizes used by the batched-analysis scenario.
CORES = (2, 4, 8)

OUTPUT = _REPO_ROOT / "BENCH_PR1.json"


def make_layered_dag(nodes: int, width: int, seed: int) -> DirectedAcyclicGraph:
    """A deterministic layered DAG: every node links back to 1-3 nodes of the
    previous layer, the structural shape the paper's generator produces."""
    rng = np.random.default_rng(seed)
    graph = DirectedAcyclicGraph()
    layers: list[list[str]] = []
    created = 0
    while created < nodes:
        layer = []
        for _ in range(min(width, nodes - created)):
            name = f"v{created}"
            graph.add_node(name, int(rng.integers(1, 100)))
            layer.append(name)
            created += 1
        if len(layers) > 0:
            previous = layers[-1]
            for name in layer:
                fan_in = 1 + int(rng.integers(0, min(3, len(previous))))
                for src in rng.choice(previous, size=fan_in, replace=False):
                    if not graph.has_edge(str(src), name):
                        graph.add_edge(str(src), name)
        layers.append(layer)
    return graph


def _time_per_op(operation, repetitions: int) -> float:
    """Average seconds per call over ``repetitions`` calls."""
    start = time.perf_counter()
    for _ in range(repetitions):
        operation()
    return (time.perf_counter() - start) / repetitions


def bench_critical_path(graph: DirectedAcyclicGraph) -> dict:
    """Repeated ``critical_path_length`` queries, cached vs uncached."""

    def cached() -> None:
        graph.critical_path_length()

    def uncached() -> None:
        graph.invalidate_caches()
        graph.critical_path_length()

    graph.critical_path_length()  # warm
    cached_s = _time_per_op(cached, 2000)
    uncached_s = _time_per_op(uncached, 30)
    return {
        "cached_us": cached_s * 1e6,
        "uncached_us": uncached_s * 1e6,
        "speedup": uncached_s / cached_s,
    }


def bench_reachability(graph: DirectedAcyclicGraph, seed: int) -> dict:
    """Repeated ``are_parallel`` queries over a fixed pair sample."""
    rng = np.random.default_rng(seed)
    names = graph.nodes()
    pairs = [
        (names[int(a)], names[int(b)])
        for a, b in zip(
            rng.integers(0, len(names), size=64), rng.integers(0, len(names), size=64)
        )
    ]

    def cached() -> None:
        for a, b in pairs:
            graph.are_parallel(a, b)

    def uncached() -> None:
        for a, b in pairs:
            graph.invalidate_caches()
            graph.are_parallel(a, b)

    cached()  # warm
    cached_s = _time_per_op(cached, 50) / len(pairs)
    uncached_s = _time_per_op(uncached, 2) / len(pairs)
    return {
        "pairs": len(pairs),
        "cached_us": cached_s * 1e6,
        "uncached_us": uncached_s * 1e6,
        "speedup": uncached_s / cached_s,
    }


def bench_batched_analysis(size: int, seed: int) -> dict:
    """Batched ``analyse_many`` vs the naive per-``(task, m)`` loop."""
    task_count = max(2, 24 // max(1, size // 100))
    tasks = []
    for index in range(task_count):
        graph = make_layered_dag(size, max(4, size // 12), seed + index)
        offloaded = graph.nodes()[size // 2]
        tasks.append(
            DagTask(graph=graph, offloaded_node=offloaded, name=f"bench_{size}_{index}")
        )

    def naive() -> None:
        for task in tasks:
            task.graph.invalidate_caches()
        for cores in CORES:
            for task in tasks:
                analyse(task, cores)

    def batched() -> None:
        for task in tasks:
            task.graph.invalidate_caches()
        analyse_many(tasks, cores=CORES)

    naive()  # warm imports and allocators
    naive_s = _time_per_op(naive, 3)
    batched_s = _time_per_op(batched, 3)
    return {
        "tasks": task_count,
        "core_counts": list(CORES),
        "naive_ms": naive_s * 1e3,
        "batched_ms": batched_s * 1e3,
        "speedup": naive_s / batched_s,
    }


def main() -> dict:
    document: dict = {
        "benchmark": "graph_kernel",
        "pr": 1,
        "description": (
            "Cached dense-index graph kernel vs uncached recomputation, and "
            "batched vs naive analysis (see docs/performance.md)."
        ),
        "sizes": list(SIZES),
        "results": [],
    }
    query_speedups = []
    for size in SIZES:
        width = max(4, size // 12)
        graph = make_layered_dag(size, width, seed=size)
        entry = {
            "size": size,
            "edges": graph.edge_count,
            "critical_path": bench_critical_path(graph),
            "reachability": bench_reachability(graph, seed=size + 1),
            "batched_analysis": bench_batched_analysis(size, seed=size + 2),
        }
        query_speedups.append(entry["critical_path"]["speedup"])
        query_speedups.append(entry["reachability"]["speedup"])
        document["results"].append(entry)
        print(
            f"n={size:5d}  critical-path x{entry['critical_path']['speedup']:8.1f}  "
            f"reachability x{entry['reachability']['speedup']:8.1f}  "
            f"batched-analysis x{entry['batched_analysis']['speedup']:5.2f}"
        )
    document["min_query_speedup"] = min(query_speedups)
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"\nresults written to {OUTPUT}")
    print(f"minimum cached-query speedup: x{document['min_query_speedup']:.1f}")
    return document


if __name__ == "__main__":
    main()
