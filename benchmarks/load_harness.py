#!/usr/bin/env python3
"""Sustained open-loop load harness of the evaluation service (PR 7).

``bench_service.py`` fires one closed-loop burst: every thread waits for
its answer before asking again, so a slow server quietly *reduces* the
offered load and the measured latency flatters it (coordinated omission).
This harness is the opposite shape -- the one "millions of users" actually
presents:

* per-endpoint target rates are compiled into a repeating **dispatch
  programme** by :func:`compute_schedule`: each endpoint's period is
  rounded to an integer number of scheduler ticks and the programme covers
  one LCM hyperperiod, so arbitrary rate mixes repeat exactly -- the same
  hyperperiod-expansion idiom the paper uses for periodic task sets;
* a dispatcher thread fires each programme entry at its **due time**
  regardless of how many answers are still outstanding (open loop), onto a
  pool of client workers;
* latency is measured **from the due time**, not from when a worker got
  around to sending -- backlog shows up as latency instead of silently
  thinning the load.

While the window runs, a sampler polls ``/stats`` and derives the
cache-hit-ratio and batch-occupancy trajectories from counter deltas; at
the end the harness cross-checks ``/metrics`` against ``/stats`` and the
client-side dispatch ledger (zero lost requests, counter reconciliation).

PR 10 adds a **trace-derived stage breakdown**: the server is booted with
a ring large enough to keep every trace, the harness pulls each span tree
from ``GET /traces/<id>`` and attributes the observed latency to stages
(queue wait, batch overhead, engine time, transport write), then
reconciles the per-endpoint trace totals against the
``repro_http_request_seconds`` histogram sums -- per-request truth and
aggregate truth must describe the same workload.

``--smoke`` runs a short sustained window and *asserts* the committed SLOs
-- the CI regression gate for every later serving PR.  A full run writes
the time-series document to ``BENCH_PR7.json``.

Run with:  python benchmarks/load_harness.py  [--smoke] [--port N]
           [--duration S] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.generator.config import GeneratorConfig, OffloadConfig  # noqa: E402
from repro.generator.offload import make_heterogeneous  # noqa: E402
from repro.generator.random_dag import DagStructureGenerator  # noqa: E402
from repro.io.json_io import task_to_dict  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

OUTPUT = _REPO_ROOT / "BENCH_PR7.json"

#: Committed SLOs, asserted by ``--smoke`` in CI.  p99 is end-to-end over
#: loopback HTTP at the smoke rates below, measured from the *scheduled*
#: due time (so dispatcher backlog counts against it).  Generous enough
#: for a loaded shared CI box, tight enough that an accidental O(n) in the
#: request path or a lost flush trigger fails the gate.
SLO_P99_MS = {"/simulate": 250.0, "/analyse": 400.0, "/health": 150.0}

#: Every endpoint must complete at least this fraction of its offered rate.
SLO_ACHIEVED_RATIO = 0.9

#: Offered request rates (requests/second) per endpoint.
SMOKE_RATES = {"/simulate": 40.0, "/analyse": 10.0, "/health": 5.0}
FULL_RATES = {"/simulate": 120.0, "/analyse": 20.0, "/health": 10.0}

#: Distinct tasks cycled through per endpoint: small enough that the cache
#: warms within the first seconds (the steady state a long-lived service
#: lives in), large enough that the first hyperperiods exercise the
#: batched cold path.
SIMULATE_TASKS = 12
ANALYSE_TASKS = 6
SIMULATE_CORES = (2, 4)

_CONFIG = GeneratorConfig(
    p_par=0.6, n_par=3, max_depth=2, n_min=4, n_max=12, c_min=1, c_max=12
)


def _tasks(count: int, root_seed: int) -> list:
    tasks = []
    for seed in range(root_seed, root_seed + count):
        host = DagStructureGenerator(
            _CONFIG, np.random.default_rng(seed)
        ).generate_task()
        tasks.append(
            make_heterogeneous(
                host, OffloadConfig(), np.random.default_rng(seed + 1),
                target_fraction=0.25,
            )
        )
    return tasks


# ----------------------------------------------------------------------
# Dispatch programme
# ----------------------------------------------------------------------
def compute_schedule(
    rates: dict[str, float], tick: float = 0.001
) -> tuple[float, list[tuple[float, str]]]:
    """Compile per-endpoint rates into one repeating dispatch programme.

    Each endpoint's period is rounded to an integer number of ``tick``
    seconds; the programme spans the LCM of those periods (the
    hyperperiod), so replaying it back to back reproduces every target
    rate exactly -- no drift, no per-dispatch randomness.

    Returns ``(cycle_seconds, [(offset_seconds, endpoint), ...])`` with the
    programme sorted by offset.  The *achieved* offered rate can differ
    from the requested one by the period rounding; read it back as
    ``count(endpoint) / cycle_seconds``.
    """
    if tick <= 0:
        raise ValueError(f"tick must be positive, got {tick}")
    periods: dict[str, int] = {}
    for endpoint, rate in rates.items():
        if rate <= 0:
            raise ValueError(f"rate for {endpoint} must be positive, got {rate}")
        periods[endpoint] = max(1, round(1.0 / (rate * tick)))
    cycle_ticks = math.lcm(*periods.values())
    programme = [
        (k * period * tick, endpoint)
        for endpoint, period in periods.items()
        for k in range(cycle_ticks // period)
    ]
    programme.sort()
    return cycle_ticks * tick, programme


def offered_rates(
    cycle_s: float, programme: list[tuple[float, str]]
) -> dict[str, float]:
    """Actual offered rate per endpoint after period rounding."""
    counts: dict[str, int] = {}
    for _, endpoint in programme:
        counts[endpoint] = counts.get(endpoint, 0) + 1
    return {endpoint: count / cycle_s for endpoint, count in counts.items()}


# ----------------------------------------------------------------------
# Open-loop driver
# ----------------------------------------------------------------------
class LoadResult:
    """Dispatch ledger + latency samples + service trajectory of one run."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.samples: list[tuple[str, float, float, str]] = []
        self.dispatched: dict[str, int] = {}
        self.trajectory: list[dict] = []
        self.duration_s = 0.0

    def record(
        self, endpoint: str, due_offset: float, latency: float, status: str
    ) -> None:
        with self.lock:
            self.samples.append((endpoint, due_offset, latency, status))


def _request_factories(client: ServiceClient) -> dict:
    """One callable per endpoint, cycling a fixed seeded request set.

    Tasks ship as pre-serialised documents: the harness measures the
    service, so per-dispatch client-side work is kept to one JSON dump.
    """
    simulate_docs = [task_to_dict(t) for t in _tasks(SIMULATE_TASKS, 7000)]
    analyse_docs = [task_to_dict(t) for t in _tasks(ANALYSE_TASKS, 7500)]
    counters = {"/simulate": 0, "/analyse": 0}
    lock = threading.Lock()

    def next_index(endpoint: str) -> int:
        with lock:
            counters[endpoint] += 1
            return counters[endpoint] - 1

    def simulate() -> None:
        index = next_index("/simulate")
        document = simulate_docs[index % len(simulate_docs)]
        cores = SIMULATE_CORES[(index // len(simulate_docs)) % len(SIMULATE_CORES)]
        client.simulate(document, cores=cores)

    def analyse() -> None:
        index = next_index("/analyse")
        client.analyse(analyse_docs[index % len(analyse_docs)], cores=[2, 4])

    def health() -> None:
        status = client.health()["status"]
        if status != "ok":
            raise RuntimeError(f"health probe returned {status!r}")

    return {"/simulate": simulate, "/analyse": analyse, "/health": health}


def _sample_trajectory(
    client: ServiceClient,
    result: LoadResult,
    stop: threading.Event,
    started: float,
    interval: float = 0.5,
) -> None:
    """Poll ``/stats`` and derive trajectory points from counter deltas."""
    previous = None
    while not stop.wait(interval):
        try:
            stats = client.stats()
        except Exception:  # noqa: BLE001 - the run outlives a lost sample
            continue
        now = time.perf_counter() - started
        cache = stats["cache"]
        batching = stats["batching"]
        point = {
            "t_s": now,
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "batches": batching["batches"],
            "batched_requests": batching["submitted"],
            "pending": batching["pending"],
            "requests_total": stats["requests"]["total"],
        }
        if previous is not None:
            d_hits = point["cache_hits"] - previous["cache_hits"]
            d_misses = point["cache_misses"] - previous["cache_misses"]
            d_batches = point["batches"] - previous["batches"]
            d_batched = point["batched_requests"] - previous["batched_requests"]
            lookups = d_hits + d_misses
            point["cache_hit_ratio"] = d_hits / lookups if lookups else None
            point["mean_batch_size"] = (
                d_batched / d_batches if d_batches else None
            )
            occupancy = (
                d_batched / d_batches / batching["max_batch"]
                if d_batches
                else None
            )
            point["batch_occupancy"] = occupancy
        result.trajectory.append(point)
        previous = point


def run_load(
    client: ServiceClient,
    rates: dict[str, float],
    duration: float,
    workers: int,
    tick: float = 0.001,
) -> LoadResult:
    """Drive ``client`` open-loop at ``rates`` for ``duration`` seconds."""
    cycle_s, programme = compute_schedule(rates, tick)
    factories = _request_factories(client)
    unknown = set(rates) - set(factories)
    if unknown:
        raise ValueError(f"no request factory for endpoints {sorted(unknown)}")
    result = LoadResult()
    pool = ThreadPoolExecutor(max_workers=workers)
    stop_sampler = threading.Event()

    started = time.perf_counter()
    sampler = threading.Thread(
        target=_sample_trajectory,
        args=(ServiceClient(base_url=client.base_url, retries=0), result,
              stop_sampler, started),
        daemon=True,
    )
    sampler.start()

    def fire(endpoint: str, due: float) -> None:
        try:
            factories[endpoint]()
            status = "ok"
        except Exception as error:  # noqa: BLE001 - classified, not fatal
            status = type(error).__name__
        # Open-loop latency: from the *scheduled* due time, so queueing in
        # the dispatcher/pool counts against the service, as a user would
        # experience it (no coordinated omission).
        result.record(endpoint, due - started, time.perf_counter() - due, status)

    end = started + duration
    cycle_index = 0
    futures = []
    while True:
        base = started + cycle_index * cycle_s
        if base >= end:
            break
        for offset, endpoint in programme:
            due = base + offset
            if due >= end:
                break
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            with result.lock:
                result.dispatched[endpoint] = (
                    result.dispatched.get(endpoint, 0) + 1
                )
            futures.append(pool.submit(fire, endpoint, due))
        cycle_index += 1
    pool.shutdown(wait=True)
    stop_sampler.set()
    sampler.join(timeout=5.0)
    result.duration_s = time.perf_counter() - started
    return result


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def exact_percentile(sorted_values: list[float], quantile: float) -> float:
    """Nearest-rank-with-interpolation percentile of pre-sorted values."""
    if not sorted_values:
        return float("nan")
    rank = quantile * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def summarise(
    result: LoadResult, offered: dict[str, float], window_s: float = 1.0
) -> dict:
    """Per-endpoint summary + per-window latency time series."""
    by_endpoint: dict[str, list[tuple[float, float, str]]] = {}
    for endpoint, due, latency, status in result.samples:
        by_endpoint.setdefault(endpoint, []).append((due, latency, status))

    endpoints: dict[str, dict] = {}
    for endpoint, rows in sorted(by_endpoint.items()):
        ok = sorted(latency for _, latency, status in rows if status == "ok")
        errors: dict[str, int] = {}
        for _, _, status in rows:
            if status != "ok":
                errors[status] = errors.get(status, 0) + 1
        dispatched = result.dispatched.get(endpoint, 0)
        endpoints[endpoint] = {
            "dispatched": dispatched,
            "completed": len(rows),
            "ok": len(ok),
            "errors": errors,
            "lost": dispatched - len(rows),
            "offered_rps": offered.get(endpoint, 0.0),
            "achieved_rps": len(ok) / result.duration_s,
            "p50_ms": exact_percentile(ok, 0.50) * 1000,
            "p95_ms": exact_percentile(ok, 0.95) * 1000,
            "p99_ms": exact_percentile(ok, 0.99) * 1000,
            "max_ms": ok[-1] * 1000 if ok else float("nan"),
        }

    window_count = max(1, math.ceil(result.duration_s / window_s))
    windows = []
    for index in range(window_count):
        start = index * window_s
        entry: dict = {"start_s": start, "end_s": start + window_s}
        per_endpoint = {}
        for endpoint, rows in sorted(by_endpoint.items()):
            values = sorted(
                latency
                for due, latency, status in rows
                if status == "ok" and start <= due < start + window_s
            )
            if values:
                per_endpoint[endpoint] = {
                    "count": len(values),
                    "p50_ms": exact_percentile(values, 0.50) * 1000,
                    "p95_ms": exact_percentile(values, 0.95) * 1000,
                    "p99_ms": exact_percentile(values, 0.99) * 1000,
                }
        entry["endpoints"] = per_endpoint
        windows.append(entry)
    return {"endpoints": endpoints, "latency_windows": windows}


def check_consistency(client: ServiceClient, summary: dict) -> dict:
    """Reconcile ``/metrics`` against ``/stats`` and the dispatch ledger.

    Exact equalities only -- both documents render the same underlying
    counter objects, so any difference is a bookkeeping bug, not noise.
    Scraping order matters: the ledger endpoints are quiesced by the time
    this runs, and the probe's own GETs touch only /stats and /metrics.
    """
    stats = client.stats()
    metrics = client.metrics()
    service_requests = {
        series["labels"]["kind"]: series["value"]
        for series in metrics["counters"]["repro_service_requests_total"][
            "series"
        ]
    }
    http_responses: dict[str, int] = {}
    for series in metrics["counters"]["repro_http_responses_total"]["series"]:
        endpoint = series["labels"]["endpoint"]
        http_responses[endpoint] = (
            http_responses.get(endpoint, 0) + series["value"]
        )
    latency_counts = {
        series["labels"]["endpoint"]: series["count"]
        for series in metrics["histograms"]["repro_http_request_seconds"][
            "series"
        ]
    }
    sim_engines = {
        series["labels"]["engine"]: series["value"]
        for series in metrics["counters"]
        .get("repro_service_sim_engine_total", {})
        .get("series", [])
    }
    checks = {}
    for kind in ("simulate", "analyse", "makespan"):
        checks[f"requests_{kind}"] = (
            stats["requests"][kind] == service_requests.get(kind, 0)
        )
    for endpoint in ("/simulate", "/analyse"):
        expected = summary["endpoints"].get(endpoint, {}).get("dispatched", 0)
        checks[f"http_responses_{endpoint}"] = (
            http_responses.get(endpoint, 0) == expected
        )
        checks[f"http_latency_count_{endpoint}"] = (
            latency_counts.get(endpoint, 0) == expected
        )
    # Engine attribution: every simulation batch/solo evaluation carries a
    # concrete engine label, /stats reads the same counter /metrics renders,
    # and the per-engine sum never exceeds the overall batch count (which
    # also covers analyse/makespan groups).
    engine_stats = stats["engine"]["by_engine"]
    for name in ("dense", "lockstep", "compiled"):
        checks[f"sim_engine_{name}"] = (
            engine_stats.get(name, 0) == sim_engines.get(name, 0)
        )
    checks["sim_engine_bounded"] = (
        sum(sim_engines.values()) <= stats["engine"]["batches"]
    )
    return {
        "stats_requests": stats["requests"],
        "metrics_requests": service_requests,
        "metrics_http_responses": http_responses,
        "metrics_sim_engines": sim_engines,
        "vector_threshold": stats["engine"].get("vector_threshold"),
        "checks": checks,
        "consistent": all(checks.values()),
    }


#: Span names counted as engine time in the stage breakdown.
_ENGINE_SPANS = ("engine.", "oracle.solve", "workload.simulate")


def trace_stage_breakdown(client: ServiceClient) -> dict:
    """Attribute every kept trace's latency to pipeline stages, per endpoint.

    Stages (exclusive, summing to the root ``http.request`` duration):

    * ``cache``   -- fingerprint + cache lookup
    * ``queue``   -- ``batcher.queue``: enqueue until the flush picked the
      request up (micro-batching wait)
    * ``engine``  -- engine/oracle/workload evaluation spans
    * ``batch``   -- the rest of ``batcher.flush``: batch assembly, result
      distribution (the cost of batching itself)
    * ``write``   -- ``http.request`` minus ``facade.submit``: body read +
      response serialisation/write
    * ``other``   -- residual inside ``facade.submit`` (dedupe joins,
      cache-hit returns, bookkeeping)

    Requires the server to keep *every* trace (big ring, ``sample=1.0``):
    the per-endpoint counts and totals are then reconcilable against the
    ``repro_http_request_seconds`` histogram, which is asserted by the
    smoke gate.
    """
    # The handler finishes a trace *after* flushing its response (the root
    # span covers the write), so the last few traces can still be on their
    # way to the ring when the burst's final response lands -- settle first.
    deadline = time.monotonic() + 5.0
    listing = client.traces(limit=1_000_000)
    while (
        listing["ring"]["kept"] + listing["ring"]["sampled_out"]
        < listing["ring"]["started"]
        and time.monotonic() < deadline
    ):
        time.sleep(0.02)
        listing = client.traces(limit=1_000_000)
    ring = listing["ring"]
    stages: dict[str, dict] = {}
    for entry in listing["traces"]:
        payload = client.trace(entry["trace_id"])
        spans = payload["spans"]
        root = next(s for s in spans if s.get("parent_id") is None)
        endpoint = root["attributes"].get("path", "?")
        total = payload["duration_ms"]
        submit = cache = queue = flush = engine = 0.0
        for span in spans:
            name = span["name"]
            duration = span["duration_ms"]
            if name == "facade.submit":
                submit += duration
            elif name == "cache.lookup":
                cache += duration
            elif name == "batcher.queue":
                queue += duration
            elif name == "batcher.flush":
                flush += duration
            elif name.startswith(_ENGINE_SPANS[0]) or name in _ENGINE_SPANS[1:]:
                engine += duration
        entry_stages = stages.setdefault(
            endpoint,
            {
                "count": 0,
                "total_ms": 0.0,
                "cache_ms": 0.0,
                "queue_ms": 0.0,
                "batch_ms": 0.0,
                "engine_ms": 0.0,
                "write_ms": 0.0,
                "other_ms": 0.0,
            },
        )
        entry_stages["count"] += 1
        entry_stages["total_ms"] += total
        entry_stages["cache_ms"] += cache
        entry_stages["queue_ms"] += queue
        entry_stages["engine_ms"] += engine
        entry_stages["batch_ms"] += max(flush - engine, 0.0)
        entry_stages["write_ms"] += max(total - submit, 0.0)
        entry_stages["other_ms"] += max(
            submit - cache - queue - flush, 0.0
        )
    for entry_stages in stages.values():
        total = entry_stages["total_ms"]
        if total > 0:
            entry_stages["stage_fractions"] = {
                stage: round(entry_stages[f"{stage}_ms"] / total, 4)
                for stage in ("cache", "queue", "batch", "engine", "write", "other")
            }
    return {"ring": ring, "endpoints": stages}


def check_traces(client: ServiceClient, breakdown: dict) -> dict:
    """Reconcile the trace-derived stage breakdown against the histograms.

    * the ring kept every started trace (nothing sampled out or evicted),
      so per-request truth is complete;
    * per endpoint, the number of kept traces equals the HTTP latency
      histogram count -- one complete trace per accepted request;
    * per endpoint, the summed trace duration never exceeds the histogram
      sum (the root span nests inside the instrumented window) and covers
      most of it (the wrapper adds microseconds, not milliseconds).
    """
    ring = breakdown["ring"]
    metrics = client.metrics()
    histogram = {
        series["labels"]["endpoint"]: series
        for series in metrics["histograms"]["repro_http_request_seconds"][
            "series"
        ]
    }
    checks: dict[str, bool] = {
        "ring_complete": (
            ring["kept"] == ring["started"]
            and ring["sampled_out"] == 0
            and ring["evicted"] == 0
        ),
        "ring_within_cap": ring["ring_bytes"] <= ring["ring_capacity_bytes"],
    }
    for endpoint, stages in sorted(breakdown["endpoints"].items()):
        series = histogram.get(endpoint)
        if series is None:
            checks[f"trace_histogram_present_{endpoint}"] = False
            continue
        hist_ms = series["sum"] * 1000.0
        checks[f"trace_count_{endpoint}"] = stages["count"] == series["count"]
        # 1 ms slack per request for clock granularity on either side.
        slack = stages["count"] * 1.0
        checks[f"trace_time_bounded_{endpoint}"] = (
            stages["total_ms"] <= hist_ms + slack
        )
        checks[f"trace_time_covers_{endpoint}"] = (
            stages["total_ms"] >= 0.8 * hist_ms - slack
        )
    return checks


# ----------------------------------------------------------------------
# Server management / entry point
# ----------------------------------------------------------------------
def _boot_server(tmp: Path) -> tuple[subprocess.Popen, int]:
    port_file = tmp / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--flush-interval", "0.02",
            # Keep every trace: the stage breakdown reconciles per-request
            # truth against the histograms, so nothing may be sampled out
            # or evicted during the window.
            "--trace-ring-bytes", str(256 * 1024 * 1024),
        ],
        env=env,
        cwd=_REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            return process, int(port_file.read_text().strip())
        if process.poll() is not None:
            print(process.stdout.read())
            raise SystemExit("server died before writing its port")
        time.sleep(0.05)
    process.kill()
    raise SystemExit("server never wrote its port file")


def evaluate_slos(summary: dict, consistency: dict) -> dict:
    """The committed gate: zero lost, zero errors, p99 SLOs, throughput."""
    checks: dict[str, bool] = {"metrics_stats_consistent": consistency["consistent"]}
    for endpoint, entry in summary["endpoints"].items():
        checks[f"zero_lost_{endpoint}"] = entry["lost"] == 0
        checks[f"zero_errors_{endpoint}"] = not entry["errors"]
        slo = SLO_P99_MS.get(endpoint)
        if slo is not None:
            checks[f"p99_{endpoint}"] = entry["p99_ms"] <= slo
        checks[f"throughput_{endpoint}"] = (
            entry["achieved_rps"] >= SLO_ACHIEVED_RATIO * entry["offered_rps"]
        )
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short sustained window + SLO assertions (CI)")
    parser.add_argument("--port", type=int, default=None,
                        help="drive an already-running service instead of "
                        "booting one")
    parser.add_argument("--duration", type=float, default=None,
                        help="sustained window in seconds "
                        "(default: 10 smoke / 30 full)")
    parser.add_argument("--workers", type=int, default=32,
                        help="client worker threads")
    parser.add_argument("--tick", type=float, default=0.001,
                        help="dispatch programme tick in seconds")
    args = parser.parse_args(argv)

    duration = args.duration or (10.0 if args.smoke else 30.0)
    rates = SMOKE_RATES if args.smoke else FULL_RATES
    cycle_s, programme = compute_schedule(rates, args.tick)
    offered = offered_rates(cycle_s, programme)
    print(
        f"dispatch programme: {len(programme)} entries per {cycle_s * 1000:g} ms "
        f"hyperperiod -> offered "
        + ", ".join(f"{ep} {rps:g}/s" for ep, rps in sorted(offered.items()))
        + f"; window {duration:g}s, {args.workers} workers"
    )

    process = None
    tmp = Path(tempfile.mkdtemp(prefix="repro-load-"))
    try:
        if args.port is not None:
            port = args.port
        else:
            process, port = _boot_server(tmp)
            print(f"booted repro serve on port {port}, pid {process.pid}")
        client = ServiceClient(port=port, timeout=60, retries=0)
        assert client.health()["status"] == "ok"

        result = run_load(client, rates, duration, args.workers, args.tick)
        summary = summarise(result, offered)
        consistency = check_consistency(client, summary)
        checks = evaluate_slos(summary, consistency)
        breakdown = trace_stage_breakdown(client)
        checks.update(check_traces(client, breakdown))

        for endpoint, entry in sorted(summary["endpoints"].items()):
            print(
                f"{endpoint}: {entry['ok']}/{entry['dispatched']} ok "
                f"({entry['achieved_rps']:.1f}/{entry['offered_rps']:.1f} rps) "
                f"p50 {entry['p50_ms']:.1f} ms, p95 {entry['p95_ms']:.1f} ms, "
                f"p99 {entry['p99_ms']:.1f} ms, max {entry['max_ms']:.1f} ms"
                + (f", errors {entry['errors']}" if entry["errors"] else "")
            )
        hit_points = [
            point["cache_hit_ratio"]
            for point in result.trajectory
            if point.get("cache_hit_ratio") is not None
        ]
        if hit_points:
            print(
                f"cache hit ratio trajectory: first {hit_points[0]:.2f} "
                f"-> last {hit_points[-1]:.2f} over {len(hit_points)} samples"
            )
        print(f"metrics/stats reconciliation: {consistency['checks']}")
        for endpoint, stages in sorted(breakdown["endpoints"].items()):
            fractions = stages.get("stage_fractions", {})
            print(
                f"trace stages {endpoint} ({stages['count']} traces): "
                + ", ".join(
                    f"{stage} {fraction * 100:.1f}%"
                    for stage, fraction in fractions.items()
                )
            )

        document = {
            "benchmark": "service_sustained_load",
            "pr": 7,
            "description": (
                "Open-loop sustained-load run against repro serve: "
                "per-endpoint rates compiled into an LCM-hyperperiod "
                "dispatch programme, latency measured from scheduled due "
                "times (coordinated-omission-free), with cache-hit and "
                "batch-occupancy trajectories sampled from /stats and a "
                "final /metrics vs /stats reconciliation "
                "(benchmarks/load_harness.py; see docs/service.md)."
            ),
            "smoke": args.smoke,
            "duration_s": result.duration_s,
            "workers": args.workers,
            "tick_s": args.tick,
            "cycle_s": cycle_s,
            "programme_entries": len(programme),
            "offered_rps": offered,
            "slo_p99_ms": SLO_P99_MS,
            "slo_achieved_ratio": SLO_ACHIEVED_RATIO,
            "endpoints": summary["endpoints"],
            "latency_windows": summary["latency_windows"],
            "service_trajectory": result.trajectory,
            "consistency": consistency,
            "trace_stages": breakdown,
            "acceptance": checks,
        }
        if not args.smoke:
            OUTPUT.write_text(
                json.dumps(document, indent=2) + "\n", encoding="utf-8"
            )
            print(f"results written to {OUTPUT}")

        failed = sorted(name for name, passed in checks.items() if not passed)
        if failed:
            print(f"SLO gate FAIL: {failed}")
            return 1
        print(
            f"SLO gate PASS: {len(checks)} checks "
            f"(zero lost, zero errors, p99 under "
            + ", ".join(
                f"{ep} {ms:g}ms" for ep, ms in sorted(SLO_P99_MS.items())
            )
            + ")"
        )
        return 0
    finally:
        if process is not None and process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                output = process.communicate(timeout=30)[0]
                if process.returncode != 0:
                    print(output)
                    print(f"server exited {process.returncode}", file=sys.stderr)
            except subprocess.TimeoutExpired:
                process.kill()
                process.communicate()


if __name__ == "__main__":
    sys.exit(main())
