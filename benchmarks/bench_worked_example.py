"""Benchmark / reproduction of the worked example of Figures 1 and 2.

Regenerates every number quoted in Sections 3.2-3.3 of the paper:

=====================================  ======
metric                                 value
=====================================  ======
vol(G)                                 18
len(G)                                 8
R_hom (Eq. 1, m = 2)                   13
naive (unsafe) bound                   11
worst-case work-conserving makespan    12
len(G') after Algorithm 1              10
makespan of the transformed schedule   10
R_het (Theorem 1)                      12
=====================================  ======
"""

from __future__ import annotations


def test_worked_example(benchmark, publish):
    from repro.experiments.worked_example import EXPECTED_VALUES, run_worked_example

    result = benchmark.pedantic(run_worked_example, rounds=3, iterations=1)
    publish(result)

    values = result.series[0].metadata["values"]
    for name, expected in EXPECTED_VALUES.items():
        assert values[name] == expected, f"{name}: got {values[name]}, paper says {expected}"
