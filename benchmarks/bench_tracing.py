#!/usr/bin/env python3
"""Tracing overhead benchmark (PR 10): the cost of observability.

Tracing hooks are compiled into the facade, batcher and kernel hot paths
permanently -- like the PR 6 fault points, they must be near-free when
they do nothing.  Three costs are measured:

* **disabled hooks** -- ``Tracer.span`` with tracing off, ``Tracer.span``
  enabled but outside any request (the in-process/driver path: one
  context-var read), and a disarmed ``record_kernel_batch`` (one
  thread-local ``getattr``).  Nanoseconds per call, gated like the
  fault-point overhead.
* **enabled tracing, end to end** -- the same closed-loop request burst
  against two in-process :class:`EvaluationService` instances, one with
  ``tracing=False`` and one fully traced (``sample=1.0``), split into the
  cold (batched-engine) and warm (cache-hit) phases.  The warm phase is
  the sensitive one: a cache hit costs microseconds, so per-request span
  bookkeeping and the ring insert show up undiluted.
* **ring byte-cap discipline** -- after the traced burst, the ring is no
  larger than its configured cap (the invariant the tail sampler enforces).

Acceptance (asserted by ``--smoke`` in CI): disabled hooks under their
nanosecond targets, warm-path slowdown from full tracing under
``TRACED_WARM_SLOWDOWN_TARGET``, results bit-identical between the traced
and untraced services, ring within cap.  A full run writes
``BENCH_PR10.json``.

Run with:  python benchmarks/bench_tracing.py  [--smoke]
"""

from __future__ import annotations

import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.generator.config import GeneratorConfig, OffloadConfig  # noqa: E402
from repro.generator.offload import make_heterogeneous  # noqa: E402
from repro.generator.random_dag import DagStructureGenerator  # noqa: E402
from repro.service import EvaluationService, Tracer  # noqa: E402
from repro.service.tracing import NULL_SPAN  # noqa: E402
from repro.simulation.kernel_stats import record_kernel_batch  # noqa: E402

OUTPUT = _REPO_ROOT / "BENCH_PR10.json"

#: Acceptance: ns/call of each disarmed hook.  The targets leave an order
#: of magnitude of headroom over a warm laptop so a loaded CI box passes,
#: while still failing if someone makes the disabled path allocate, lock
#: or format strings.
SPAN_DISABLED_TARGET_NS = 10_000.0
RECORD_DISARMED_TARGET_NS = 3_000.0

#: Acceptance: warm-path (cache-hit) slowdown of full tracing vs tracing
#: disabled.  Hits are the worst case for relative overhead -- the request
#: itself costs microseconds, so per-trace bookkeeping (span objects, the
#: ring insert's JSON sizing) shows up undiluted; measured ~x1.7 on a warm
#: box, gated with CI headroom.  Hit-heavy deployments that care should
#: lower ``sample`` -- tail sampling still keeps every error/slow trace.
TRACED_WARM_SLOWDOWN_TARGET = 3.0

REPEATS = 5

_CONFIG = GeneratorConfig(
    p_par=0.6, n_par=3, max_depth=2, n_min=6, n_max=14, c_min=1, c_max=12
)


def _tasks(count: int, root_seed: int = 9000) -> list:
    tasks = []
    for seed in range(root_seed, root_seed + count):
        host = DagStructureGenerator(
            _CONFIG, np.random.default_rng(seed)
        ).generate_task()
        tasks.append(
            make_heterogeneous(
                host, OffloadConfig(), np.random.default_rng(seed + 1),
                target_fraction=0.25,
            )
        )
    return tasks


# ----------------------------------------------------------------------
# Disabled-hook microbenchmarks
# ----------------------------------------------------------------------
def _time_loop(fn, calls: int) -> float:
    """Best-of-``REPEATS`` ns/call of ``fn`` over ``calls`` iterations."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / calls * 1e9


def bench_disabled_hooks(smoke: bool) -> dict:
    calls = 100_000 if smoke else 500_000
    disabled_tracer = Tracer(enabled=False)
    enabled_tracer = Tracer(enabled=True)

    def span_disabled() -> None:
        with disabled_tracer.span("bench.noop"):
            pass

    def span_untraced() -> None:
        # Enabled tracer, but no ambient trace: the path every in-process
        # caller (CLI, drivers, experiments) takes through a traced build.
        with enabled_tracer.span("bench.noop"):
            pass

    def record_disarmed() -> None:
        record_kernel_batch("bench", lanes=8, steps=5, events=40, lane_steps=40)

    def noop() -> None:
        return None

    results = {
        "calls": calls,
        "noop_call_baseline_ns": _time_loop(noop, calls),
        "span_disabled_ns": _time_loop(span_disabled, calls),
        "span_untraced_ns": _time_loop(span_untraced, calls),
        "record_kernel_disarmed_ns": _time_loop(record_disarmed, calls),
    }
    assert (
        enabled_tracer.started == 0 and disabled_tracer.started == 0
    ), "no trace may be created by disabled/untraced hooks"
    assert NULL_SPAN is not None
    return results


# ----------------------------------------------------------------------
# End-to-end: traced vs untraced service on the same burst
# ----------------------------------------------------------------------
def _drive(service: EvaluationService, documents, workers: int = 16):
    """Closed-loop burst: every (task, cores) pair once, via a thread pool.

    Each request runs under its own trace exactly as the HTTP transport
    does (start, activate, finish into the ring).  With tracing disabled
    ``start_trace`` returns ``None`` and every step no-ops, so both modes
    execute the identical code path and the timing difference is the
    tracing cost alone.
    """
    tracer = service.tracer

    def one(request):
        task, cores = request
        trace = tracer.start_trace("bench.request")
        try:
            with tracer.activate(trace):
                return service.submit_simulation(task, _platform(cores))
        finally:
            tracer.finish_trace(trace)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(one, documents))


def _platform(cores: int):
    from repro.simulation.platform import Platform

    return Platform(host_cores=cores, accelerators=1)


def bench_service_overhead(smoke: bool) -> dict:
    task_count = 24 if smoke else 96
    repeats = 3
    tasks = _tasks(task_count)
    requests = [(task, cores) for task in tasks for cores in (2, 4)]

    runs = {}
    results_by_mode = {}
    for mode, kwargs in (
        ("untraced", {"tracing": False}),
        ("traced", {"tracing": True, "trace_sample": 1.0,
                    "trace_ring_bytes": 64 << 20}),
    ):
        service = EvaluationService(cache_bytes=64 << 20, **kwargs)
        try:
            cold_s = float("inf")
            warm_s = float("inf")
            first = None
            # Cold once (fills the cache), then timed warm passes; the
            # cold time is best-of-1 by construction and reported as such.
            t0 = time.perf_counter()
            first = _drive(service, requests)
            cold_s = time.perf_counter() - t0
            for _ in range(repeats):
                t0 = time.perf_counter()
                warm = _drive(service, requests)
                warm_s = min(warm_s, time.perf_counter() - t0)
            assert warm == first, "warm results must be bit-identical"
            ring = service.tracer.ring_stats()
        finally:
            service.close()
        runs[mode] = {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_requests_per_s": len(requests) / warm_s,
            "ring": ring,
        }
        results_by_mode[mode] = first

    assert results_by_mode["traced"] == results_by_mode["untraced"], (
        "tracing must not change results"
    )
    ring = runs["traced"]["ring"]
    return {
        "requests_per_pass": len(requests),
        "warm_passes": repeats,
        "untraced": runs["untraced"],
        "traced": runs["traced"],
        "cold_slowdown": runs["traced"]["cold_s"] / runs["untraced"]["cold_s"],
        "warm_slowdown": runs["traced"]["warm_s"] / runs["untraced"]["warm_s"],
        "ring_within_cap": ring["ring_bytes"] <= ring["ring_capacity_bytes"],
        "traced_results_identical": True,
    }


def main() -> int:
    smoke = "--smoke" in sys.argv

    hooks = bench_disabled_hooks(smoke)
    print(
        f"disabled hooks over {hooks['calls']} calls: "
        f"span(off) {hooks['span_disabled_ns']:.0f} ns, "
        f"span(untraced) {hooks['span_untraced_ns']:.0f} ns, "
        f"kernel-stats(disarmed) {hooks['record_kernel_disarmed_ns']:.0f} ns "
        f"(no-op baseline {hooks['noop_call_baseline_ns']:.0f} ns)"
    )

    service = bench_service_overhead(smoke)
    print(
        f"service burst ({service['requests_per_pass']} requests/pass): "
        f"untraced warm {service['untraced']['warm_s'] * 1000:.1f} ms | "
        f"traced warm {service['traced']['warm_s'] * 1000:.1f} ms "
        f"(x{service['warm_slowdown']:.2f}); cold x{service['cold_slowdown']:.2f}"
    )
    ring = service["traced"]["ring"]
    print(
        f"traced ring: {ring['ring_traces']} traces, "
        f"{ring['ring_bytes']}/{ring['ring_capacity_bytes']} bytes "
        f"(started {ring['started']}, kept {ring['kept']})"
    )

    worst_span_ns = max(hooks["span_disabled_ns"], hooks["span_untraced_ns"])
    acceptance = {
        "span_disabled_ns": hooks["span_disabled_ns"],
        "span_untraced_ns": hooks["span_untraced_ns"],
        "span_disabled_target_ns": SPAN_DISABLED_TARGET_NS,
        "span_disabled_met": worst_span_ns <= SPAN_DISABLED_TARGET_NS,
        "record_kernel_disarmed_ns": hooks["record_kernel_disarmed_ns"],
        "record_disarmed_target_ns": RECORD_DISARMED_TARGET_NS,
        "record_disarmed_met": (
            hooks["record_kernel_disarmed_ns"] <= RECORD_DISARMED_TARGET_NS
        ),
        "warm_slowdown": service["warm_slowdown"],
        "warm_slowdown_target": TRACED_WARM_SLOWDOWN_TARGET,
        "warm_slowdown_met": (
            service["warm_slowdown"] <= TRACED_WARM_SLOWDOWN_TARGET
        ),
        "traced_results_identical": service["traced_results_identical"],
        "ring_within_cap": service["ring_within_cap"],
    }
    document = {
        "benchmark": "tracing_overhead",
        "pr": 10,
        "description": (
            "Cost of request tracing (repro/service/tracing.py): ns/call "
            "of the disarmed hooks compiled into the hot paths, plus the "
            "end-to-end slowdown of a fully traced (sample=1.0) "
            "EvaluationService vs tracing disabled on the same burst, "
            "cold and cache-warm (see docs/performance.md section 12)."
        ),
        "smoke": smoke,
        "disabled_hooks": hooks,
        "service": service,
        "acceptance": acceptance,
    }
    if not smoke:
        OUTPUT.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"results written to {OUTPUT}")

    failed = sorted(
        name
        for name, passed in acceptance.items()
        if name.endswith(("_met", "_identical", "_cap")) and not passed
    )
    if failed:
        print(f"acceptance FAIL: {failed}")
        return 1
    print(
        f"acceptance PASS: hooks <= {SPAN_DISABLED_TARGET_NS:.0f}/"
        f"{RECORD_DISARMED_TARGET_NS:.0f} ns, warm slowdown "
        f"x{service['warm_slowdown']:.2f} <= x{TRACED_WARM_SLOWDOWN_TARGET:g}, "
        f"bit-identical, ring within cap"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
