#!/usr/bin/env python3
"""Serving quickstart: the long-lived evaluation service, in process.

Walks through the PR-5 serving layer (see ``docs/service.md``):

1. start an :class:`~repro.service.EvaluationService` in process;
2. fire a concurrent burst of figure-6-style simulation and analysis
   requests and watch the micro-batcher coalesce them (batches << requests);
3. fire the identical burst again and compare warm (cache-hit) latencies
   against the cold run;
4. expose the same service over HTTP on an ephemeral port and talk to it
   with :class:`~repro.service.ServiceClient` -- tasks cross the wire in
   the plain JSON form of ``repro.io.json_io``.

Run with:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.transformation import transform
from repro.generator.config import GeneratorConfig, OffloadConfig
from repro.generator.offload import make_heterogeneous
from repro.generator.random_dag import DagStructureGenerator
from repro.service import EvaluationService, ServiceClient, start_server


def make_workload(count: int = 24):
    """A small figure-6-shaped ensemble: random DAGs + transformed twins."""
    config = GeneratorConfig(
        p_par=0.8, n_par=6, max_depth=4, n_min=80, n_max=150, c_min=1, c_max=100
    )
    tasks = []
    for seed in range(count):
        rng = np.random.default_rng(seed)
        task = DagStructureGenerator(config, rng).generate_task(name=f"tau_{seed}")
        tasks.append(
            make_heterogeneous(task, OffloadConfig(), rng, target_fraction=0.2)
        )
    return tasks, [transform(task).task for task in tasks]


def fire_burst(service: EvaluationService, requests, pool) -> tuple[list, float]:
    def one(entry):
        kind, task, argument = entry
        if kind == "simulate":
            return service.submit_simulation(task, argument)
        return service.submit_analysis(task, argument)

    start = time.perf_counter()
    results = list(pool.map(one, requests))
    return results, time.perf_counter() - start


def main() -> None:
    originals, transformed = make_workload()
    tasks = originals + transformed
    requests = []
    for task in tasks:
        requests.append(("simulate", task, 2))
        requests.append(("simulate", task, 8))
    for task in originals:  # tau' cannot be re-transformed for analysis
        requests.append(("analyse", task, (2, 4, 8)))
    print(f"workload: {len(requests)} mixed requests over {len(tasks)} tasks\n")

    with EvaluationService() as service, ThreadPoolExecutor(32) as pool:
        cold, cold_s = fire_burst(service, requests, pool)
        warm, warm_s = fire_burst(service, requests, pool)
        assert warm == cold  # memoised answers are bit-identical

        stats = service.stats()
        print(f"cold burst: {cold_s * 1000:7.1f} ms "
              f"({len(requests) / cold_s:7.0f} requests/s)")
        print(f"warm burst: {warm_s * 1000:7.1f} ms "
              f"({len(requests) / warm_s:7.0f} requests/s, "
              f"x{cold_s / warm_s:.0f} from the cache)")
        print(
            f"coalescing: {stats['requests']['total']} requests -> "
            f"{stats['batching']['batches']} batches "
            f"(largest {stats['batching']['largest_batch']}), "
            f"{stats['engine']['evaluated_cells']} engine cells, "
            f"{stats['cache']['hits']} cache hits\n"
        )

        # The same service over HTTP, on an ephemeral port.
        server, thread = start_server(service, port=0)
        client = ServiceClient(port=server.port)
        print(f"HTTP facade on port {server.port}: {client.health()['status']}")
        task = tasks[0]
        start = time.perf_counter()
        makespan = client.simulate(task, cores=4)
        http_ms = 1000 * (time.perf_counter() - start)
        print(f"POST /simulate (m=4): makespan {makespan:g} "
              f"in {http_ms:.1f} ms")
        bounds = client.analyse(task, [2, 4])["bounds"]
        print(f"POST /analyse: R_het(m=2) = "
              f"{bounds[0]['methods']['het']['bound']:g}")
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    print("\nservice closed (queue drained).")


if __name__ == "__main__":
    main()
