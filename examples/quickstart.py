#!/usr/bin/env python3
"""Quickstart: analyse one heterogeneous DAG task end to end.

This walks through the paper's motivating example (Figures 1 and 2):

1. build a DAG task with one node offloaded to an accelerator;
2. compute the homogeneous bound (Eq. 1) and the *unsafe* naive bound;
3. show -- by searching the worst work-conserving schedule -- that the naive
   bound can be violated;
4. apply the DAG transformation (Algorithm 1) and compute the heterogeneous
   bound of Theorem 1;
5. simulate both tasks under the GOMP-style breadth-first scheduler and draw
   the schedules as ASCII Gantt charts.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DagTask,
    Platform,
    classify_scenario,
    heterogeneous_response_time,
    homogeneous_response_time,
    naive_unsafe_response_time,
    simulate,
    transform,
)
from repro.simulation import exhaustive_worst_case
from repro.visualization import describe_task, describe_transformation, render_gantt

CORES = 2


def build_task() -> DagTask:
    """The six-node task of Figure 1 (WCETs in parentheses in the paper)."""
    return DagTask.from_wcets(
        wcets={"v1": 1, "v2": 4, "v3": 6, "v4": 2, "v5": 1, "v_off": 4},
        edges=[
            ("v1", "v2"),
            ("v1", "v3"),
            ("v1", "v4"),
            ("v4", "v_off"),
            ("v2", "v5"),
            ("v3", "v5"),
            ("v_off", "v5"),
        ],
        offloaded_node="v_off",
        period=20,
        deadline=12,
        name="quickstart",
    )


def main() -> None:
    task = build_task()
    platform = Platform(host_cores=CORES, accelerators=1)

    print("=" * 72)
    print("1. The task")
    print("=" * 72)
    print(describe_task(task))

    print()
    print("=" * 72)
    print("2. Classical (homogeneous) analysis and the naive reduction")
    print("=" * 72)
    hom = homogeneous_response_time(task, CORES)
    naive = naive_unsafe_response_time(task, CORES)
    print(f"R_hom (Eq. 1)          = {hom.bound:g}")
    print(f"naive bound (unsafe)   = {naive.bound:g}   <- subtracts C_off/m blindly")

    worst = exhaustive_worst_case(task, platform)
    print(f"worst work-conserving schedule of tau = {worst.makespan:g}")
    print(
        "=> the naive bound is violated:"
        f" {worst.makespan:g} > {naive.bound:g}  (this is Figure 1(c) of the paper)"
    )

    print()
    print("=" * 72)
    print("3. DAG transformation (Algorithm 1)")
    print("=" * 72)
    transformed = transform(task)
    print(describe_transformation(transformed))

    print()
    print("=" * 72)
    print("4. Heterogeneous analysis (Theorem 1)")
    print("=" * 72)
    scenario = classify_scenario(transformed, CORES)
    het = heterogeneous_response_time(transformed, CORES)
    print(f"scenario                = {scenario.value}")
    print(f"R_het (Theorem 1)       = {het.bound:g}")
    print(f"deadline D              = {task.deadline:g}")
    print(
        "schedulable with R_het?  "
        + ("YES" if het.meets_deadline(task.deadline) else "no")
        + f"   (R_hom alone would say {'YES' if hom.meets_deadline(task.deadline) else 'no'})"
    )

    print()
    print("=" * 72)
    print("5. Simulated schedules (GOMP breadth-first scheduler)")
    print("=" * 72)
    original_trace = simulate(task, platform)
    transformed_trace = simulate(transformed.task, platform)
    print(render_gantt(original_trace))
    print()
    print(render_gantt(transformed_trace))
    print()
    print(
        f"average-case effect of the transformation: {original_trace.makespan():g} -> "
        f"{transformed_trace.makespan():g} time units"
    )


if __name__ == "__main__":
    main()
