#!/usr/bin/env python3
"""Domain example: sizing the offloaded region + the future-work extensions.

Part 1 -- *How much work should I offload?*
    For a fixed application, sweep the share of work moved into the
    accelerator kernel and look at three curves: the homogeneous bound, the
    heterogeneous bound and the simulated average behaviour.  This is the
    per-application version of Figures 6 and 9 and directly answers a common
    co-design question ("is the DMA + kernel-launch overhead worth it?").

Part 2 -- *More offloaded regions, more devices* (the paper's future work).
    The same application is then split into two offloaded kernels, first
    sharing one accelerator (``repro.extensions.multi_offload``), then spread
    over two devices (``repro.extensions.multi_device``), and the provided
    sound bounds are compared against simulation -- including the
    counterexample showing that the classical Eq. 1 is *unsafe* once two
    kernels share one device.

Run with:  python examples/offload_sizing_and_extensions.py
"""

from __future__ import annotations

from repro import (
    DagTask,
    heterogeneous_response_time,
    homogeneous_response_time,
    pin_offloaded_fraction,
    simulate_makespan,
    transform,
)
from repro.extensions import (
    MultiOffloadTask,
    balance_devices,
    multi_device_response_time,
    multi_offload_response_time,
    simulate_multi_device,
    simulate_multi_offload,
)

CORES = 4


def build_application() -> DagTask:
    """A DSP-style application: pre-processing, two filter banks, reduction."""
    wcets = {
        "ingest": 2,
        "window": 3,
        "fft": 12,  # candidate kernel #1
        "beamform": 14,  # candidate kernel #2 (offloaded by default)
        "doppler_0": 5,
        "doppler_1": 5,
        "doppler_2": 5,
        "cfar": 6,
        "cluster": 4,
        "report": 1,
    }
    edges = [
        ("ingest", "window"),
        ("window", "fft"),
        ("window", "doppler_0"),
        ("window", "doppler_1"),
        ("window", "doppler_2"),
        ("fft", "beamform"),
        ("beamform", "cfar"),
        ("doppler_0", "cfar"),
        ("doppler_1", "cfar"),
        ("doppler_2", "cfar"),
        ("cfar", "cluster"),
        ("cluster", "report"),
    ]
    return DagTask.from_wcets(
        wcets, edges, offloaded_node="beamform", name="radar-chain"
    )


def part1_offload_sizing(task: DagTask) -> None:
    print("Part 1: how much work is worth offloading? (m = 4 host cores)")
    print()
    print(
        f"{'offload %':>10}  {'C_off':>7}  {'R_hom':>8}  {'R_het':>8}  "
        f"{'sim tau':>8}  {'sim tau_prime':>13}"
    )
    for share in (0.05, 0.10, 0.20, 0.30, 0.40, 0.55):
        sized = pin_offloaded_fraction(task, share)
        transformed = transform(sized)
        hom = homogeneous_response_time(sized, CORES).bound
        het = heterogeneous_response_time(transformed, CORES).bound
        sim_original = simulate_makespan(sized, CORES)
        sim_transformed = simulate_makespan(transformed.task, CORES)
        print(
            f"{100 * share:>9.0f}%  {sized.offloaded_wcet:>7.1f}  {hom:>8.1f}  "
            f"{het:>8.1f}  {sim_original:>8.1f}  {sim_transformed:>13.1f}"
        )
    print()
    print("Reading: the heterogeneous bound (and the transformed schedule) improve")
    print("steadily with the offloaded share, while the homogeneous bound keeps")
    print("charging the offloaded work as host interference.")


def part2_extensions(task: DagTask) -> None:
    print()
    print("Part 2: two offloaded kernels (fft + beamform)")
    print("-" * 64)
    multi = MultiOffloadTask.from_task(task, extra_offloaded={"fft"})
    plain = DagTask(graph=multi.graph, offloaded_node=None, name=task.name)

    eq1 = homogeneous_response_time(plain, CORES).bound
    safe = multi_offload_response_time(multi, CORES).bound
    simulated = simulate_multi_offload(multi, CORES).makespan()
    print(f"offloaded volume                  = {multi.device_volume():g} "
          f"of {multi.volume:g} total")
    print(f"Equation 1 (all nodes on host)    = {eq1:.1f}")
    print(f"simulated makespan (1 device)     = {simulated:.1f}")
    print(f"sound multi-offload bound         = {safe:.1f}")
    if simulated > eq1:
        print("NOTE: the simulation exceeds Equation 1 -- with several kernels")
        print("      sharing one device the classical bound is NOT safe, which is")
        print("      why the extension derives its own bound.")

    print()
    print("Part 2b: the same two kernels on two devices (GPU + FPGA)")
    print("-" * 64)
    spread = balance_devices(
        task, offloaded_nodes=["fft", "beamform"], device_count=2
    )
    bound = multi_device_response_time(spread, CORES).bound
    simulated_two = simulate_multi_device(spread, CORES).makespan()
    print(f"device assignment                 = {spread.device_assignment}")
    print(f"simulated makespan (2 devices)    = {simulated_two:.1f}")
    print(f"sound multi-device bound          = {bound:.1f}")
    print()
    print(f"Using a second device shaves {simulated - simulated_two:.1f} time units off")
    print("the simulated makespan; tightening the analytical bound for that case is")
    print("exactly the future work the paper announces.")


def main() -> None:
    task = build_application()
    print("=" * 72)
    print(f"Application {task.name!r}: vol = {task.volume:g}, "
          f"len = {task.critical_path_length:g}, default kernel = 'beamform'")
    print("=" * 72)
    part1_offload_sizing(task)
    part2_extensions(task)


if __name__ == "__main__":
    main()
