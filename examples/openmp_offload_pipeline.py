#!/usr/bin/env python3
"""Domain example: an OpenMP-style vision pipeline with a GPU-offloaded kernel.

The paper motivates the analysis with embedded heterogeneous platforms
(NVIDIA Tegra-class SoCs, TI Keystone II, Xilinx UltraScale) programmed with
the OpenMP accelerator model: the host creates a task graph and offloads one
computational kernel (``#pragma omp target``) to the device.

This example models a realistic automotive perception pipeline released every
66 ms (15 FPS):

* sensor acquisition and demosaicing on the host,
* a tiled image-preprocessing stage (one task per tile, fully parallel),
* a convolutional feature extractor offloaded to the GPU (the ``target``
  region -- the heavyweight kernel),
* object tracking / lane estimation on the host in parallel with the GPU,
* sensor fusion and actuation at the end.

It then answers the questions an integrator actually asks:

1. Is the pipeline schedulable on 2/4/8/16 host cores, using the classical
   homogeneous analysis vs the heterogeneous analysis of the paper?
2. How many cores does each analysis require (dimensioning)?
3. What does the transformed task graph look like, and what does the GOMP
   breadth-first schedule look like on the chosen platform?
4. How sensitive is the verdict to the size of the offloaded kernel?

Run with:  python examples/openmp_offload_pipeline.py
"""

from __future__ import annotations

from repro import (
    DagTask,
    Platform,
    compare,
    heterogeneous_response_time,
    homogeneous_response_time,
    simulate,
    transform,
)
from repro.analysis import AnalysisKind, is_schedulable, minimum_cores
from repro.io import save_dot
from repro.visualization import render_gantt

#: Frame period / deadline in milliseconds (15 FPS camera, constrained D < T).
PERIOD_MS = 66.0
DEADLINE_MS = 50.0

#: Number of image tiles processed in parallel during pre-processing.
TILE_COUNT = 8


def build_pipeline(gpu_kernel_ms: float = 18.0) -> DagTask:
    """Build the perception-pipeline DAG.

    Parameters
    ----------
    gpu_kernel_ms:
        WCET of the offloaded convolutional kernel (the ``omp target``
        region).  The default corresponds to roughly 30 % of the frame
        workload, which is where the paper's analysis shines.
    """
    wcets: dict[str, float] = {
        "acquire": 2.0,
        "demosaic": 4.0,
        "prepare_offload": 1.0,
        "gpu_cnn": gpu_kernel_ms,  # offloaded node
        "tracking": 9.0,
        "lane_detection": 7.0,
        "postprocess_detections": 3.0,
        "fusion": 4.0,
        "actuation": 1.0,
    }
    edges = [
        ("acquire", "demosaic"),
        ("demosaic", "prepare_offload"),
        ("prepare_offload", "gpu_cnn"),
        ("gpu_cnn", "postprocess_detections"),
        ("postprocess_detections", "fusion"),
        ("tracking", "fusion"),
        ("lane_detection", "fusion"),
        ("fusion", "actuation"),
    ]
    # Tiled pre-processing: demosaic -> tile_i -> tracking / lane detection.
    for index in range(TILE_COUNT):
        tile = f"tile_{index}"
        wcets[tile] = 1.5
        edges.append(("demosaic", tile))
        edges.append((tile, "tracking"))
        edges.append((tile, "lane_detection"))
    return DagTask.from_wcets(
        wcets,
        edges,
        offloaded_node="gpu_cnn",
        period=PERIOD_MS,
        deadline=DEADLINE_MS,
        name="perception-pipeline",
    )


def schedulability_report(task: DagTask) -> None:
    print(f"pipeline volume        = {task.volume:g} ms")
    print(f"critical path length   = {task.critical_path_length:g} ms")
    print(f"offloaded kernel       = {task.offloaded_wcet:g} ms "
          f"({100 * task.offloaded_fraction():.1f}% of the workload)")
    print(f"deadline               = {task.deadline:g} ms (period {task.period:g} ms)")
    print()
    header = f"{'m':>3}  {'R_hom':>8}  {'R_het':>8}  {'hom ok?':>8}  {'het ok?':>8}  {'gain':>7}"
    print(header)
    print("-" * len(header))
    for cores in (2, 4, 8, 16):
        comparison = compare(task, cores)
        hom_ok = comparison.homogeneous.meets_deadline(task.deadline)
        het_ok = comparison.heterogeneous.meets_deadline(task.deadline)
        print(
            f"{cores:>3}  {comparison.homogeneous.bound:>8.2f}  "
            f"{comparison.heterogeneous.bound:>8.2f}  "
            f"{'yes' if hom_ok else 'NO':>8}  {'yes' if het_ok else 'NO':>8}  "
            f"{comparison.gain_percent():>6.1f}%"
        )
    print()
    hom_cores = minimum_cores(task, AnalysisKind.HOMOGENEOUS)
    het_cores = minimum_cores(task, AnalysisKind.HETEROGENEOUS)
    print(f"cores needed (homogeneous analysis)   : {hom_cores}")
    print(f"cores needed (heterogeneous analysis) : {het_cores}")


def main() -> None:
    task = build_pipeline()

    print("=" * 72)
    print("Schedulability of the perception pipeline")
    print("=" * 72)
    schedulability_report(task)

    # Pick the smallest platform the heterogeneous analysis certifies.
    cores = minimum_cores(task, AnalysisKind.HETEROGENEOUS) or 4
    platform = Platform(host_cores=cores, accelerators=1)
    transformed = transform(task)

    print()
    print("=" * 72)
    print(f"Transformed task and schedule on m = {cores} cores + 1 GPU")
    print("=" * 72)
    result = heterogeneous_response_time(transformed, cores)
    print(f"Theorem 1 scenario     = {result.scenario.value}")
    print(f"R_het                  = {result.bound:.2f} ms  (deadline {task.deadline:g} ms)")
    verdict = is_schedulable(task, cores)
    print(f"verdict                = {'SCHEDULABLE' if verdict.schedulable else 'NOT schedulable'}"
          f"  (slack {verdict.slack():.2f} ms)")
    print()
    trace = simulate(transformed.task, platform)
    trace.validate()
    print(render_gantt(trace, width=68))

    dot_path = save_dot(transformed, "perception_pipeline_transformed.dot")
    print(f"\ntransformed task graph written to {dot_path} (render with Graphviz)")

    print()
    print("=" * 72)
    print("Sensitivity to the GPU kernel size")
    print("=" * 72)
    print(f"{'kernel [ms]':>12}  {'offload %':>10}  {'R_hom(m=4)':>11}  {'R_het(m=4)':>11}")
    for kernel in (4.0, 8.0, 12.0, 18.0, 24.0, 32.0):
        variant = build_pipeline(kernel)
        hom = homogeneous_response_time(variant, 4).bound
        het = heterogeneous_response_time(transform(variant), 4).bound
        print(
            f"{kernel:>12.1f}  {100 * variant.offloaded_fraction():>9.1f}%  "
            f"{hom:>11.2f}  {het:>11.2f}"
        )
    print("\nThe heterogeneous bound pulls further ahead as the offloaded share grows,")
    print("mirroring Figure 9 of the paper.")


if __name__ == "__main__":
    main()
