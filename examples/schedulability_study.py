#!/usr/bin/env python3
"""Domain example: system-level schedulability study on random workloads.

A typical use of a response-time analysis inside a design-space exploration
loop: generate many random heterogeneous applications (with the paper's own
workload generator), and measure the *acceptance ratio* -- the fraction of
applications certified schedulable -- under

* the classical homogeneous analysis (Eq. 1), and
* the heterogeneous analysis of the paper (Theorem 1),

for host sizes m = 2, 4, 8, 16 and several offloaded-workload shares.  It
also demonstrates the federated task-set partitioning built on top of the
per-task bounds.

The acceptance study uses the batched analysis layer
(:func:`repro.analysis.analyse_many`): every application is transformed once
and analysed for all host sizes in one pass, optionally across worker
processes.

Run with:  python examples/schedulability_study.py [--jobs N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import DagTask, GeneratorConfig, OffloadConfig
from repro.analysis import (
    AnalysisKind,
    analyse_many,
    federated_assignment,
    is_schedulable,
)
from repro.core import TaskSet
from repro.generator import DagStructureGenerator, make_heterogeneous

#: Number of random applications per configuration (increase for smoother
#: curves; 40 keeps the example under ~10 s).
APPLICATIONS = 40

#: Structural distribution: mid-size OpenMP-like task graphs.
STRUCTURE = GeneratorConfig(
    p_par=0.5, n_par=6, max_depth=4, n_min=30, n_max=90, c_min=1, c_max=100
)


def generate_applications(
    offload_share: float, seed: int
) -> list[DagTask]:
    """Generate random heterogeneous applications with a deadline.

    The relative deadline is drawn so that the task is feasible on an
    infinitely parallel machine (D > len(G)) but tight enough for the number
    of cores to matter: D = len(G) + u * (vol(G) - len(G)) with u ~ U(0.15, 0.5).
    """
    rng = np.random.default_rng(seed)
    generator = DagStructureGenerator(STRUCTURE, rng)
    applications = []
    for index in range(APPLICATIONS):
        task = generator.generate_task(name=f"app_{index}")
        task = make_heterogeneous(
            task, OffloadConfig(), rng, target_fraction=offload_share
        )
        slack_factor = float(rng.uniform(0.15, 0.5))
        deadline = task.critical_path_length + slack_factor * (
            task.volume - task.critical_path_length
        )
        task.deadline = deadline
        task.period = deadline * float(rng.uniform(1.0, 1.4))
        # Constrained-deadline model: D <= T by construction above.
        applications.append(task)
    return applications


def acceptance_study(jobs: int | None = None) -> None:
    print("Acceptance ratio (fraction of applications certified schedulable)")
    print()
    header = (
        f"{'offload %':>10} | "
        + " | ".join(f"m={m:<2} hom   het" for m in (2, 4, 8, 16))
    )
    print(header)
    print("-" * len(header))
    for share in (0.05, 0.15, 0.30, 0.45):
        applications = generate_applications(share, seed=int(share * 1000))
        # One batched pass: each application is transformed once and analysed
        # for every host size (optionally across --jobs worker processes).
        analyses = analyse_many(
            applications, cores=(2, 4, 8, 16), include_naive=False, jobs=jobs
        )
        cells = []
        for cores in (2, 4, 8, 16):
            hom = sum(
                analysis.results[cores]["hom"].meets_deadline(analysis.task.deadline)
                for analysis in analyses
            ) / len(analyses)
            het = sum(
                analysis.results[cores]["het"].meets_deadline(analysis.task.deadline)
                for analysis in analyses
            ) / len(analyses)
            cells.append(f"{hom:6.2f} {het:6.2f}")
        print(f"{100 * share:>9.0f}% | " + " | ".join(cells))
    print()
    print("The heterogeneous analysis certifies at least as many applications as")
    print("the homogeneous one, and the margin widens with the offloaded share and")
    print("shrinks with the host size -- the system-level view of Figure 9.")


def federated_demo() -> None:
    print()
    print("Federated scheduling of a mixed task set on a 16-core host + GPU")
    print("-" * 64)
    applications = generate_applications(0.3, seed=77)
    system = TaskSet(applications[:6], name="ecu")
    for analysis in (AnalysisKind.HOMOGENEOUS, AnalysisKind.HETEROGENEOUS):
        assignment = federated_assignment(system, cores=16, analysis=analysis)
        label = "homogeneous " if analysis is AnalysisKind.HOMOGENEOUS else "heterogeneous"
        if assignment.schedulable:
            detail = ", ".join(
                f"{name}:{cores}c" for name, cores in sorted(assignment.heavy.items())
            )
            print(
                f"{label}: SCHEDULABLE  "
                f"(dedicated cores: {assignment.cores_used}; {detail or 'no heavy tasks'};"
                f" {len(assignment.light)} light tasks share the rest)"
            )
        else:
            print(f"{label}: NOT schedulable -- {assignment.reason}")

    # Per-task detail under the heterogeneous analysis on 16 cores.
    print()
    print(f"{'task':<8} {'density':>8} {'R_het':>10} {'deadline':>10} {'verdict':>10}")
    for task in system:
        result = is_schedulable(task, 16)
        print(
            f"{task.name:<8} {task.density():>8.2f} "
            f"{result.response_time.bound:>10.1f} {task.deadline:>10.1f} "
            f"{'ok' if result.schedulable else 'MISS':>10}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the batched analysis (default: serial)",
    )
    args = parser.parse_args()
    print("=" * 72)
    print("System-level schedulability study")
    print("=" * 72)
    acceptance_study(jobs=args.jobs)
    federated_demo()


if __name__ == "__main__":
    main()
