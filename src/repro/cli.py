"""Command-line interface of the reproduction.

Installed as ``repro-rta`` (see ``pyproject.toml``) and also runnable as
``python -m repro``.  Sub-commands:

``analyse``
    Compute the homogeneous, heterogeneous and naive response-time bounds of
    a task stored as JSON or DOT, and report the Theorem 1 scenario.
``transform``
    Apply Algorithm 1 and print (or export) the transformed DAG.
``simulate``
    Simulate the task (optionally after transformation) under a chosen
    work-conserving policy.  The makespan is computed through the
    trace-free dense fast path (``simulate_makespan``); ``--gantt``
    additionally renders an ASCII Gantt chart and utilisation figures via
    the trace-producing reference engine.
``makespan``
    Compute the optimal makespan via the ILP or the branch-and-bound solver
    (routed through the batched, memoised oracle layer).
``generate``
    Generate random heterogeneous tasks from the paper's workload presets.
``experiment``
    Run one of the paper's experiments and print its table (optionally
    exporting CSV/JSON).
``serve``
    Run the long-lived HTTP evaluation service (micro-batching queue +
    fingerprint-keyed result cache over the batched engines).
``trace``
    Inspect a running service's request traces: list the tail-sampled
    ring, or pretty-print one trace's span tree with per-stage
    percentages (``--chrome`` exports Perfetto-loadable JSON instead).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from .analysis.heterogeneous import (
    classify_scenario,
    naive_unsafe_response_time,
)
from .analysis.heterogeneous import response_time as heterogeneous_response_time
from .analysis.homogeneous import response_time as homogeneous_response_time
from .core.exceptions import ReproError
from .core.task import DagTask
from .core.transformation import transform
from .experiments.config import paper_scale, quick_scale
from .experiments.runner import available_experiments, run_all
from .experiments.tables import render_result, write_csv
from .generator.config import OffloadConfig
from .generator.offload import make_heterogeneous
from .generator.presets import preset_by_name
from .generator.random_dag import DagStructureGenerator
from .ilp.batch import minimum_makespans_many
from .ilp.makespan import MakespanMethod
from .io.dot import load_dot, save_dot
from .io.json_io import load_task, save_task
from .service.client import ServiceClient
from .service.http import add_serve_arguments, serve_from_args
from .service.tracing import render_trace_tree
from .simulation.engine import simulate, simulate_makespan
from .simulation.platform import Platform
from .simulation.schedulers import policy_by_name
from .visualization.ascii_art import describe_task, describe_transformation, render_gantt

__all__ = ["main", "build_parser"]


def _load_task(path: str) -> DagTask:
    """Load a task from a ``.json`` or ``.dot`` file."""
    file_path = Path(path)
    if not file_path.exists():
        raise ReproError(f"task file {path!r} does not exist")
    if file_path.suffix.lower() in (".dot", ".gv"):
        return load_dot(file_path)
    return load_task(file_path)


def _save_task(task: DagTask, path: Path) -> None:
    if path.suffix.lower() in (".dot", ".gv"):
        save_dot(task, path)
    else:
        save_task(task, path)


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def _cmd_analyse(args: argparse.Namespace) -> int:
    task = _load_task(args.task)
    print(describe_task(task))
    print()
    hom = homogeneous_response_time(task, args.cores)
    print(f"R_hom (Eq. 1)        = {hom.bound:g}")
    if task.is_heterogeneous:
        transformed = transform(task)
        het = heterogeneous_response_time(transformed, args.cores)
        naive = naive_unsafe_response_time(task, args.cores)
        print(f"R_het (Theorem 1)    = {het.bound:g}   [{het.scenario.value}]")
        print(f"naive unsafe bound   = {naive.bound:g}   (Section 3.2; not safe)")
        print()
        print(describe_transformation(transformed))
    deadline = args.deadline if args.deadline is not None else task.deadline
    if deadline is not None:
        best = het.bound if task.is_heterogeneous else hom.bound
        verdict = "schedulable" if best <= deadline else "NOT schedulable"
        print(f"\ndeadline D = {deadline:g}: {verdict} (best bound {best:g})")
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    task = _load_task(args.task)
    if not task.is_heterogeneous:
        raise ReproError("task has no offloaded node; nothing to transform")
    transformed = transform(task)
    print(describe_transformation(transformed))
    if args.output:
        output = Path(args.output)
        if output.suffix.lower() in (".dot", ".gv"):
            from .io.dot import transformed_to_dot

            output.write_text(transformed_to_dot(transformed), encoding="utf-8")
        else:
            save_task(transformed.task, output)
        print(f"\ntransformed task written to {output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    task = _load_task(args.task)
    if args.transformed:
        if not task.is_heterogeneous:
            raise ReproError("task has no offloaded node; cannot simulate tau'")
        task = transform(task).task
    platform = Platform(host_cores=args.cores, accelerators=args.accelerators)
    policy = policy_by_name(args.policy, rng=args.seed)
    offload_enabled = not args.no_offload
    if args.gantt:
        # The Gantt chart and the utilisation figures need the execution
        # trace, which only the reference engine produces.
        trace = simulate(task, platform, policy, offload_enabled=offload_enabled)
        trace.validate()
        print(render_gantt(trace))
        print(f"\nmakespan               = {trace.makespan():g}")
        print(f"host utilisation       = {100 * trace.host_utilisation():.1f}%")
        print(
            f"accelerator utilisation= "
            f"{100 * trace.accelerator_utilisation():.1f}%"
        )
        print(
            "host idle while device busy = "
            f"{trace.host_idle_while_accelerator_busy():g} core*time"
        )
        return 0
    # Default fast path: the trace-free dense engine (simulate_makespan),
    # bit-identical to the reference engine for every policy.  The
    # vectorised lockstep kernel only amortises over large batches -- for
    # a single simulation the dense engine is the right engine.
    makespan = simulate_makespan(task, platform, policy, offload_enabled)
    print(f"makespan               = {makespan:g}")
    print("(use --gantt for the schedule chart and utilisation figures)")
    return 0


def _cmd_makespan(args: argparse.Namespace) -> int:
    task = _load_task(args.task)
    method = {
        "ilp": MakespanMethod.ILP,
        "bnb": MakespanMethod.BRANCH_AND_BOUND,
        "auto": MakespanMethod.AUTO,
    }[args.method]
    # Routed through the batched oracle layer: deduplication plus the
    # process-wide memo (repeated CLI calls in one process are free).
    result = minimum_makespans_many(
        [task],
        args.cores,
        accelerators=args.accelerators,
        method=method,
        time_limit=args.time_limit,
    )[0]
    print(f"minimum makespan = {result.makespan:g} "
          f"({result.method.value}, optimal={result.optimal})")
    if args.verbose:
        for node in task.graph.topological_order():
            print(f"  {node}: start {result.start_times[node]:g}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    config = preset_by_name(args.preset)
    rng = np.random.default_rng(args.seed)
    generator = DagStructureGenerator(config, rng)
    output_dir = Path(args.output)
    output_dir.mkdir(parents=True, exist_ok=True)
    for index in range(args.count):
        task = generator.generate_task(name=f"{args.prefix}_{index}")
        task = make_heterogeneous(
            task,
            OffloadConfig(),
            rng,
            target_fraction=args.offload_fraction,
        )
        destination = output_dir / f"{args.prefix}_{index}.json"
        _save_task(task, destination)
        print(
            f"{destination}  n={task.node_count}  vol={task.volume:g}  "
            f"len={task.critical_path_length:g}  "
            f"C_off={task.offloaded_wcet:g}"
        )
    return 0


def _suffixed(path: str, name: str, multiple: bool) -> Path:
    """Insert ``-<name>`` before the extension when exporting several results."""
    base = Path(path)
    if not multiple:
        return base
    return base.with_name(f"{base.stem}-{name}{base.suffix}")


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = paper_scale() if args.scale == "paper" else quick_scale()
    if args.dags is not None:
        scale = scale.with_dags_per_point(args.dags)
    if args.seed is not None:
        scale = scale.with_seed(args.seed)
    names = available_experiments() if args.name == "all" else [args.name]
    results = run_all(scale, names=names, jobs=args.jobs)
    for result in results.values():
        print(render_result(result))
        for series in result.series:
            if series.metadata:
                print(f"  [{series.label}] {series.metadata}")
        if args.csv:
            path = write_csv(result, _suffixed(args.csv, result.name, len(results) > 1))
            print(f"\nCSV written to {path}")
        if args.json:
            path = _suffixed(args.json, result.name, len(results) > 1)
            result.to_json(path)
            print(f"JSON written to {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core.exceptions import ServiceError

    client = ServiceClient(
        host=args.host, port=args.port, timeout=args.timeout, retries=0
    )
    try:
        if args.trace_id is None:
            document = client.traces(
                limit=args.limit, slow=args.slow, errors=args.errors
            )
            ring = document["ring"]
            state = "on" if ring["enabled"] else "OFF"
            print(
                f"trace ring (tracing {state}): {ring['ring_traces']} traces, "
                f"{ring['ring_bytes']}/{ring['ring_capacity_bytes']} bytes; "
                f"{ring['started']} started, {ring['kept']} kept, "
                f"{ring['sampled_out']} sampled out, {ring['evicted']} evicted"
            )
            if not document["traces"]:
                print("no traces kept (yet)")
                return 0
            for entry in document["traces"]:
                flags = ""
                if entry["error"]:
                    flags += "  [ERROR]"
                if entry["degraded"]:
                    flags += "  [DEGRADED]"
                print(
                    f"  {entry['trace_id']}  {entry['name']:<14} "
                    f"{entry['duration_ms']:9.2f} ms  "
                    f"{entry['spans']} spans{flags}"
                )
            return 0
        if args.chrome:
            payload = client.trace(args.trace_id, format="chrome")
            output = Path(args.chrome)
            output.write_text(json.dumps(payload), encoding="utf-8")
            print(
                f"Chrome trace written to {output} "
                f"(load it at https://ui.perfetto.dev)"
            )
            return 0
        print(render_trace_tree(client.trace(args.trace_id)))
        return 0
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-rta",
        description=(
            "Response-time analysis of DAG tasks supporting heterogeneous "
            "computing (DAC 2018 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyse = subparsers.add_parser("analyse", help="compute response-time bounds")
    analyse.add_argument("task", help="task file (.json or .dot)")
    analyse.add_argument("-m", "--cores", type=int, default=4, help="host cores")
    analyse.add_argument("--deadline", type=float, default=None)
    analyse.set_defaults(func=_cmd_analyse)

    transform_cmd = subparsers.add_parser("transform", help="apply Algorithm 1")
    transform_cmd.add_argument("task", help="task file (.json or .dot)")
    transform_cmd.add_argument("-o", "--output", help="write tau' (.json or .dot)")
    transform_cmd.set_defaults(func=_cmd_transform)

    simulate_cmd = subparsers.add_parser("simulate", help="simulate a schedule")
    simulate_cmd.add_argument("task", help="task file (.json or .dot)")
    simulate_cmd.add_argument("-m", "--cores", type=int, default=4)
    simulate_cmd.add_argument("--accelerators", type=int, default=1)
    simulate_cmd.add_argument(
        "--policy",
        default="breadth-first",
        help="breadth-first | depth-first | critical-path-first | "
        "shortest-first | longest-first | random",
    )
    simulate_cmd.add_argument("--seed", type=int, default=None)
    simulate_cmd.add_argument(
        "--transformed", action="store_true", help="simulate tau' instead of tau"
    )
    simulate_cmd.add_argument(
        "--no-offload", action="store_true", help="run every node on the host"
    )
    simulate_cmd.add_argument(
        "--gantt",
        action="store_true",
        help="render the ASCII Gantt chart and utilisation figures "
        "(runs the trace-producing reference engine)",
    )
    simulate_cmd.set_defaults(func=_cmd_simulate)

    makespan_cmd = subparsers.add_parser("makespan", help="optimal makespan (ILP)")
    makespan_cmd.add_argument("task", help="task file (.json or .dot)")
    makespan_cmd.add_argument("-m", "--cores", type=int, default=4)
    makespan_cmd.add_argument("--accelerators", type=int, default=1)
    makespan_cmd.add_argument(
        "--method", choices=("auto", "ilp", "bnb"), default="auto"
    )
    makespan_cmd.add_argument("--time-limit", type=float, default=None)
    makespan_cmd.add_argument("-v", "--verbose", action="store_true")
    makespan_cmd.set_defaults(func=_cmd_makespan)

    generate_cmd = subparsers.add_parser("generate", help="generate random tasks")
    generate_cmd.add_argument("-o", "--output", default="generated-tasks")
    generate_cmd.add_argument("--preset", default="large-fig6")
    generate_cmd.add_argument("--count", type=int, default=5)
    generate_cmd.add_argument("--seed", type=int, default=2018)
    generate_cmd.add_argument("--prefix", default="tau")
    generate_cmd.add_argument(
        "--offload-fraction",
        type=float,
        default=None,
        help="pin C_off to this fraction of the volume",
    )
    generate_cmd.set_defaults(func=_cmd_generate)

    experiment_cmd = subparsers.add_parser(
        "experiment", help="run a paper experiment"
    )
    experiment_cmd.add_argument("name", choices=available_experiments() + ["all"])
    experiment_cmd.add_argument("--scale", choices=("quick", "paper"), default="quick")
    experiment_cmd.add_argument("--dags", type=int, default=None)
    experiment_cmd.add_argument("--seed", type=int, default=None)
    experiment_cmd.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes for the sweep evaluation (default: serial; "
        "-1 = all cores); results are bit-identical to the serial run",
    )
    experiment_cmd.add_argument("--csv", default=None)
    experiment_cmd.add_argument("--json", default=None)
    experiment_cmd.set_defaults(func=_cmd_experiment)

    serve_cmd = subparsers.add_parser(
        "serve", help="run the long-lived HTTP evaluation service"
    )
    add_serve_arguments(serve_cmd)
    serve_cmd.set_defaults(func=serve_from_args)

    trace_cmd = subparsers.add_parser(
        "trace", help="inspect a running service's request traces"
    )
    trace_cmd.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="trace to pretty-print (omit to list the ring)",
    )
    trace_cmd.add_argument("--host", default="127.0.0.1", help="service host")
    trace_cmd.add_argument("--port", type=int, default=8181, help="service port")
    trace_cmd.add_argument(
        "--timeout", type=float, default=10.0, help="socket timeout in seconds"
    )
    trace_cmd.add_argument(
        "--limit", type=int, default=20, help="max traces to list"
    )
    trace_cmd.add_argument(
        "--slow",
        action="store_true",
        help="list only traces at/above the slow-percentile threshold",
    )
    trace_cmd.add_argument(
        "--errors",
        action="store_true",
        help="list only error/degraded traces",
    )
    trace_cmd.add_argument(
        "--chrome",
        default=None,
        metavar="FILE",
        help="write the trace as Chrome trace-event JSON (for Perfetto) "
        "instead of printing the tree",
    )
    trace_cmd.set_defaults(func=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, KeyError) as error:
        # KeyError covers lookups of unknown presets / policies by name.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
