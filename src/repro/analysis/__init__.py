"""Response-time analyses (the paper's Sections 3.1 and 4).

* :mod:`repro.analysis.homogeneous` -- Equation 1 (the Graham-style bound of
  reference [19], the homogeneous baseline).
* :mod:`repro.analysis.heterogeneous` -- Theorem 1 (Equations 2-4) applied to
  the transformed task, plus the naive unsafe bound of Section 3.2.
* :mod:`repro.analysis.comparison` -- percentage-change helpers used by the
  evaluation figures.
* :mod:`repro.analysis.batch` -- batched (and optionally process-parallel)
  analysis of task ensembles, transforming each task exactly once.
* :mod:`repro.analysis.schedulability` -- deadline tests, core dimensioning
  and federated task-set partitioning built on top of the bounds.
"""

from .batch import TaskAnalysis, analyse_many
from .comparison import AnalysisComparison, compare, percentage_change, percentage_increment
from .heterogeneous import (
    analyse,
    classify_scenario,
    heterogeneous_response_time,
    naive_unsafe_response_time,
)
from .homogeneous import (
    graph_response_time,
    homogeneous_response_time,
    makespan_lower_bound,
)
from .results import ResponseTimeResult, Scenario
from .schedulability import (
    AnalysisKind,
    FederatedAssignment,
    SchedulabilityResult,
    acceptance_ratio,
    bound_for,
    federated_assignment,
    is_schedulable,
    minimum_cores,
)

__all__ = [
    "ResponseTimeResult",
    "Scenario",
    "homogeneous_response_time",
    "graph_response_time",
    "makespan_lower_bound",
    "heterogeneous_response_time",
    "naive_unsafe_response_time",
    "classify_scenario",
    "analyse",
    "analyse_many",
    "TaskAnalysis",
    "compare",
    "AnalysisComparison",
    "percentage_change",
    "percentage_increment",
    "AnalysisKind",
    "SchedulabilityResult",
    "FederatedAssignment",
    "is_schedulable",
    "minimum_cores",
    "federated_assignment",
    "acceptance_ratio",
    "bound_for",
]
