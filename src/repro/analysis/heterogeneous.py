"""Heterogeneous response-time analysis (Theorem 1 of the paper).

The analysis operates on the *transformed* task ``tau'`` produced by
Algorithm 1 (:func:`repro.core.transformation.transform`), in which the
synchronisation node guarantees that the parallel sub-DAG ``G_par`` and the
offloaded node ``v_off`` start executing at the same instant.  Three
execution scenarios are distinguished:

* **Scenario 1** -- ``v_off`` does not belong to the critical path of ``G'``.
  Then some path of ``G_par`` is longer than ``C_off``, the offloaded node
  can never delay the critical path, and its WCET can safely be removed from
  the self-interference term (Equation 2):

  .. math:: R_{het} = len(G') + \\tfrac1m (vol(G') - len(G') - C_{off})

* **Scenario 2.1** -- ``v_off`` is on the critical path and
  ``C_off >= R_hom(G_par)``.  The whole of ``G_par`` completes under the
  cover of the offloaded execution, so its volume cannot interfere
  (Equation 3):

  .. math:: R_{het} = len(G') + \\tfrac1m (vol(G') - len(G') - vol(G_{par}))

* **Scenario 2.2** -- ``v_off`` is on the critical path and
  ``C_off <= R_hom(G_par)``.  The completion of ``G_par`` -- not ``v_off`` --
  determines the response time; ``C_off`` is replaced on the critical path by
  the response time of ``G_par`` (Equation 4):

  .. math::

      R_{het} = len(G') - C_{off} + len(G_{par})
                + \\tfrac1m (vol(G') - len(G') - len(G_{par}))

Scenarios 2.1 and 2.2 coincide when ``C_off = R_hom(G_par)``, which is also
where the benefit over the homogeneous bound is maximal (Section 5.4 of the
paper).

The module additionally implements the *naive* (unsafe) bound discussed in
Section 3.2 -- subtracting ``C_off / m`` from Equation 1 without any
transformation -- because the experiments and tests use it to demonstrate why
the transformation is necessary.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.exceptions import AnalysisError
from ..core.task import DagTask
from ..core.transformation import TransformedTask, transform
from .homogeneous import graph_response_time
from .homogeneous import response_time as homogeneous_response_time
from .results import ResponseTimeResult, Scenario

__all__ = [
    "classify_scenario",
    "response_time",
    "heterogeneous_response_time",
    "naive_unsafe_response_time",
    "analyse",
]

#: Absolute tolerance used when comparing floating-point path lengths.  All
#: paper experiments use integer WCETs, for which comparisons are exact.
_TOLERANCE = 1e-9


def _as_transformed(
    task_or_transformed: Union[DagTask, TransformedTask]
) -> TransformedTask:
    """Accept either a raw heterogeneous task or an already transformed one."""
    if isinstance(task_or_transformed, TransformedTask):
        return task_or_transformed
    if not isinstance(task_or_transformed, DagTask):
        raise AnalysisError(
            "expected a DagTask or TransformedTask, got "
            f"{type(task_or_transformed).__name__}"
        )
    if task_or_transformed.offloaded_node is None:
        raise AnalysisError(
            f"task {task_or_transformed.name!r} has no offloaded node; "
            "use the homogeneous analysis instead"
        )
    return transform(task_or_transformed)


def _gpar_response(transformed: TransformedTask, cores: int) -> float:
    """``R_hom(G_par)``, memoised per core count on the transformed task.

    Both :func:`classify_scenario` and :func:`response_time` need this value;
    the memo makes evaluating one task across many host sizes (as every
    figure of the paper does) compute each ``R_hom(G_par)`` exactly once.
    """
    key = ("R_hom_Gpar", cores)
    cached = transformed.metrics_cache.get(key)
    if cached is None:
        cached = graph_response_time(transformed.gpar, cores)
        transformed.metrics_cache[key] = cached
    return cached


def classify_scenario(
    task_or_transformed: Union[DagTask, TransformedTask], cores: int
) -> Scenario:
    """Determine which scenario of Theorem 1 applies.

    Parameters
    ----------
    task_or_transformed:
        A heterogeneous task (it will be transformed on the fly) or the
        result of a previous call to
        :func:`repro.core.transformation.transform`.
    cores:
        Number of host cores ``m``; it enters the classification through
        ``R_hom(G_par)``.
    """
    transformed = _as_transformed(task_or_transformed)
    key = ("scenario", cores)
    cached = transformed.metrics_cache.get(key)
    if cached is not None:
        return cached
    if not transformed.offloaded_on_critical_path():
        scenario = Scenario.SCENARIO_1
    elif transformed.offloaded_wcet >= _gpar_response(transformed, cores) - _TOLERANCE:
        scenario = Scenario.SCENARIO_2_1
    else:
        scenario = Scenario.SCENARIO_2_2
    transformed.metrics_cache[key] = scenario
    return scenario


def response_time(
    task_or_transformed: Union[DagTask, TransformedTask],
    cores: int,
    scenario: Optional[Scenario] = None,
) -> ResponseTimeResult:
    """Compute ``R_het(tau')`` according to Theorem 1.

    Parameters
    ----------
    task_or_transformed:
        A heterogeneous task or its transformation.  Passing the transformed
        task avoids re-running Algorithm 1 when many values of ``m`` are
        evaluated for the same task.
    cores:
        Number of host cores ``m``.
    scenario:
        Force a specific scenario (used by tests to verify the proof
        obligations); by default the scenario is derived from the task via
        :func:`classify_scenario`.

    Returns
    -------
    ResponseTimeResult
        The bound together with the applied scenario and every intermediate
        term (``len(G')``, ``vol(G')``, ``len(G_par)``, ``vol(G_par)``,
        ``C_off``, ``R_hom(G_par)`` and the interference term).
    """
    if not isinstance(cores, int) or cores < 1:
        raise AnalysisError(
            f"number of host cores must be a positive integer, got {cores!r}"
        )
    transformed = _as_transformed(task_or_transformed)
    if scenario is None:
        scenario = classify_scenario(transformed, cores)

    length = transformed.transformed_length()
    volume = transformed.transformed_volume()
    offloaded = transformed.offloaded_wcet
    gpar_length = transformed.gpar_length()
    gpar_volume = transformed.gpar_volume()
    gpar_response = _gpar_response(transformed, cores)

    if scenario is Scenario.SCENARIO_1:
        interference = (volume - length - offloaded) / cores
        bound = length + interference
    elif scenario is Scenario.SCENARIO_2_1:
        interference = (volume - length - gpar_volume) / cores
        bound = length + interference
    elif scenario is Scenario.SCENARIO_2_2:
        interference = (volume - length - gpar_length) / cores
        bound = length - offloaded + gpar_length + interference
    else:  # pragma: no cover - defensive
        raise AnalysisError(f"unsupported scenario {scenario!r}")

    return ResponseTimeResult(
        bound=bound,
        method="het",
        scenario=scenario,
        cores=cores,
        task_name=transformed.original.name,
        terms={
            "len_Gp": length,
            "vol_Gp": volume,
            "C_off": offloaded,
            "len_Gpar": gpar_length,
            "vol_Gpar": gpar_volume,
            "R_hom_Gpar": gpar_response,
            "interference": interference,
            "m": cores,
            "len_G": transformed.original.critical_path_length,
            "vol_G": transformed.original.volume,
        },
    )


#: Alias matching the paper's notation ``R_het``.
heterogeneous_response_time = response_time


def naive_unsafe_response_time(task: DagTask, cores: int) -> ResponseTimeResult:
    """The *unsafe* bound of Section 3.2: ``R_hom(tau) - C_off / m``.

    The paper shows with the example of Figure 1 that simply removing the
    offloaded WCET from the self-interference term of Equation 1 -- without
    the synchronisation introduced by Algorithm 1 -- can under-estimate the
    actual worst-case response time.  The function is provided for
    experimentation and for the regression test that reproduces Figure 1;
    it must never be used for schedulability verification.
    """
    if task.offloaded_node is None:
        raise AnalysisError(
            f"task {task.name!r} has no offloaded node; the naive bound is undefined"
        )
    base = homogeneous_response_time(task, cores)
    offloaded = task.offloaded_wcet
    bound = base.bound - offloaded / cores
    terms = dict(base.terms)
    terms.update({"C_off": offloaded, "interference": base.interference() - offloaded / cores})
    return ResponseTimeResult(
        bound=bound,
        method="naive",
        scenario=Scenario.NOT_APPLICABLE,
        cores=cores,
        task_name=task.name,
        terms=terms,
    )


def analyse(
    task: DagTask, cores: int
) -> dict[str, ResponseTimeResult]:
    """Run every applicable analysis on a task and return them by name.

    For a heterogeneous task the dictionary contains the homogeneous bound
    (``"hom"``), the heterogeneous bound (``"het"``) and the naive bound
    (``"naive"``); for a homogeneous task only ``"hom"`` is present.
    """
    results = {"hom": homogeneous_response_time(task, cores)}
    if task.offloaded_node is not None:
        transformed = transform(task)
        results["het"] = response_time(transformed, cores)
        results["naive"] = naive_unsafe_response_time(task, cores)
    return results
