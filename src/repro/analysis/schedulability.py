"""Schedulability tests built on top of the response-time analyses.

The paper itself only compares response-time *bounds*; a practitioner using
the analysis, however, ultimately wants yes/no schedulability answers and
dimensioning support ("how many host cores do I need?").  This module adds
that layer:

* :func:`is_schedulable` -- deadline test for a single task under either
  analysis;
* :func:`minimum_cores` -- smallest ``m`` for which a task meets its
  deadline;
* :func:`federated_assignment` -- a federated-scheduling style partitioning
  of a task set onto a heterogeneous platform, where each "heavy" task
  receives dedicated cores (computed via :func:`minimum_cores`) and "light"
  tasks are folded onto the remaining cores using a density test.  Federated
  scheduling of DAG tasks follows Baruah (RTSS 2016, reference [4] of the
  paper); the heterogeneous twist is that per-task core demands are computed
  with ``R_het`` instead of ``R_hom``;
* :func:`acceptance_ratio` -- fraction of schedulable tasks in a collection,
  the standard metric of schedulability studies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.exceptions import AnalysisError
from ..core.task import DagTask, TaskSet
from ..core.transformation import transform
from .heterogeneous import response_time as heterogeneous_response_time
from .homogeneous import response_time as homogeneous_response_time
from .results import ResponseTimeResult

__all__ = [
    "AnalysisKind",
    "SchedulabilityResult",
    "FederatedAssignment",
    "bound_for",
    "is_schedulable",
    "minimum_cores",
    "federated_assignment",
    "acceptance_ratio",
]


class AnalysisKind(enum.Enum):
    """Which response-time analysis to use for a schedulability question."""

    #: Equation 1 applied to the original task.
    HOMOGENEOUS = "hom"
    #: Theorem 1 applied to the transformed task (requires an offloaded node).
    HETEROGENEOUS = "het"
    #: Use Theorem 1 when the task has an offloaded node, Equation 1 otherwise.
    AUTO = "auto"


@dataclass
class SchedulabilityResult:
    """Outcome of a single-task schedulability test."""

    task_name: str
    cores: int
    schedulable: bool
    response_time: ResponseTimeResult
    deadline: Optional[float]

    def slack(self) -> Optional[float]:
        """``D - R``; ``None`` when the task has no deadline."""
        if self.deadline is None:
            return None
        return self.deadline - self.response_time.bound


@dataclass
class FederatedAssignment:
    """Result of the federated partitioning of a task set.

    Attributes
    ----------
    schedulable:
        ``True`` when every heavy task received enough dedicated cores and
        the light tasks fit on the remaining ones.
    heavy:
        Mapping ``task name -> dedicated core count`` for heavy tasks
        (density > 1).
    light:
        Names of the light tasks sharing the leftover cores.
    cores_used:
        Total number of dedicated cores granted to heavy tasks.
    cores_available:
        Platform size the assignment was computed for.
    reason:
        Human readable explanation when the task set is not schedulable.
    """

    schedulable: bool
    heavy: dict[str, int] = field(default_factory=dict)
    light: list[str] = field(default_factory=list)
    cores_used: int = 0
    cores_available: int = 0
    reason: str = ""


def bound_for(
    task: DagTask, cores: int, analysis: AnalysisKind = AnalysisKind.AUTO
) -> ResponseTimeResult:
    """Compute the response-time bound of ``task`` under the chosen analysis."""
    if analysis is AnalysisKind.AUTO:
        analysis = (
            AnalysisKind.HETEROGENEOUS
            if task.is_heterogeneous
            else AnalysisKind.HOMOGENEOUS
        )
    if analysis is AnalysisKind.HOMOGENEOUS:
        return homogeneous_response_time(task, cores)
    if analysis is AnalysisKind.HETEROGENEOUS:
        if not task.is_heterogeneous:
            raise AnalysisError(
                f"task {task.name!r} has no offloaded node; "
                "the heterogeneous analysis does not apply"
            )
        return heterogeneous_response_time(transform(task), cores)
    raise AnalysisError(f"unsupported analysis kind {analysis!r}")  # pragma: no cover


def is_schedulable(
    task: DagTask,
    cores: int,
    analysis: AnalysisKind = AnalysisKind.AUTO,
    deadline: Optional[float] = None,
) -> SchedulabilityResult:
    """Deadline test ``R(tau) <= D`` for a single task.

    Parameters
    ----------
    task:
        The task under analysis.
    cores:
        Number of host cores ``m``.
    analysis:
        Which bound to use; defaults to the heterogeneous bound when the task
        has an offloaded node.
    deadline:
        Override the task's own relative deadline (useful for sensitivity
        studies).  When both are ``None`` the task is trivially schedulable.
    """
    effective_deadline = deadline if deadline is not None else task.deadline
    result = bound_for(task, cores, analysis)
    return SchedulabilityResult(
        task_name=task.name,
        cores=cores,
        schedulable=result.meets_deadline(effective_deadline),
        response_time=result,
        deadline=effective_deadline,
    )


def minimum_cores(
    task: DagTask,
    analysis: AnalysisKind = AnalysisKind.AUTO,
    deadline: Optional[float] = None,
    max_cores: int = 1024,
) -> Optional[int]:
    """Smallest number of host cores for which the task meets its deadline.

    The response-time bounds are monotonically non-increasing in ``m``, so a
    simple exponential + binary search is used.  Returns ``None`` when even
    ``max_cores`` cores are insufficient (e.g. when the critical path alone
    exceeds the deadline -- no number of cores can help in that case).
    """
    effective_deadline = deadline if deadline is not None else task.deadline
    if effective_deadline is None:
        return 1
    if task.critical_path_length > effective_deadline:
        return None

    def feasible(cores: int) -> bool:
        return bound_for(task, cores, analysis).meets_deadline(effective_deadline)

    if feasible(1):
        return 1
    low, high = 1, 2
    while high <= max_cores and not feasible(high):
        low, high = high, high * 2
    if high > max_cores:
        if feasible(max_cores):
            high = max_cores
        else:
            return None
    # Invariant: not feasible(low), feasible(high).
    while high - low > 1:
        mid = (low + high) // 2
        if feasible(mid):
            high = mid
        else:
            low = mid
    return high


def federated_assignment(
    tasks: TaskSet | Iterable[DagTask],
    cores: int,
    analysis: AnalysisKind = AnalysisKind.AUTO,
) -> FederatedAssignment:
    """Federated-style partitioning of a task set onto ``cores`` host cores.

    Heavy tasks (density ``vol/D > 1``) receive dedicated cores, the number
    being the smallest ``m`` making their chosen response-time bound meet the
    deadline.  Light tasks share the remaining cores and are admitted with
    the classical density bound ``sum(density) <= cores_left``.

    This mirrors Baruah's federated scheduling of sporadic DAG tasks, with
    the per-task core demand computed by the heterogeneous analysis whenever
    an offloaded node is present -- which is precisely the system-level
    benefit the paper's tighter bound enables.
    """
    task_list = list(tasks)
    heavy: dict[str, int] = {}
    light: list[str] = []
    used = 0
    for task in task_list:
        if task.deadline is None:
            raise AnalysisError(
                f"task {task.name!r} has no deadline; federated analysis undefined"
            )
        if task.density() > 1.0:
            demand = minimum_cores(task, analysis)
            if demand is None:
                return FederatedAssignment(
                    schedulable=False,
                    heavy=heavy,
                    light=light,
                    cores_used=used,
                    cores_available=cores,
                    reason=(
                        f"heavy task {task.name!r} cannot meet its deadline "
                        "on any number of cores"
                    ),
                )
            heavy[task.name] = demand
            used += demand
        else:
            light.append(task.name)
    if used > cores:
        return FederatedAssignment(
            schedulable=False,
            heavy=heavy,
            light=light,
            cores_used=used,
            cores_available=cores,
            reason=f"heavy tasks require {used} cores but only {cores} are available",
        )
    remaining = cores - used
    light_density = sum(
        task.density() for task in task_list if task.name in set(light)
    )
    if light and light_density > remaining:
        return FederatedAssignment(
            schedulable=False,
            heavy=heavy,
            light=light,
            cores_used=used,
            cores_available=cores,
            reason=(
                f"light tasks have total density {light_density:.3f} "
                f"but only {remaining} cores remain"
            ),
        )
    return FederatedAssignment(
        schedulable=True,
        heavy=heavy,
        light=light,
        cores_used=used,
        cores_available=cores,
    )


def acceptance_ratio(
    tasks: Iterable[DagTask],
    cores: int,
    analysis: AnalysisKind = AnalysisKind.AUTO,
) -> float:
    """Fraction of tasks that individually meet their deadline on ``cores``.

    The standard metric of schedulability studies; returns a value in
    ``[0, 1]`` (``1.0`` for an empty collection).
    """
    task_list = list(tasks)
    if not task_list:
        return 1.0
    accepted = sum(
        1 for task in task_list if is_schedulable(task, cores, analysis).schedulable
    )
    return accepted / len(task_list)
