"""Comparison helpers between analyses (used throughout Section 5).

The paper's evaluation never reports absolute response times; it reports
*relative* quantities:

* the *percentage change* between two measurements of the same variable
  (Figures 6 and 9), and
* the *increment* of an upper bound over a reference makespan (Figure 7).

This module centralises those definitions so that every experiment and test
uses exactly the same arithmetic, together with a convenience
:class:`AnalysisComparison` that evaluates a single task under both the
homogeneous and the heterogeneous analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.task import DagTask
from ..core.transformation import TransformedTask, transform
from .heterogeneous import naive_unsafe_response_time
from .heterogeneous import response_time as heterogeneous_response_time
from .homogeneous import response_time as homogeneous_response_time
from .results import ResponseTimeResult, Scenario

__all__ = [
    "percentage_change",
    "percentage_increment",
    "AnalysisComparison",
    "compare",
]


def percentage_change(value: float, reference: float) -> float:
    """Relative change of ``value`` with respect to ``reference`` in percent.

    ``percentage_change(a, b) = 100 * (a - b) / b``.  This is the quantity
    plotted in Figures 6 and 9 of the paper ("percentage change of X w.r.t.
    Y").  A positive result means ``value`` is larger (slower / more
    pessimistic) than the reference.

    A zero reference with a zero value yields ``0``; a zero reference with a
    non-zero value raises :class:`ZeroDivisionError` because the percentage
    change is undefined in that case.
    """
    if reference == 0:
        if value == 0:
            return 0.0
        raise ZeroDivisionError("percentage change w.r.t. a zero reference is undefined")
    return 100.0 * (value - reference) / reference


def percentage_increment(bound: float, reference: float) -> float:
    """Increment of an upper ``bound`` over a ``reference`` in percent.

    Used by Figure 7: "increment of R w.r.t. the minimum makespan".  It is
    numerically identical to :func:`percentage_change`; the separate name
    documents the intent (the bound is expected to be >= the reference).
    """
    return percentage_change(bound, reference)


@dataclass
class AnalysisComparison:
    """Homogeneous vs heterogeneous analysis of a single task.

    Attributes
    ----------
    task:
        The analysed (original, untransformed) task.
    transformed:
        The transformation produced by Algorithm 1.
    cores:
        Number of host cores ``m``.
    homogeneous:
        ``R_hom(tau)`` (Equation 1) of the *original* task.
    heterogeneous:
        ``R_het(tau')`` (Theorem 1) of the *transformed* task.
    naive:
        The unsafe bound of Section 3.2, for reference only.
    """

    task: DagTask
    transformed: TransformedTask
    cores: int
    homogeneous: ResponseTimeResult
    heterogeneous: ResponseTimeResult
    naive: ResponseTimeResult

    @property
    def scenario(self) -> Scenario:
        """The Theorem 1 scenario that applied to the heterogeneous bound."""
        return self.heterogeneous.scenario

    def gain_percent(self) -> float:
        """Percentage change of ``R_hom`` with respect to ``R_het``.

        This is exactly the quantity of Figure 9; positive values mean the
        heterogeneous analysis is tighter.
        """
        return percentage_change(self.homogeneous.bound, self.heterogeneous.bound)

    def heterogeneous_is_tighter(self) -> bool:
        """``True`` when ``R_het(tau') < R_hom(tau)``."""
        return self.heterogeneous.bound < self.homogeneous.bound

    def offloaded_fraction(self) -> float:
        """``C_off / vol(G)`` of the analysed task."""
        return self.task.offloaded_fraction()

    def summary(self) -> dict[str, float]:
        """Return the comparison as a flat dictionary (for CSV/table export)."""
        return {
            "m": float(self.cores),
            "n": float(self.task.node_count),
            "vol": float(self.task.volume),
            "len": float(self.task.critical_path_length),
            "C_off": float(self.task.offloaded_wcet),
            "C_off_fraction": float(self.offloaded_fraction()),
            "R_hom": float(self.homogeneous.bound),
            "R_het": float(self.heterogeneous.bound),
            "R_naive": float(self.naive.bound),
            "gain_percent": float(self.gain_percent()),
            "scenario": {
                Scenario.SCENARIO_1: 1.0,
                Scenario.SCENARIO_2_1: 2.1,
                Scenario.SCENARIO_2_2: 2.2,
            }.get(self.scenario, 0.0),
        }


def compare(
    task: DagTask,
    cores: int,
    transformed: Optional[TransformedTask] = None,
) -> AnalysisComparison:
    """Evaluate a heterogeneous task under both analyses.

    Parameters
    ----------
    task:
        The heterogeneous task ``tau``.
    cores:
        Number of host cores ``m``.
    transformed:
        Optional pre-computed transformation (avoids re-running Algorithm 1
        when comparing the same task for several core counts).
    """
    if transformed is None:
        transformed = transform(task)
    return AnalysisComparison(
        task=task,
        transformed=transformed,
        cores=cores,
        homogeneous=homogeneous_response_time(task, cores),
        heterogeneous=heterogeneous_response_time(transformed, cores),
        naive=naive_unsafe_response_time(task, cores),
    )
