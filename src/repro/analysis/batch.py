"""Batched response-time analysis over task ensembles.

Every evaluation figure of the paper, the schedulability study and the
acceptance-ratio experiments all follow the same pattern: analyse *many*
tasks under *several* host sizes.  Doing that with the single-task helpers
re-runs Algorithm 1 per core count and re-derives every graph metric per
call.  :func:`analyse_many` is the batched entry point that

* transforms each heterogeneous task exactly once (sharing the
  :class:`~repro.core.transformation.TransformedTask` and its memoised
  metrics across all requested core counts),
* reuses the graph kernel caches for every bound of the same task, and
* optionally distributes the per-task work over a process pool
  (``jobs=N``) with bit-identical results to the serial path -- the
  analyses are deterministic, so chunking changes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..core.task import DagTask
from ..core.transformation import TransformedTask, transform
from ..parallel import parallel_map
from .heterogeneous import naive_unsafe_response_time
from .heterogeneous import response_time as heterogeneous_response_time
from .homogeneous import response_time as homogeneous_response_time
from .results import ResponseTimeResult

__all__ = ["TaskAnalysis", "analyse_many"]


@dataclass
class TaskAnalysis:
    """All response-time bounds computed for one task of a batch.

    Attributes
    ----------
    task:
        The analysed task.
    transformed:
        The result of Algorithm 1 (``None`` for homogeneous tasks); exposed
        so callers can inspect ``G_par`` or reuse the transformation.
    results:
        ``cores -> method -> result``, with the same method keys as
        :func:`repro.analysis.heterogeneous.analyse` (``"hom"`` always;
        ``"het"`` and ``"naive"`` for heterogeneous tasks).
    """

    task: DagTask
    transformed: Optional[TransformedTask] = None
    results: dict[int, dict[str, ResponseTimeResult]] = field(default_factory=dict)

    def bound(self, cores: int, method: str = "het") -> float:
        """Shortcut for ``results[cores][method].bound``."""
        return self.results[cores][method].bound

    def methods(self) -> list[str]:
        """Method names available for every analysed core count."""
        first = next(iter(self.results.values()), {})
        return list(first)


def _normalise_cores(cores: Union[int, Iterable[int]]) -> tuple[int, ...]:
    if isinstance(cores, int):
        return (cores,)
    values = tuple(cores)
    if not values:
        raise ValueError("at least one core count is required")
    return values


def _analyse_one(args: tuple[DagTask, tuple[int, ...], bool]) -> TaskAnalysis:
    """Worker: analyse one task for every requested core count."""
    task, core_counts, include_naive = args
    transformed = transform(task) if task.is_heterogeneous else None
    analysis = TaskAnalysis(task=task, transformed=transformed)
    for cores in core_counts:
        entry: dict[str, ResponseTimeResult] = {
            "hom": homogeneous_response_time(task, cores)
        }
        if transformed is not None:
            entry["het"] = heterogeneous_response_time(transformed, cores)
            if include_naive:
                entry["naive"] = naive_unsafe_response_time(task, cores)
        analysis.results[cores] = entry
    return analysis


def analyse_many(
    tasks: Iterable[DagTask],
    cores: Union[int, Iterable[int]] = 2,
    include_naive: bool = True,
    jobs: Optional[int] = None,
) -> list[TaskAnalysis]:
    """Analyse a batch of tasks, transforming each one exactly once.

    Parameters
    ----------
    tasks:
        The tasks to analyse (order is preserved in the result).
    cores:
        One host size or an iterable of host sizes ``m``.
    include_naive:
        Also compute the unsafe naive bound of Section 3.2 for heterogeneous
        tasks (matching :func:`repro.analysis.heterogeneous.analyse`).
    jobs:
        Process count for parallel evaluation; ``None``/``0``/``1`` run
        serially, negative uses every CPU.  Results are bit-identical to the
        serial path.

    Returns
    -------
    list[TaskAnalysis]
        One entry per task, aligned with the input order.
    """
    core_counts = _normalise_cores(cores)
    work = [(task, core_counts, include_naive) for task in tasks]
    return parallel_map(_analyse_one, work, jobs=jobs)
