"""Homogeneous response-time analysis (Equation 1 of the paper).

This is the classical Graham-style bound for a DAG task executed by a
work-conserving scheduler on ``m`` identical cores, as used by
Serrano et al. (CASES 2015, reference [19] of the paper):

.. math::

    R_{hom}(\\tau) = len(G) + \\frac{1}{m}\\bigl(vol(G) - len(G)\\bigr)

The second term upper-bounds the *self-interference*: the workload of the
task itself that can delay its own critical path.  The heterogeneous analysis
of Theorem 1 (:mod:`repro.analysis.heterogeneous`) refines exactly this term.

The module exposes the bound both for full tasks (:func:`response_time`) and
for bare sub-DAGs (:func:`graph_response_time`), because Theorem 1 needs
``R_hom(G_par)`` for the parallel sub-DAG, which is not a task by itself.
"""

from __future__ import annotations

from ..core.exceptions import AnalysisError
from ..core.graph import DirectedAcyclicGraph
from ..core.task import DagTask
from .results import ResponseTimeResult, Scenario

__all__ = [
    "graph_response_time",
    "response_time",
    "homogeneous_response_time",
    "makespan_lower_bound",
]


def _check_cores(cores: int) -> None:
    if not isinstance(cores, int) or cores < 1:
        raise AnalysisError(f"number of host cores must be a positive integer, got {cores!r}")


def graph_response_time(graph: DirectedAcyclicGraph, cores: int) -> float:
    """Equation 1 applied to a bare DAG structure.

    Parameters
    ----------
    graph:
        The DAG.  It may have several sources/sinks (e.g. ``G_par``); the
        bound only depends on ``len`` and ``vol``.
    cores:
        Number of identical host cores ``m``.

    Returns
    -------
    float
        ``len(G) + (vol(G) - len(G)) / m``.  The empty graph yields ``0``.
    """
    _check_cores(cores)
    if graph.node_count == 0:
        return 0.0
    length = graph.critical_path_length()
    volume = graph.volume()
    return length + (volume - length) / cores


def response_time(task: DagTask, cores: int) -> ResponseTimeResult:
    """Equation 1 applied to a task, returning a detailed result object.

    The bound treats every node -- including a possible offloaded node -- as
    if it executed on the host, which is exactly how the paper uses
    ``R_hom(tau)`` as the homogeneous baseline.
    """
    _check_cores(cores)
    graph = task.graph
    length = graph.critical_path_length()
    volume = graph.volume()
    interference = (volume - length) / cores
    return ResponseTimeResult(
        bound=length + interference,
        method="hom",
        scenario=Scenario.NOT_APPLICABLE,
        cores=cores,
        task_name=task.name,
        terms={
            "len": length,
            "vol": volume,
            "interference": interference,
            "m": cores,
        },
    )


#: Backwards-compatible alias matching the paper's notation ``R_hom``.
homogeneous_response_time = response_time


def makespan_lower_bound(task: DagTask, cores: int) -> float:
    """A simple lower bound on the makespan of any schedule of the task.

    Used to sanity-check simulators and exact solvers:

    * no schedule can finish before the critical path completes, and
    * the host workload cannot be processed faster than ``m`` cores allow
      while the offloaded workload needs the (single) accelerator.

    Returns ``max(len(G), host_volume / m, C_off)``.
    """
    _check_cores(cores)
    return max(
        task.critical_path_length,
        task.host_volume() / cores,
        task.offloaded_wcet,
    )
