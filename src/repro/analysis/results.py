"""Result containers shared by every response-time analysis.

All analyses in :mod:`repro.analysis` return a :class:`ResponseTimeResult`
rather than a bare number.  The result records the bound itself, which
analysis produced it, which execution scenario of Theorem 1 applied (when
relevant) and every intermediate quantity (critical-path length, volume,
interference term, ...).  Experiments and tests rely on those intermediate
terms, and carrying them around makes the analytical pipeline fully
introspectable -- a property the original MATLAB scripts of the paper lacked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Scenario", "ResponseTimeResult"]


class Scenario(enum.Enum):
    """Execution scenarios distinguished by Theorem 1 of the paper.

    The scenario determines which of Equations 2-4 provides the response-time
    upper bound of the transformed task ``tau'``.
    """

    #: ``v_off`` does not belong to the critical path of ``G'`` (Eq. 2).
    SCENARIO_1 = "scenario-1"
    #: ``v_off`` belongs to the critical path and ``C_off >= R_hom(G_par)``
    #: (Eq. 3).
    SCENARIO_2_1 = "scenario-2.1"
    #: ``v_off`` belongs to the critical path and ``C_off <= R_hom(G_par)``
    #: (Eq. 4).
    SCENARIO_2_2 = "scenario-2.2"
    #: Not applicable -- e.g. the homogeneous analysis of Eq. 1.
    NOT_APPLICABLE = "n/a"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class ResponseTimeResult:
    """Outcome of a response-time analysis.

    Attributes
    ----------
    bound:
        The response-time upper bound ``R``.
    method:
        Short identifier of the analysis that produced the bound, e.g.
        ``"hom"`` (Eq. 1), ``"het"`` (Theorem 1) or ``"naive"`` (the unsafe
        bound discussed in Section 3.2).
    scenario:
        The Theorem 1 scenario that applied, or
        :attr:`Scenario.NOT_APPLICABLE`.
    cores:
        The number of host cores ``m`` the bound was computed for.
    task_name:
        Name of the analysed task, for reporting purposes.
    terms:
        Every intermediate quantity used to compute the bound (``len``,
        ``vol``, ``C_off``, ``vol(G_par)``, interference, ...).
    """

    bound: float
    method: str
    scenario: Scenario = Scenario.NOT_APPLICABLE
    cores: int = 1
    task_name: str = "tau"
    terms: dict[str, float] = field(default_factory=dict)

    def meets_deadline(self, deadline: Optional[float]) -> bool:
        """Return ``True`` when the bound does not exceed ``deadline``.

        A ``None`` deadline is interpreted as "no deadline", i.e. always met.
        """
        if deadline is None:
            return True
        return self.bound <= deadline

    def interference(self) -> float:
        """The self-interference term of the bound (``0`` if not recorded)."""
        return self.terms.get("interference", 0.0)

    def describe(self) -> str:
        """Return a one-line human readable description of the result."""
        pieces = [
            f"{self.method} bound for {self.task_name!r} on m={self.cores}: "
            f"{self.bound:g}"
        ]
        if self.scenario is not Scenario.NOT_APPLICABLE:
            pieces.append(f"[{self.scenario.value}]")
        return " ".join(pieces)

    def __float__(self) -> float:
        return float(self.bound)

    def __lt__(self, other: object) -> bool:
        if isinstance(other, ResponseTimeResult):
            return self.bound < other.bound
        if isinstance(other, (int, float)):
            return self.bound < other
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, ResponseTimeResult):
            return self.bound <= other.bound
        if isinstance(other, (int, float)):
            return self.bound <= other
        return NotImplemented
