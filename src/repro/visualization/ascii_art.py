"""Plain-text visualisation of tasks, transformations and schedules.

The original paper communicates its ideas through small drawings (the DAGs of
Figures 1-4 and the Gantt charts of Figures 1(b)(c), 2(b) and 5).  This
module renders the same artefacts as ASCII so they can be inspected in a
terminal, embedded in test failure messages and printed by the example
scripts -- no plotting dependency required.
"""

from __future__ import annotations

from ..core.graph import NodeId
from ..core.task import DagTask
from ..core.transformation import TransformedTask
from ..simulation.platform import ACCELERATOR, HOST, INSTANT
from ..simulation.trace import ExecutionTrace

__all__ = ["describe_task", "describe_transformation", "render_gantt"]


def describe_task(task: DagTask) -> str:
    """Return a multi-line textual description of a DAG task.

    Nodes are listed in topological order with their WCETs, predecessors and
    an ``[offloaded]`` marker; the summary line reports ``vol``, ``len`` and
    the critical path.
    """
    graph = task.graph
    lines = [
        f"task {task.name!r}: {graph.node_count} nodes, {graph.edge_count} edges",
        f"  vol(G) = {graph.volume():g}   len(G) = {graph.critical_path_length():g}"
        f"   critical path = {' -> '.join(map(str, graph.critical_path()))}",
    ]
    if task.is_heterogeneous:
        lines.append(
            f"  offloaded node = {task.offloaded_node} "
            f"(C_off = {task.offloaded_wcet:g}, "
            f"{100 * task.offloaded_fraction():.1f}% of the volume)"
        )
    if task.period is not None:
        lines.append(f"  period T = {task.period:g}   deadline D = {task.deadline:g}")
    lines.append("  nodes (topological order):")
    for node in graph.topological_order():
        predecessors = ", ".join(map(str, sorted(graph.predecessors(node), key=repr)))
        marker = "  [offloaded]" if node == task.offloaded_node else ""
        lines.append(
            f"    {node}  C={graph.wcet(node):g}"
            f"  preds=[{predecessors}]" + marker
        )
    return "\n".join(lines)


def describe_transformation(transformed: TransformedTask) -> str:
    """Summarise the effect of Algorithm 1 on a task."""
    lines = [
        f"transformation of task {transformed.original.name!r}:",
        f"  sync node          = {transformed.sync_node}",
        f"  direct predecessors of v_off = "
        f"{sorted(map(str, transformed.direct_predecessors))}",
        f"  |Pred(v_off)| = {len(transformed.predecessors)}   "
        f"|Succ(v_off)| = {len(transformed.successors)}   "
        f"|G_par| = {len(transformed.gpar_nodes)}",
        f"  rerouted edges     = "
        f"{[(str(a), str(b)) for a, b in transformed.rerouted_edges]}",
        f"  len(G)  = {transformed.original.critical_path_length:g}   "
        f"len(G') = {transformed.transformed_length():g}   "
        f"(elongation {transformed.critical_path_elongation():+g})",
        f"  vol(G_par) = {transformed.gpar_volume():g}   "
        f"len(G_par) = {transformed.gpar_length():g}",
        f"  v_off on critical path of G': "
        f"{transformed.offloaded_on_critical_path()}",
    ]
    return "\n".join(lines)


def render_gantt(trace: ExecutionTrace, width: int = 72) -> str:
    """Render an execution trace as an ASCII Gantt chart.

    One row per resource (host cores first, then accelerators); time is
    scaled to ``width`` characters.  Zero-WCET (instant) nodes are listed
    below the chart because they have no horizontal extent.
    """
    makespan = trace.makespan()
    if makespan == 0:
        return "(empty schedule)"
    scale = width / makespan

    def row_for(resource: str) -> str:
        cells = [" "] * width
        for record in sorted(trace.executions, key=lambda r: r.start):
            if record.resource != resource or record.duration == 0:
                continue
            begin = int(round(record.start * scale))
            end = max(begin + 1, int(round(record.finish * scale)))
            label = str(record.node)
            span = min(end, width) - begin
            content = (label[: span - 1] + "|") if span > 1 else "#"
            for offset, char in enumerate(content[:span]):
                if 0 <= begin + offset < width:
                    cells[begin + offset] = char
        return "".join(cells)

    resources = [
        (name, HOST) for name in trace.platform.host_core_names()
    ] + [(name, ACCELERATOR) for name in trace.platform.accelerator_names()]
    label_width = max(len(name) for name, _ in resources) + 2
    lines = [
        f"schedule of {trace.task.name!r} under {trace.policy_name} "
        f"(makespan = {makespan:g})"
    ]
    ruler = " " * label_width + "0" + " " * (width - len(f"{makespan:g}") - 1) + f"{makespan:g}"
    lines.append(ruler)
    for name, _kind in resources:
        lines.append(f"{name:<{label_width}}{row_for(name)}")
    instant_nodes = [
        f"{record.node}@{record.start:g}"
        for record in trace.executions
        if record.resource_kind == INSTANT
    ]
    if instant_nodes:
        lines.append(f"instant (zero-WCET) nodes: {', '.join(instant_nodes)}")
    return "\n".join(lines)
