"""Terminal-friendly visualisation helpers (no plotting dependencies)."""

from .ascii_art import describe_task, describe_transformation, render_gantt

__all__ = ["describe_task", "describe_transformation", "render_gantt"]
