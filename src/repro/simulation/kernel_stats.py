"""Per-batch kernel step profiles (thread-local, near-zero cost when off).

The engines (numpy lockstep, compiled C step loop, workload reference and
coupled engines) each run an event/step loop whose shape — how many steps
it took, how many node retirements it processed, how full the lanes were —
is exactly the information a latency trace needs at its leaves and the
`/metrics` endpoint needs to aggregate.  This module is the collection
substrate: an engine calls :func:`record_kernel_batch` once per batch run,
and the call is a no-op (one ``getattr`` on a ``threading.local``) unless
the caller wrapped the run in :func:`collect_kernel_stats` — the same
disarmed-cheapness contract the PR 6 fault points follow.

Semantics of the counters (uniform across engines):

``steps``
    Iterations of the engine's main loop.  For the lockstep batch that is
    the number of synchronised event steps; for the compiled C kernel it
    is the total number of retire windows summed over lanes (the C loop
    advances one lane at a time); for the workload engines it is the
    number of event batches (coupled) or heap events (reference).
``events``
    Node retirements processed (every node retires exactly once, so for a
    complete run this equals the total node count of the batch).
``lane_steps``
    Sum over steps of the number of active lanes — ``lane_steps / steps``
    is the mean number of lanes each step advanced, and
    ``lane_steps / (steps * lanes)`` the mean lane occupancy in ``[0, 1]``
    (1.0 means no lockstep waste; the C kernel is per-lane, so its
    occupancy is ``1 / lanes`` by construction and honest about it).

Collectors are thread-local: the facade wraps each engine call of a batch
in one collector and hands the merged profile to the trace span and the
metrics registry.  Worker *processes* (``jobs=N``) do not propagate their
collectors back — the facade serves requests serially per batch, so the
service path is always covered.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = [
    "KernelBatchStats",
    "KernelStatsCollector",
    "collect_kernel_stats",
    "record_kernel_batch",
]

_STATE = threading.local()


@dataclass(frozen=True)
class KernelBatchStats:
    """Step profile of one kernel batch run."""

    engine: str  # "lockstep" | "compiled" | "workload.numpy" | ...
    lanes: int
    steps: int
    events: int
    lane_steps: int

    @property
    def mean_active_lanes(self) -> float:
        """Mean number of lanes advanced per step."""
        return self.lane_steps / self.steps if self.steps else 0.0

    @property
    def occupancy(self) -> float:
        """Mean fraction of lanes active per step, in ``[0, 1]``."""
        if not self.steps or not self.lanes:
            return 0.0
        return self.lane_steps / (self.steps * self.lanes)

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "lanes": self.lanes,
            "steps": self.steps,
            "events": self.events,
            "lane_steps": self.lane_steps,
            "occupancy": self.occupancy,
        }


class KernelStatsCollector:
    """Accumulates the :class:`KernelBatchStats` of one logical operation."""

    def __init__(self) -> None:
        self.batches: List[KernelBatchStats] = []

    def record(self, stats: KernelBatchStats) -> None:
        self.batches.append(stats)

    def merged(self) -> Optional[dict]:
        """One aggregate profile over every recorded batch (None if empty).

        ``occupancy`` is the lane-step-weighted mean across batches —
        equivalently ``sum(lane_steps) / sum(steps * lanes)``.
        """
        if not self.batches:
            return None
        lanes = sum(b.lanes for b in self.batches)
        steps = sum(b.steps for b in self.batches)
        events = sum(b.events for b in self.batches)
        lane_steps = sum(b.lane_steps for b in self.batches)
        capacity = sum(b.steps * b.lanes for b in self.batches)
        return {
            "engines": sorted({b.engine for b in self.batches}),
            "batches": len(self.batches),
            "lanes": lanes,
            "steps": steps,
            "events": events,
            "lane_steps": lane_steps,
            "occupancy": lane_steps / capacity if capacity else 0.0,
        }


def record_kernel_batch(
    engine: str, *, lanes: int, steps: int, events: int, lane_steps: int
) -> None:
    """Record one batch run on the active collector (no-op without one)."""
    collector = getattr(_STATE, "collector", None)
    if collector is not None:
        collector.record(
            KernelBatchStats(
                engine=engine,
                lanes=int(lanes),
                steps=int(steps),
                events=int(events),
                lane_steps=int(lane_steps),
            )
        )


@contextmanager
def collect_kernel_stats() -> Iterator[KernelStatsCollector]:
    """Collect every kernel batch run on this thread inside the block."""
    collector = KernelStatsCollector()
    previous = getattr(_STATE, "collector", None)
    _STATE.collector = collector
    try:
        yield collector
    finally:
        _STATE.collector = previous
