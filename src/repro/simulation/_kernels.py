"""Compiled C step-loop kernel (the PR 8 fast path's engine room).

The numpy lockstep kernel (:mod:`repro.simulation.vectorized`) amortises
*interpreter dispatch*: it exists because issuing one numpy call per lane
per step would drown the arithmetic in Python overhead, so it batches many
lanes into a handful of array sweeps per step.  Compiling the step loop
removes that overhead at the root -- in native code a plain per-lane event
loop (the dense engine's heaps, verbatim) is both simpler and faster than
the lockstep formulation, because the per-step work is a few dozen heap
operations, not a few dozen interpreter round-trips.  This module therefore
lowers the *scalar* event loop of :mod:`repro.simulation.dense` to C, once,
for every priority family the lockstep kernel understands:

* ``fifo`` (breadth-first): ready key ``(ready time, creation index)``;
* ``static`` (critical-path/shortest/longest/fixed-priority): ``(per-node
  key, arrival index)``;
* ``lifo`` (depth-first): ``(-arrival, arrival)``;
* ``random``: ``(pre-consumed draw, arrival)`` -- the draws are consumed on
  the Python side exactly like the numpy kernel's, so the stream semantics
  of the scalar engines are preserved.

Bit-identity holds by construction: the C loop performs the *same
floating-point operations in the same order* as ``simulate_makespan_dense``
(IEEE-754 double adds and compares, the ``1e-12`` retire window, the
arrival/start counters, FIFO instant-node cascades), and binary heaps over
unique keys pop in a total order independent of their internal layout.  In
particular the stamped families' arrival-order replay -- the numpy kernel's
``_py_replay`` escape hatch -- is simply the loop's native behaviour here.

Toolchain
---------
The kernel is plain C99 with no Python.h dependency: it is compiled on
first use with the system C compiler (``cc``/``gcc``/``clang``; override
with ``REPRO_CC``) into a shared library cached by source hash under
``REPRO_KERNEL_CACHE`` (default: a per-user directory in the system temp
dir), and loaded with :mod:`ctypes`.  No third-party package is required --
``pip install .[compiled]`` is a documented no-op kept as the opt-in
marker.  When no compiler is available (or ``REPRO_COMPILED=0`` disables
the backend) every caller falls back to the numpy lockstep kernel; nothing
in the repository *requires* the compiled backend.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from typing import Optional

import numpy as np

from ..core.exceptions import SimulationError
from .kernel_stats import record_kernel_batch

__all__ = [
    "KIND_CODES",
    "compiled_available",
    "compiled_unavailable_reason",
    "load_kernel",
    "run_lanes",
]

#: Priority-family codes shared with the C source below.
KIND_CODES = {"fifo": 0, "static": 1, "lifo": 2, "random": 3}

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Ready-queue heap entry: lexicographic (prim, sec), both doubles.  The
 * (prim, sec) pairs are unique per lane (see the Python module docstring),
 * so heap pops realise a total order -- identical to the scalar engines'
 * tuple heaps regardless of internal layout. */
typedef struct { double prim; double sec; int64_t node; } rentry;

/* Running-set heap entry: (finish, start sequence); the sequence is unique. */
typedef struct { double finish; int64_t seq; int64_t node; int64_t dev; } runentry;

static int rless(const rentry *a, const rentry *b) {
    if (a->prim < b->prim) return 1;
    if (a->prim > b->prim) return 0;
    return a->sec < b->sec;
}

static void rpush(rentry *heap, int64_t *len, rentry e) {
    int64_t i = (*len)++;
    heap[i] = e;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (!rless(&heap[i], &heap[p])) break;
        rentry t = heap[p]; heap[p] = heap[i]; heap[i] = t;
        i = p;
    }
}

static rentry rpop(rentry *heap, int64_t *len) {
    rentry top = heap[0];
    int64_t n = --(*len);
    heap[0] = heap[n];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, m = i;
        if (l < n && rless(&heap[l], &heap[m])) m = l;
        if (r < n && rless(&heap[r], &heap[m])) m = r;
        if (m == i) break;
        rentry t = heap[m]; heap[m] = heap[i]; heap[i] = t;
        i = m;
    }
    return top;
}

static int runless(const runentry *a, const runentry *b) {
    if (a->finish < b->finish) return 1;
    if (a->finish > b->finish) return 0;
    return a->seq < b->seq;
}

static void runpush(runentry *heap, int64_t *len, runentry e) {
    int64_t i = (*len)++;
    heap[i] = e;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (!runless(&heap[i], &heap[p])) break;
        runentry t = heap[p]; heap[p] = heap[i]; heap[i] = t;
        i = p;
    }
}

static runentry runpop(runentry *heap, int64_t *len) {
    runentry top = heap[0];
    int64_t n = --(*len);
    heap[0] = heap[n];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, m = i;
        if (l < n && runless(&heap[l], &heap[m])) m = l;
        if (r < n && runless(&heap[r], &heap[m])) m = r;
        if (m == i) break;
        runentry t = heap[m]; heap[m] = heap[i]; heap[i] = t;
        i = m;
    }
    return top;
}

/* Push one non-instant global node onto its ready heap, stamping the lane's
 * arrival counter -- the C twin of the scalar engines' enqueue fast path. */
#define PUSH_READY(gnode) do { \
    int64_t pr_g = (gnode); \
    arrival += 1; \
    rentry pr_e; \
    pr_e.node = pr_g; \
    switch (kv) { \
    case 0: pr_e.prim = ready[pr_g - base]; pr_e.sec = (double)(pr_g - base); break; \
    case 1: pr_e.prim = static_key[pr_g]; pr_e.sec = (double)arrival; break; \
    case 2: pr_e.prim = -(double)arrival; pr_e.sec = (double)arrival; break; \
    default: pr_e.prim = lane_draws[arrival - 1]; pr_e.sec = (double)arrival; break; \
    } \
    int64_t pr_d = assigned[pr_g]; \
    if (pr_d < 0) rpush(host_heap, &host_len, pr_e); \
    else rpush(dev_heap + pr_d * max_n, &dev_len[pr_d], pr_e); \
} while (0)

/* Enqueue a ready node, resolving zero-WCET ("instant") nodes through the
 * same FIFO cascade as the scalar engines' pending deque. */
#define ENQUEUE(gnode) do { \
    int64_t eq_head = 0, eq_tail = 0; \
    pending[eq_tail++] = (gnode); \
    while (eq_head < eq_tail) { \
        int64_t eq_cur = pending[eq_head++]; \
        if (wcet[eq_cur] != 0.0) { PUSH_READY(eq_cur); continue; } \
        double eq_when = ready[eq_cur - base]; \
        if (eq_when > makespan) makespan = eq_when; \
        remaining -= 1; \
        for (int64_t eq_e = succ_ptr[eq_cur]; eq_e < succ_ptr[eq_cur + 1]; eq_e++) { \
            int64_t eq_s = succ_idx[eq_e]; \
            if (eq_when > ready[eq_s - base]) ready[eq_s - base] = eq_when; \
            if (--in_deg[eq_s - base] == 0) pending[eq_tail++] = eq_s; \
        } \
    } \
} while (0)

/* Run every lane's event loop; lanes are independent.
 *
 * Returns 0 on success, (lane index + 1) when that lane deadlocks, or -1
 * when scratch allocation fails.  All node indices are global (lane l owns
 * [node_off[l], node_off[l+1])); succ_ptr/succ_idx are the globally
 * rebased CSR.  Per-lane scratch is indexed locally (global - base).
 */
int64_t repro_run_lanes(
    int64_t n_lanes,
    const int64_t *node_off,     /* n_lanes + 1 */
    const double  *wcet,         /* N */
    const int64_t *succ_ptr,     /* N + 1 */
    const int64_t *succ_idx,     /* E */
    const int64_t *in_degree,    /* N, initial (read-only) */
    const int64_t *assigned,     /* N, device id or -1 (host) */
    const double  *static_key,   /* N (static lanes; zeros elsewhere) */
    const double  *draws,        /* concatenated draws of random lanes */
    const int64_t *draw_off,     /* n_lanes */
    const int64_t *host_cores,   /* n_lanes */
    const int64_t *accelerators, /* n_lanes */
    const int64_t *kind,         /* n_lanes: 0 fifo, 1 static, 2 lifo, 3 random */
    double        *out,          /* n_lanes */
    int64_t       *stats         /* 2: [0] += retire windows, [1] += nodes retired */
) {
    int64_t max_n = 0, max_a = 0;
    for (int64_t l = 0; l < n_lanes; l++) {
        int64_t n = node_off[l + 1] - node_off[l];
        if (n > max_n) max_n = n;
        if (accelerators[l] > max_a) max_a = accelerators[l];
    }
    if (max_n == 0) {
        for (int64_t l = 0; l < n_lanes; l++) out[l] = 0.0;
        return 0;
    }

    int64_t  *in_deg    = malloc(sizeof(int64_t) * max_n);
    double   *ready     = malloc(sizeof(double) * max_n);
    int64_t  *pending   = malloc(sizeof(int64_t) * max_n);
    int64_t  *newly     = malloc(sizeof(int64_t) * max_n);
    rentry   *host_heap = malloc(sizeof(rentry) * max_n);
    rentry   *dev_heap  = max_a ? malloc(sizeof(rentry) * max_a * max_n) : NULL;
    int64_t  *dev_len   = max_a ? malloc(sizeof(int64_t) * max_a) : NULL;
    uint8_t  *dev_free  = max_a ? malloc(sizeof(uint8_t) * max_a) : NULL;
    runentry *running   = malloc(sizeof(runentry) * max_n);
    if (!in_deg || !ready || !pending || !newly || !host_heap || !running ||
        (max_a && (!dev_heap || !dev_len || !dev_free))) {
        free(in_deg); free(ready); free(pending); free(newly);
        free(host_heap); free(dev_heap); free(dev_len); free(dev_free);
        free(running);
        return -1;
    }

    int64_t status = 0;
    for (int64_t l = 0; l < n_lanes; l++) {
        const int64_t base = node_off[l];
        const int64_t n = node_off[l + 1] - base;
        out[l] = 0.0;
        if (n == 0) continue;
        const int64_t kv = kind[l];
        const double *lane_draws = draws + draw_off[l];
        const int64_t n_acc = accelerators[l];

        memcpy(in_deg, in_degree + base, sizeof(int64_t) * n);
        memset(ready, 0, sizeof(double) * n);
        for (int64_t d = 0; d < n_acc; d++) { dev_len[d] = 0; dev_free[d] = 1; }
        int64_t free_cores = host_cores[l];
        int64_t host_len = 0, run_len = 0;
        int64_t arrival = 0, seq = 0;
        int64_t remaining = n;
        double makespan = 0.0, now = 0.0;

        /* Seed: snapshot the sources before any instant cascade mutates the
         * in-degree array, then enqueue each in creation order. */
        int64_t n_src = 0;
        for (int64_t i = 0; i < n; i++)
            if (in_deg[i] == 0) newly[n_src++] = base + i;
        for (int64_t i = 0; i < n_src; i++) ENQUEUE(newly[i]);

        while (remaining > 0) {
            /* Start phase: work conserving, host cores then each device. */
            while (free_cores > 0 && host_len > 0) {
                rentry e = rpop(host_heap, &host_len);
                free_cores -= 1;
                seq += 1;
                runentry r = { now + wcet[e.node], seq, e.node, -1 };
                runpush(running, &run_len, r);
            }
            for (int64_t d = 0; d < n_acc; d++) {
                while (dev_free[d] && dev_len[d] > 0) {
                    rentry e = rpop(dev_heap + d * max_n, &dev_len[d]);
                    dev_free[d] = 0;
                    seq += 1;
                    runentry r = { now + wcet[e.node], seq, e.node, d };
                    runpush(running, &run_len, r);
                }
            }
            if (remaining == 0) break;
            if (run_len == 0) { status = l + 1; goto done; }

            /* Advance to the earliest completion; retire the whole window. */
            stats[0] += 1;
            now = running[0].finish;
            double threshold = now + 1e-12;
            while (run_len > 0 && running[0].finish <= threshold) {
                runentry r = runpop(running, &run_len);
                if (r.finish > makespan) makespan = r.finish;
                remaining -= 1;
                if (r.dev < 0) free_cores += 1;
                else dev_free[r.dev] = 1;
                int64_t n_new = 0;
                for (int64_t e = succ_ptr[r.node]; e < succ_ptr[r.node + 1]; e++) {
                    int64_t s = succ_idx[e];
                    if (r.finish > ready[s - base]) ready[s - base] = r.finish;
                    if (--in_deg[s - base] == 0) newly[n_new++] = s;
                }
                for (int64_t j = 0; j < n_new; j++) {
                    int64_t s = newly[j];
                    if (wcet[s] != 0.0) { PUSH_READY(s); }
                    else ENQUEUE(s);
                }
            }
        }
        out[l] = makespan;
        stats[1] += n;
    }

done:
    free(in_deg); free(ready); free(pending); free(newly);
    free(host_heap); free(dev_heap); free(dev_len); free(dev_free);
    free(running);
    return status;
}
"""

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_reason: Optional[str] = None
_probed = False


def _source_digest() -> str:
    return hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]


def _find_compiler() -> Optional[str]:
    override = os.environ.get("REPRO_CC", "").strip()
    if override:
        return shutil.which(override) or (
            override if os.path.exists(override) else None
        )
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNEL_CACHE", "").strip()
    if configured:
        return configured
    try:
        user = os.getlogin()
    except OSError:
        user = str(os.getuid()) if hasattr(os, "getuid") else "user"
    return os.path.join(tempfile.gettempdir(), f"repro-kernels-{user}")


def _build_library() -> str:
    """Compile the kernel (once per source version) and return its path.

    The library name carries the source hash, so editing the C source can
    never pick up a stale cache; concurrent builders race benignly through
    an atomic rename.
    """
    cache = _cache_dir()
    suffix = "dll" if sys.platform == "win32" else "so"
    target = os.path.join(cache, f"repro_step_kernel_{_source_digest()}.{suffix}")
    if os.path.exists(target):
        return target
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError(
            "no C compiler found (looked for cc/gcc/clang; set REPRO_CC)"
        )
    os.makedirs(cache, exist_ok=True)
    src = os.path.join(cache, f"repro_step_kernel_{_source_digest()}.c")
    with open(src, "w", encoding="utf-8") as handle:
        handle.write(_C_SOURCE)
    tmp = f"{target}.tmp.{os.getpid()}"
    cmd = [compiler, "-O2", "-std=c99", "-fPIC", "-shared", src, "-o", tmp]
    result = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if result.returncode != 0:
        raise RuntimeError(
            f"kernel compilation failed ({' '.join(cmd)}):\n{result.stderr}"
        )
    os.replace(tmp, target)  # atomic: concurrent builds converge
    return target


def load_kernel() -> Optional[ctypes.CDLL]:
    """The loaded kernel library, or ``None`` with a recorded reason.

    Memoised (including the failure); thread-safe.  Disabled outright by
    ``REPRO_COMPILED=0`` -- the switch the no-compiler CI leg and the
    fallback tests use to force the numpy path on hosts that *do* have a
    compiler.
    """
    global _lib, _reason, _probed
    with _lock:
        if _probed:
            return _lib
        _probed = True
        if os.environ.get("REPRO_COMPILED", "").strip() == "0":
            _reason = "disabled by REPRO_COMPILED=0"
            return None
        try:
            lib = ctypes.CDLL(_build_library())
            fn = lib.repro_run_lanes
            fn.restype = ctypes.c_int64
            fn.argtypes = [ctypes.c_int64] + [ctypes.c_void_p] * 14
            _lib = lib
        except Exception as error:  # noqa: BLE001 - any failure means "absent"
            _reason = str(error)
        return _lib


def compiled_available() -> bool:
    """Whether the compiled backend can serve lanes on this host."""
    return load_kernel() is not None


def compiled_unavailable_reason() -> Optional[str]:
    """Why :func:`compiled_available` is ``False`` (``None`` when it isn't)."""
    load_kernel()
    return _reason


def _reset_for_tests() -> None:
    """Drop the memoised probe so tests can re-probe under changed env."""
    global _lib, _reason, _probed
    with _lock:
        _lib = None
        _reason = None
        _probed = False


def _i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def _f64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


def run_lanes(
    node_off: np.ndarray,
    wcet: np.ndarray,
    succ_ptr: np.ndarray,
    succ_idx: np.ndarray,
    in_degree: np.ndarray,
    assigned: np.ndarray,
    static_key: np.ndarray,
    draws: np.ndarray,
    draw_off: np.ndarray,
    host_cores: np.ndarray,
    accelerators: np.ndarray,
    kinds: np.ndarray,
) -> np.ndarray:
    """Run every lane through the compiled loop; returns per-lane makespans.

    Raises :class:`RuntimeError` when the backend is unavailable and
    :class:`~repro.core.exceptions.SimulationError` on a deadlocked lane
    (same message as the scalar engines).  The GIL is released for the
    duration of the C call.
    """
    lib = load_kernel()
    if lib is None:
        raise RuntimeError(f"compiled kernel unavailable: {_reason}")
    n_lanes = len(node_off) - 1
    out = np.empty(n_lanes, dtype=np.float64)
    stats = np.zeros(2, dtype=np.int64)
    arrays = (
        _i64(node_off),
        _f64(wcet),
        _i64(succ_ptr),
        _i64(succ_idx),
        _i64(in_degree),
        _i64(assigned),
        _f64(static_key),
        _f64(draws),
        _i64(draw_off),
        _i64(host_cores),
        _i64(accelerators),
        _i64(kinds),
        out,
        stats,
    )
    status = lib.repro_run_lanes(
        ctypes.c_int64(n_lanes), *(a.ctypes.data for a in arrays)
    )
    if status > 0:
        raise SimulationError(
            "simulation deadlocked: nodes remain but nothing is running "
            "(is the graph connected and acyclic?)"
        )
    if status < 0:
        raise MemoryError("compiled kernel scratch allocation failed")
    # The C loop advances one lane per retire window, so each step has
    # exactly one active lane (occupancy 1/n_lanes by construction).
    record_kernel_batch(
        "compiled",
        lanes=n_lanes,
        steps=int(stats[0]),
        events=int(stats[1]),
        lane_steps=int(stats[0]),
    )
    return out
