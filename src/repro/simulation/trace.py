"""Execution traces produced by the scheduling simulator.

A trace is a list of :class:`NodeExecution` records -- one per node -- plus
the platform it was produced on.  :class:`ExecutionTrace` offers the queries
that experiments and tests need (makespan, per-resource busy time, host idle
intervals) and a :meth:`ExecutionTrace.validate` method proving that the
trace is a legal schedule: precedence constraints respected, no resource
over-subscription, offloaded node on the accelerator, work conservation not
violated in obvious ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.exceptions import SimulationError
from ..core.graph import NodeId
from ..core.task import DagTask
from .platform import ACCELERATOR, HOST, INSTANT, Platform

__all__ = ["NodeExecution", "ExecutionTrace"]


@dataclass(frozen=True)
class NodeExecution:
    """Execution record of a single node.

    Attributes
    ----------
    node:
        Node identifier.
    start, finish:
        Absolute start and finish times; ``finish - start`` equals the node's
        WCET (the simulator always executes for the full WCET).
    resource_kind:
        ``"host"``, ``"accelerator"`` or ``"instant"`` (zero-WCET nodes).
    resource:
        Concrete resource identifier, e.g. ``"core1"`` or ``"acc0"``; ``None``
        for instant nodes.
    ready:
        The time at which every predecessor had completed.
    """

    node: NodeId
    start: float
    finish: float
    resource_kind: str
    resource: Optional[str]
    ready: float

    @property
    def duration(self) -> float:
        """``finish - start``."""
        return self.finish - self.start

    @property
    def queueing_delay(self) -> float:
        """Time spent ready but not executing (``start - ready``)."""
        return self.start - self.ready


@dataclass
class ExecutionTrace:
    """A complete schedule of one DAG task on a heterogeneous platform.

    ``device_assignment`` records which nodes were offloaded to which
    accelerator; it is ``None`` for plain single-offload simulations (the
    task's own ``offloaded_node`` designation is then authoritative).
    """

    task: DagTask
    platform: Platform
    executions: list[NodeExecution] = field(default_factory=list)
    policy_name: str = "unknown"
    device_assignment: Optional[dict[NodeId, int]] = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.executions)

    def execution_of(self, node: NodeId) -> NodeExecution:
        """Return the execution record of a node."""
        for record in self.executions:
            if record.node == node:
                return record
        raise SimulationError(f"node {node!r} does not appear in the trace")

    def makespan(self) -> float:
        """Completion time of the last node (response time of the task)."""
        if not self.executions:
            return 0.0
        return max(record.finish for record in self.executions)

    def start_time(self) -> float:
        """Start time of the first node (normally ``0``)."""
        if not self.executions:
            return 0.0
        return min(record.start for record in self.executions)

    def host_executions(self) -> list[NodeExecution]:
        """Execution records that ran on a host core."""
        return [record for record in self.executions if record.resource_kind == HOST]

    def accelerator_executions(self) -> list[NodeExecution]:
        """Execution records that ran on an accelerator."""
        return [
            record for record in self.executions if record.resource_kind == ACCELERATOR
        ]

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def busy_time(self, resource_kind: str) -> float:
        """Total busy time summed over all resources of the given kind."""
        return sum(
            record.duration
            for record in self.executions
            if record.resource_kind == resource_kind
        )

    def host_utilisation(self) -> float:
        """Average host-core utilisation over the makespan, in ``[0, 1]``."""
        span = self.makespan()
        if span == 0:
            return 0.0
        return self.busy_time(HOST) / (span * self.platform.host_cores)

    def accelerator_utilisation(self) -> float:
        """Average accelerator utilisation over the makespan, in ``[0, 1]``."""
        span = self.makespan()
        if span == 0 or self.platform.accelerators == 0:
            return 0.0
        return self.busy_time(ACCELERATOR) / (span * self.platform.accelerators)

    def host_idle_while_accelerator_busy(self) -> float:
        """Total host-core idle time that overlaps accelerator activity.

        This is exactly the pathology of Figure 1(c) of the paper -- the host
        sitting idle while ``v_off`` runs -- that the transformation is
        designed to avoid.  Measured in core x time units.
        """
        events: list[tuple[float, float]] = []  # (time, delta host busy cores)
        accel_intervals: list[tuple[float, float]] = []
        for record in self.executions:
            if record.resource_kind == HOST:
                events.append((record.start, +1))
                events.append((record.finish, -1))
            elif record.resource_kind == ACCELERATOR:
                accel_intervals.append((record.start, record.finish))
        if not accel_intervals:
            return 0.0
        boundaries = sorted(
            {time for time, _ in events}
            | {t for interval in accel_intervals for t in interval}
        )
        idle = 0.0
        for left, right in zip(boundaries, boundaries[1:]):
            if right <= left:
                continue
            busy_cores = sum(
                1
                for record in self.executions
                if record.resource_kind == HOST
                and record.start <= left
                and record.finish >= right
            )
            accel_busy = any(
                start <= left and finish >= right for start, finish in accel_intervals
            )
            if accel_busy:
                idle += (self.platform.host_cores - busy_cores) * (right - left)
        return idle

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that the trace is a legal schedule of the task.

        Raises
        ------
        SimulationError
            If any structural property is violated: missing/duplicated nodes,
            precedence violations, WCET mismatches, resource
            over-subscription, or the offloaded node executing on the host.
        """
        graph = self.task.graph
        seen = [record.node for record in self.executions]
        if sorted(map(repr, seen)) != sorted(map(repr, graph.nodes())):
            raise SimulationError(
                "trace does not contain exactly one execution per node"
            )
        by_node = {record.node: record for record in self.executions}
        for record in self.executions:
            expected = graph.wcet(record.node)
            if abs(record.duration - expected) > 1e-9:
                raise SimulationError(
                    f"node {record.node!r} executed for {record.duration}, "
                    f"expected WCET {expected}"
                )
            if record.start < record.ready - 1e-9:
                raise SimulationError(
                    f"node {record.node!r} started before it was ready"
                )
            for predecessor in graph.predecessors(record.node):
                if by_node[predecessor].finish > record.start + 1e-9:
                    raise SimulationError(
                        f"precedence violated: {predecessor!r} finishes at "
                        f"{by_node[predecessor].finish} after {record.node!r} "
                        f"starts at {record.start}"
                    )
        if self.device_assignment is not None:
            offloaded_set = set(self.device_assignment)
        elif self.task.offloaded_node is not None:
            offloaded_set = {self.task.offloaded_node}
        else:
            offloaded_set = set()
        for record in self.executions:
            if record.duration == 0:
                continue
            if record.node in offloaded_set:
                if record.resource_kind != ACCELERATOR:
                    raise SimulationError(
                        f"offloaded node {record.node!r} executed on the host "
                        "in a heterogeneous simulation trace"
                    )
            elif record.resource_kind == ACCELERATOR:
                raise SimulationError(
                    f"host node {record.node!r} executed on the accelerator"
                )
        self._check_capacity(HOST, self.platform.host_cores)
        if self.platform.accelerators:
            self._check_capacity(ACCELERATOR, self.platform.accelerators)

    def _check_capacity(self, kind: str, capacity: int) -> None:
        """Verify that at most ``capacity`` nodes of ``kind`` overlap in time."""
        events: list[tuple[float, int]] = []
        for record in self.executions:
            if record.resource_kind != kind or record.duration == 0:
                continue
            events.append((record.start, +1))
            events.append((record.finish, -1))
        # Process finishes before starts at equal times.
        events.sort(key=lambda event: (event[0], event[1]))
        active = 0
        for _, delta in events:
            active += delta
            if active > capacity:
                raise SimulationError(
                    f"{kind} capacity {capacity} exceeded ({active} concurrent nodes)"
                )

    def as_rows(self) -> list[dict[str, object]]:
        """Return the trace as a list of plain dictionaries (CSV friendly)."""
        return [
            {
                "node": record.node,
                "start": record.start,
                "finish": record.finish,
                "duration": record.duration,
                "ready": record.ready,
                "resource_kind": record.resource_kind,
                "resource": record.resource if record.resource is not None else INSTANT,
            }
            for record in sorted(self.executions, key=lambda r: (r.start, repr(r.node)))
        ]
