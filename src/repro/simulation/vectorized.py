"""Vectorised multi-simulation lockstep kernel (the PR 4 fast path).

The dense engine (:mod:`repro.simulation.dense`) already strips the per-node
object churn out of one simulation, but a figure-6 sweep still runs
*thousands* of independent simulations -- one Python event loop per
``(task, platform, policy)`` cell.  This module advances **many independent
simulations in lockstep**: every cell becomes a *lane* of a batch, the node
state of all lanes lives in flat numpy arrays (one global "node slot" space,
lane ``l`` owning the contiguous slice ``[offset_l, offset_l + n_l)``), and
each iteration of the step loop advances *every* active lane to its own next
completion instant with a handful of array sweeps:

* **running slots** -- ``(B, S)`` matrices of finish times and node ids
  (host core slots followed by accelerator slots); the per-lane "advance
  time to the earliest completion" of the scalar engines becomes one
  row-wise ``min``;
* **edge propagation** -- the completed nodes of all lanes expand through
  one shared CSR ragged-gather (in-degree countdown and ready-time maxima
  as grouped scatter updates), replacing one Python successor loop per
  completed node per simulation;
* **ready queues** -- see below; the breadth-first family needs no priority
  scan at all.

The monotone-arrival property (the fifo fast path)
--------------------------------------------------
The breadth-first policy orders its ready queue by ``(ready time, creation
index)``.  Ready times are *monotone across steps*: a node that becomes
ready in step ``k`` has ``ready in [next_finish_k, next_finish_k + 1e-12]``
(its decisive predecessor retired inside the step's threshold window), and
``next_finish_{k+1} > next_finish_k + 1e-12`` -- so every arrival of a later
step sorts strictly after every arrival of an earlier one.  The
breadth-first ready queue is therefore a genuine FIFO: the kernel sorts each
step's arrival batch once by ``(lane, ready time, creation index)``, appends
it to per-lane circular queues, and "pick the next node to start" is a
single O(1) head read per lane -- no per-step priority scan, which is what
makes the batched path beat the dense engine's per-simulation heaps.

Policy families ("policy-priority matrices")
--------------------------------------------
The kernel understands the four priority families of the built-in policies
(:func:`repro.simulation.schedulers.policy_vector_kind`):

* ``fifo`` (breadth-first): key ``(ready time, creation index)`` -- unique
  per lane, no arrival bookkeeping, FIFO queues as above (the fastest path,
  and the paper's scheduler);
* ``static`` (critical-path/shortest/longest/fixed-priority): key
  ``(static per-node value, arrival index)`` with the per-node values as a
  matrix from :meth:`~repro.simulation.schedulers.SchedulingPolicy.vector_keys`;
* ``lifo`` (depth-first): key ``(-arrival,)``;
* ``random``: key ``(draw, arrival)`` with the draws *pre-consumed* from the
  policy's stream (``Generator.random(k)`` consumes the bit stream exactly
  like ``k`` scalar draws, one draw per non-instant arrival, so the stream
  semantics of the scalar engines are preserved; when one policy instance
  serves several cells, the draws are consumed in cell order).

The stamped families keep scan-based ready pools whose entries carry one
*packed* float64 key: the dense rank of the primary value (equal values
share a rank) scaled past the arrival stamp, ``rank * M + arrival`` with
``M`` larger than any stamp -- so a single masked row ``argmin`` realises
the scalar engines' lexicographic ``(primary, arrival)`` heap order
exactly, without a second tie-break pass.  They are simulated correctly
but without the fifo path's throughput, which is fine: every sweep driver
defaults to the breadth-first scheduler.  Custom or subclassed policies have no vector kind;
callers (:func:`repro.simulation.batch.simulate_many`) fall back to the
dense engine for those cells.

Bit-identity contract
---------------------
Like the dense engine, the kernel must return **exactly** the makespan of
``simulate(...).makespan()`` for every cell -- same floats, same
tie-breaking.  The invariants that make this work:

* ready times are pure ``max`` folds over predecessor finish times and
  in-degrees pure countdowns, so batching a step's edge updates is
  order-free;
* arrival indices (the tie-breaker of the stamped families) are assigned by
  replaying the scalar engines' enqueue order: completed nodes sorted by
  ``(finish, start sequence)`` (the running-heap pop order), successors in
  CSR (creation) order, a node becoming ready at the step's *last* incoming
  edge -- the kernel therefore stamps newly ready nodes by the position of
  that decisive edge;
* zero-WCET ("instant") cascades resolve in the scalar engines' FIFO order.
  For ``fifo`` lanes the order cannot influence the result and the cascade
  is a vectorised fixed point (its arrivals are merged with the step's
  direct arrivals before the batch sort, preserving the queue order); for
  stamped lanes the kernel replays the affected lane's step through an
  exact scalar fallback (cascades are rare -- one ``v_sync`` per
  transformed task -- so this costs nothing measurable).

The property suite in ``tests/test_vectorized_engine.py`` enforces identity
against both scalar engines across all seven registered policies, original
and transformed DAGs, multi-device assignments and offload modes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..core.compiled import CompiledTask, compile_task
from ..core.exceptions import SimulationError
from ..core.graph import NodeId
from ..core.task import DagTask
from .engine import _as_platform, _device_assignment
from .kernel_stats import record_kernel_batch
from .platform import Platform
from .schedulers import (
    VECTOR_FIFO,
    VECTOR_LIFO,
    VECTOR_RANDOM,
    VECTOR_STATIC,
    BreadthFirstPolicy,
    SchedulingPolicy,
    policy_vector_kind,
)
from .vectorized_compiled import resolve_backend, run_lanes_compiled

__all__ = [
    "VectorCell",
    "simulate_makespans_vectorized",
    "simulate_column_vectorized",
    "simulate_makespan_lockstep",
]

_INF = np.inf


@dataclass(frozen=True)
class VectorCell:
    """One simulation of the lockstep batch (a *lane*).

    Mirrors the parameters of :func:`repro.simulation.engine.simulate`; the
    optional ``compiled`` view lets batch drivers compile once per task and
    share the view across every cell of that task.
    """

    task: DagTask
    platform: Union[Platform, int]
    policy: Optional[SchedulingPolicy] = None
    offload_enabled: bool = True
    device_assignment: Optional[Mapping[NodeId, int]] = None
    compiled: Optional[CompiledTask] = None


@dataclass
class _Lane:
    """Resolved per-cell inputs (internal)."""

    compiled: CompiledTask
    platform: Platform
    assigned: np.ndarray  # (n,) device per node, -1 = host
    static_keys: Optional[np.ndarray] = None  # static kind
    draws: Optional[np.ndarray] = None  # random kind
    out_index: int = 0  # position in the caller's cell list


def _ragged_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``."""
    ends = np.cumsum(counts)
    total = int(ends[-1]) if len(ends) else 0
    if total == 0:
        return np.empty(0, dtype=np.int64)
    bases = np.repeat(starts - ends + counts, counts)
    return bases + np.arange(total, dtype=np.int64)


def _group_sorted(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(firsts, counts)`` of the runs of an already-sorted array.

    Equivalent to ``np.unique(values, return_index=True,
    return_counts=True)`` (with ``values[firsts]`` as the uniques) but
    without re-sorting -- the step loop groups by lanes and targets that are
    sorted by construction.  Hand-rolled (no ``np.diff``/``concatenate``)
    because it runs several times per step.
    """
    n = len(values)
    boundaries = np.nonzero(values[1:] != values[:-1])[0]
    k = len(boundaries)
    firsts = np.empty(k + 1, dtype=np.int64)
    firsts[0] = 0
    firsts[1:] = boundaries
    firsts[1:] += 1
    ends = np.empty(k + 1, dtype=np.int64)
    ends[:k] = firsts[1:]
    ends[k] = n
    return firsts, ends - firsts


class _LockstepBatch:
    """One lockstep run over lanes sharing a priority family (``kind``)."""

    def __init__(self, kind: str, lanes: list[_Lane]) -> None:
        self.kind = kind
        # Big lanes first: a lane runs for roughly one step per node, so
        # ordering by size keeps the active lanes in a contiguous prefix
        # and the per-step full-width scans can shrink as lanes finish
        # (``b_act`` below).  Results are per-lane, so order is free to
        # choose; ``out_index`` maps back to the caller's cell order.
        self.lanes = sorted(
            lanes, key=lambda lane: -len(lane.compiled.nodes)
        )
        self._build()

    # ------------------------------------------------------------------
    # Construction: flat node space + per-lane state
    # ------------------------------------------------------------------
    def _build(self) -> None:
        kind = self.kind
        lanes = self.lanes
        B = len(lanes)
        ns = np.array([len(lane.compiled.nodes) for lane in lanes], dtype=np.int64)
        node_off = np.concatenate(([0], np.cumsum(ns)))
        N = int(node_off[-1])
        es = np.array(
            [len(lane.compiled.succ_idx) for lane in lanes], dtype=np.int64
        )
        edge_off = np.concatenate(([0], np.cumsum(es)))

        self.B, self.N, self.ns = B, N, ns
        self.lane_of = np.repeat(np.arange(B, dtype=np.int64), ns)
        self.local_idx = np.arange(N, dtype=np.int64) - np.repeat(node_off[:-1], ns)
        self.local_idx_f = self.local_idx.astype(np.float64)
        if N:
            self.wcet = np.concatenate(
                [lane.compiled.wcet for lane in lanes]
            ).astype(np.float64, copy=False)
            ptr = np.concatenate(
                [lane.compiled.succ_ptr_array[:-1] for lane in lanes]
                + [edge_off[-1:]]
            )
            ptr[:-1] += np.repeat(edge_off[:-1], ns)
            self.succ_ptr = ptr
            if edge_off[-1]:
                idx = np.concatenate(
                    [lane.compiled.succ_idx_array for lane in lanes]
                )
                idx += np.repeat(node_off[:-1], es)
                self.succ_idx = idx
            else:
                self.succ_idx = np.empty(0, dtype=np.int64)
            self.succ_cnt = self.succ_ptr[1:] - self.succ_ptr[:-1]
            self.in_degree = np.concatenate(
                [lane.compiled.in_degree_array for lane in lanes]
            ).copy()
            self.assigned = np.concatenate([lane.assigned for lane in lanes])
        else:
            self.wcet = np.empty(0, dtype=np.float64)
            self.succ_ptr = np.zeros(1, dtype=np.int64)
            self.succ_idx = np.empty(0, dtype=np.int64)
            self.succ_cnt = np.empty(0, dtype=np.int64)
            self.in_degree = np.empty(0, dtype=np.int64)
            self.assigned = np.empty(0, dtype=np.int64)
        self.instant = self.wcet == 0.0
        self.ready_time = np.zeros(N, dtype=np.float64)

        # Packed stamped-family keys: the scalar engines order ready pools
        # by (primary value, arrival stamp).  Primary values are known
        # upfront per lane (static per-node keys; the pre-consumed draw
        # pool; -arrival for lifo), so each lane's values are *dense-ranked*
        # once (equal values share a rank, preserving the tie) and every
        # pool entry carries the single exact float64 ``rank * M + stamp``
        # with ``M`` above any stamp -- one masked row argmin then realises
        # the full lexicographic order (ranks and stamps are small integers,
        # so the packing is exact in float64).
        self._stamp_mult = float(int(ns.max()) + 1) if B else 1.0
        if kind == VECTOR_STATIC:
            self.rank_flat = (
                np.concatenate(
                    [
                        np.unique(
                            np.asarray(lane.static_keys, dtype=np.float64),
                            return_inverse=True,
                        )[1].astype(np.float64)
                        for lane in lanes
                    ]
                )
                if N
                else np.empty(0, dtype=np.float64)
            )
        if kind == VECTOR_RANDOM:
            counts = [len(lane.draws) for lane in lanes]
            self.draw_off = np.concatenate(
                ([0], np.cumsum(np.array(counts, dtype=np.int64)))
            )[:-1]
            self.draw_rank_flat = (
                np.concatenate(
                    [
                        np.unique(
                            np.asarray(lane.draws, dtype=np.float64),
                            return_inverse=True,
                        )[1].astype(np.float64)
                        for lane in lanes
                    ]
                )
                if sum(counts)
                else np.empty(0, dtype=np.float64)
            )

        # Resources: host core slots first, then accelerator slots.
        m = np.array([lane.platform.host_cores for lane in lanes], dtype=np.int64)
        accel = np.array(
            [lane.platform.accelerators for lane in lanes], dtype=np.int64
        )
        self.S_host = int(m.max()) if B else 0
        self.A = int(self.assigned.max()) + 1 if self.assigned.size else 0
        S = self.S_host + self.A
        self.S = S
        # Slot-major (S, B) layout: the per-lane "earliest completion" min
        # reduces over axis 0 (vectorised across the contiguous lane axis),
        # and all slot accesses go through flat indices (``slot * B +
        # lane``) -- flat gathers/scatters are several times cheaper than
        # their 2-D fancy-indexing equivalents.
        self.slot_finish = np.full((S, B), _INF)
        self.slot_node = np.full((S, B), -1, dtype=np.int64)
        self.slot_seq = np.zeros((S, B), dtype=np.int64)
        self.slot_finish_flat = self.slot_finish.ravel()
        self.slot_node_flat = self.slot_node.ravel()
        self.slot_seq_flat = self.slot_seq.ravel()
        # Free host slots as per-lane stacks (pop on start, push on retire):
        # O(1) flat accesses instead of scanning the slot matrix for a free
        # column.  Slot identity is interchangeable (the scalar engines'
        # cores are count-based), so any order works.
        self.fs_slot = np.tile(
            np.arange(max(self.S_host, 1), dtype=np.int64), (B, 1)
        )
        self.fs_slot_flat = self.fs_slot.ravel()
        self.fs_top = np.full(B, self.S_host, dtype=np.int64)
        self.free_cores = m.copy()
        self.device_free = (
            np.arange(self.A, dtype=np.int64)[None, :] < accel[:, None]
            if self.A
            else np.zeros((B, 0), dtype=bool)
        )

        self.remaining = ns.copy()
        self.lane_time = np.zeros(B)
        self.makespan = np.zeros(B)
        self.arrival_count = np.zeros(B, dtype=np.int64)
        self.start_count = np.zeros(B, dtype=np.int64)

        if kind == VECTOR_FIFO:
            # FIFO queues (see the module docstring): every node is enqueued
            # at most once, so a (B, max enqueues) ring never wraps and
            # head/tail cursors replace any priority bookkeeping.
            nonzero_mask = self.wcet != 0.0
            width = (
                int(np.bincount(self.lane_of[nonzero_mask], minlength=B).max())
                if N and nonzero_mask.any()
                else 0
            )
            self.fq_width = max(width, 1)
            self.fq_node = np.full((B, self.fq_width), -1, dtype=np.int64)
            self.fq_node_flat = self.fq_node.ravel()
            self.fq_head = np.zeros(B, dtype=np.int64)
            self.fq_tail = np.zeros(B, dtype=np.int64)
            if self.A:
                device_mask = self.assigned >= 0
                dev_width = int(
                    np.bincount(
                        self.lane_of[device_mask] * self.A
                        + self.assigned[device_mask]
                    ).max()
                )
                self.fqd_node = np.full(
                    (B, self.A, dev_width), -1, dtype=np.int64
                )
                self.fqd_head = np.zeros((B, self.A), dtype=np.int64)
                self.fqd_tail = np.zeros((B, self.A), dtype=np.int64)
        else:
            # Scan pools for the stamped families: (B, W) packed-key / node
            # matrices, swap-remove, no internal order (the per-lane packed
            # keys are unique, so selection never depends on pool slot
            # positions).
            self.W = 8
            self.rp_key = np.full((B, self.W), _INF)
            self.rp_node = np.full((B, self.W), -1, dtype=np.int64)
            self.rp_count = np.zeros(B, dtype=np.int64)
            self.Wd = 2
            self.dp_key = np.full((B, self.A, self.Wd), _INF)
            self.dp_node = np.full((B, self.A, self.Wd), -1, dtype=np.int64)
            self.dp_count = np.zeros((B, self.A), dtype=np.int64)
        #: Python-side count of queued device nodes: most steps have none
        #: (one offloaded node per task is the paper's model), and a zero
        #: lets the start phase skip the per-device passes entirely.
        self.dev_queued = 0

        # Reusable step buffers (allocation overhead dominates these tiny
        # per-step arrays) and a scratch vector for duplicate detection.
        self._buf_next = np.empty(B)
        self._buf_thr = np.empty(B)
        self._buf_mask = np.empty((S, B), dtype=bool) if S else None
        self._scratch = np.empty(N, dtype=np.int64)

    # ------------------------------------------------------------------
    # Stamped-family pool plumbing
    # ------------------------------------------------------------------
    def _grow_host(self, need: int) -> None:
        new_w = self.W
        while new_w < need:
            new_w *= 2
        pad = new_w - self.W
        self.rp_key = np.hstack([self.rp_key, np.full((self.B, pad), _INF)])
        self.rp_node = np.hstack(
            [self.rp_node, np.full((self.B, pad), -1, dtype=np.int64)]
        )
        self.W = new_w

    def _grow_device(self, need: int) -> None:
        new_w = self.Wd
        while new_w < need:
            new_w *= 2
        pad = new_w - self.Wd
        shape = (self.B, self.A, pad)
        self.dp_key = np.concatenate([self.dp_key, np.full(shape, _INF)], axis=2)
        self.dp_node = np.concatenate(
            [self.dp_node, np.full(shape, -1, dtype=np.int64)], axis=2
        )
        self.Wd = new_w

    def _insert_host(
        self, L: np.ndarray, nodes: np.ndarray, prim: np.ndarray
    ) -> None:
        """Append ready entries to the scan pools (``L`` lane-sorted)."""
        firsts, counts = _group_sorted(L)
        uL = L[firsts]
        base = self.rp_count[uL]
        need = int((base + counts).max())
        if need > self.W:
            self._grow_host(need)
        pos = np.repeat(base, counts) + (
            np.arange(len(L), dtype=np.int64) - np.repeat(firsts, counts)
        )
        self.rp_key[L, pos] = prim
        self.rp_node[L, pos] = nodes
        self.rp_count[uL] = base + counts

    def _insert_device(
        self,
        L: np.ndarray,
        devices: np.ndarray,
        nodes: np.ndarray,
        prim: np.ndarray,
    ) -> None:
        ids = L * self.A + devices
        order = np.argsort(ids, kind="stable")
        ids = ids[order]
        L, devices, nodes = L[order], devices[order], nodes[order]
        prim = prim[order]
        firsts, counts = _group_sorted(ids)
        uid = ids[firsts]
        uL, uD = uid // self.A, uid % self.A
        base = self.dp_count[uL, uD]
        need = int((base + counts).max())
        if need > self.Wd:
            self._grow_device(need)
        pos = np.repeat(base, counts) + (
            np.arange(len(L), dtype=np.int64) - np.repeat(firsts, counts)
        )
        self.dp_key[L, devices, pos] = prim
        self.dp_node[L, devices, pos] = nodes
        self.dp_count[uL, uD] = base + counts
        self.dev_queued += len(L)

    @staticmethod
    def _select(key: np.ndarray, lanes: np.ndarray) -> np.ndarray:
        """Per-row ``argmin`` over the packed lexicographic keys.

        A single pass: each pool entry's float64 packs ``(primary rank,
        arrival stamp)`` exactly, so one row ``argmin`` realises the heap
        order of the scalar engines (the packed keys are unique per lane, so
        the result never depends on pool slot positions).
        """
        return key[lanes].argmin(axis=1)

    def _remove_host(self, lanes: np.ndarray, slots: np.ndarray) -> None:
        last = self.rp_count[lanes] - 1
        self.rp_key[lanes, slots] = self.rp_key[lanes, last]
        self.rp_node[lanes, slots] = self.rp_node[lanes, last]
        self.rp_key[lanes, last] = _INF
        self.rp_node[lanes, last] = -1
        self.rp_count[lanes] = last

    def _remove_device(
        self, lanes: np.ndarray, d: int, slots: np.ndarray
    ) -> None:
        last = self.dp_count[lanes, d] - 1
        self.dp_key[lanes, d, slots] = self.dp_key[lanes, d, last]
        self.dp_node[lanes, d, slots] = self.dp_node[lanes, d, last]
        self.dp_key[lanes, d, last] = _INF
        self.dp_node[lanes, d, last] = -1
        self.dp_count[lanes, d] = last
        self.dev_queued -= len(lanes)

    # ------------------------------------------------------------------
    # Enqueue (newly ready nodes -> ready queues)
    # ------------------------------------------------------------------
    def _enqueue_newly(
        self,
        L: np.ndarray,
        nodes: np.ndarray,
        trig: np.ndarray,
        ordered: bool = False,
    ) -> None:
        """Enqueue ready nodes; ``trig`` orders same-lane arrivals.

        For the stamped families the arrival indices are assigned here: the
        entries are ordered by ``(lane, trig)`` where ``trig`` replays the
        scalar engines' enqueue order within the step (position of the
        decisive incoming edge; local node index during seeding).

        The fifo family needs the final queue order (lane, ready, creation
        index) instead.  ``ordered=True`` asserts the input already is in
        that order (single-source CSR expansions).  Otherwise: on a
        *uniform* step -- every completion at exactly the lane's
        ``next_finish``, so all same-lane arrivals tie on ready time -- a
        plain sort by global node id (== (lane, creation index)) suffices;
        only the rare non-uniform step pays for the full lexsort.
        """
        if not len(L):
            return
        if self.kind == VECTOR_FIFO:
            if not ordered:
                if self._uniform_step:
                    order = np.argsort(nodes)
                else:
                    order = np.lexsort(
                        (self.local_idx[nodes], self.ready_time[nodes], L)
                    )
                L, nodes = L[order], nodes[order]
            firsts, counts = _group_sorted(L)
            single = len(firsts) == len(L)
            devices = self.assigned[nodes]
            if int(devices.max()) < 0:  # all host-bound (the common case)
                if single:
                    self.fq_node_flat[L * self.fq_width + self.fq_tail[L]] = nodes
                    self.fq_tail[L] += 1
                else:
                    occ = np.arange(len(L), dtype=np.int64) - np.repeat(
                        firsts, counts
                    )
                    self.fq_node_flat[
                        L * self.fq_width + self.fq_tail[L] + occ
                    ] = nodes
                    self.fq_tail[L[firsts]] += counts
                return
            host = devices < 0
            self._fifo_append(L[host], nodes[host])
            dev = ~host
            self._fifo_append_device(L[dev], devices[dev], nodes[dev])
            return
        order = np.lexsort((trig, L))
        L, nodes = L[order], nodes[order]
        firsts, counts = _group_sorted(L)
        uL = L[firsts]
        occ = np.arange(len(L), dtype=np.int64) - np.repeat(firsts, counts)
        stamps = np.repeat(self.arrival_count[uL], counts) + occ + 1
        self.arrival_count[uL] += counts
        stamps_f = stamps.astype(np.float64)
        if self.kind == VECTOR_STATIC:
            prim = self.rank_flat[nodes] * self._stamp_mult + stamps_f
        elif self.kind == VECTOR_LIFO:
            prim = -stamps_f
        else:  # VECTOR_RANDOM
            prim = (
                self.draw_rank_flat[self.draw_off[L] + stamps - 1]
                * self._stamp_mult
                + stamps_f
            )
        devices = self.assigned[nodes]
        host = devices < 0
        if host.all():
            self._insert_host(L, nodes, prim)
            return
        if host.any():
            self._insert_host(L[host], nodes[host], prim[host])
        dev = ~host
        self._insert_device(L[dev], devices[dev], nodes[dev], prim[dev])

    def _fifo_append(self, L: np.ndarray, nodes: np.ndarray) -> None:
        if not len(L):
            return
        firsts, counts = _group_sorted(L)
        uL = L[firsts]
        if len(firsts) == len(L):  # one arrival per lane
            pos = self.fq_tail[uL]
            self.fq_node_flat[L * self.fq_width + pos] = nodes
            self.fq_tail[uL] += 1
            return
        pos = np.repeat(self.fq_tail[uL], counts) + (
            np.arange(len(L), dtype=np.int64) - np.repeat(firsts, counts)
        )
        self.fq_node_flat[L * self.fq_width + pos] = nodes
        self.fq_tail[uL] += counts

    def _fifo_append_device(
        self, L: np.ndarray, devices: np.ndarray, nodes: np.ndarray
    ) -> None:
        ids = L * self.A + devices
        order = np.argsort(ids, kind="stable")
        ids, L, devices, nodes = ids[order], L[order], devices[order], nodes[order]
        firsts, counts = _group_sorted(ids)
        uid = ids[firsts]
        uL, uD = uid // self.A, uid % self.A
        pos = np.repeat(self.fqd_tail[uL, uD], counts) + (
            np.arange(len(L), dtype=np.int64) - np.repeat(firsts, counts)
        )
        self.fqd_node[L, devices, pos] = nodes
        self.fqd_tail[uL, uD] += counts
        self.dev_queued += len(L)

    # ------------------------------------------------------------------
    # Propagation of completions
    # ------------------------------------------------------------------
    def _propagate(self, rl: np.ndarray, g: np.ndarray, f: np.ndarray) -> None:
        """Expand completions ``(lane, node, finish)`` in processing order.

        The entries must already be sorted in the scalar engines' processing
        order per lane (``(finish, start sequence)``); the ``fifo`` family is
        insensitive to the order, the stamped families derive their arrival
        stamps from it.
        """
        e_start = self.succ_ptr[g]
        e_cnt = self.succ_cnt[g]
        total = int(e_cnt.sum())
        if total == 0:
            return
        eidx = _ragged_ranges(e_start, e_cnt)
        T = self.succ_idx[eidx]
        F = np.repeat(f, e_cnt)

        # Duplicate detection without a sort: scatter each edge's position
        # into a scratch vector -- a lost write means two edges share a
        # target.  Most steps are duplicate-free (a join node rarely sees
        # two predecessors retire in the same instant), and then the edge
        # list itself is the target grouping: positions are decisive edges,
        # per-target maxima are the edge finishes, and the lane-major edge
        # order doubles as the enqueue order.
        positions = np.arange(total, dtype=np.int64)
        self._scratch[T] = positions
        sorted_targets = False
        if bool((self._scratch[T] == positions).all()):
            uT = T
            tcounts = 1
            Fmax = F
            last_pos = positions
            newly = self.in_degree[T] == 1
        else:
            # Group the step's edges by target (stable sort: edge
            # processing positions stay ascending within each target group).
            ts = np.argsort(T, kind="stable")
            Tq = T[ts]
            tfirst, tcounts = _group_sorted(Tq)
            uT = Tq[tfirst]
            Fmax = np.maximum.reduceat(F[ts], tfirst)
            last_pos = ts[tfirst + tcounts - 1]  # decisive (last) edge position
            newly = self.in_degree[uT] == tcounts
            sorted_targets = True  # uT ascending == (lane, index) order

        if self.kind != VECTOR_FIFO:
            # A zero-WCET node becoming ready starts a cascade whose arrival
            # interleaving the batch update cannot replay; route the affected
            # lanes through the exact scalar fallback instead.
            bad = newly & self.instant[uT]
            if bad.any():
                if np.ndim(tcounts) == 0:  # scalar from the dup-free path
                    tcounts = np.ones(len(uT), dtype=np.int64)
                py_lanes = np.unique(self.lane_of[uT[bad]])
                py_mask = np.zeros(self.B, dtype=bool)
                py_mask[py_lanes] = True
                keep = ~py_mask[self.lane_of[uT]]
                uT, tcounts, Fmax = uT[keep], tcounts[keep], Fmax[keep]
                last_pos, newly = last_pos[keep], newly[keep]
                self._apply_updates(uT, tcounts, Fmax, last_pos, newly, sorted_targets)
                for lane in py_lanes:
                    mask = rl == lane
                    self._py_replay(int(lane), g[mask], f[mask])
                return
        self._apply_updates(uT, tcounts, Fmax, last_pos, newly, sorted_targets)

    def _apply_updates(
        self,
        uT: np.ndarray,
        tcounts: np.ndarray,
        Fmax: np.ndarray,
        last_pos: np.ndarray,
        newly: np.ndarray,
        sorted_targets: bool = False,
    ) -> None:
        if not len(uT):
            return
        self.ready_time[uT] = np.maximum(self.ready_time[uT], Fmax)
        self.in_degree[uT] -= tcounts
        newT = uT[newly]
        if not len(newT):
            return
        newL = self.lane_of[newT]
        if self.kind == VECTOR_FIFO:  # no arrival stamps: trig is unused
            inst = self.instant[newT]
            if inst.any():
                # Resolve the cascades first, then enqueue the union of the
                # direct and cascade arrivals in one batch (re-sorted by
                # the enqueue below: the concatenation interleaves lanes)
                # so the FIFO order stays globally consistent.
                waveL, waveT = self._instant_wave(newL[inst], newT[inst])
                keep = ~inst
                self._enqueue_newly(
                    np.concatenate((newL[keep], waveL)),
                    np.concatenate((newT[keep], waveT)),
                    None,
                    ordered=False,
                )
                return
            # Ascending-node targets on a uniform step are already in the
            # final queue order (per-lane ready times tie).
            self._enqueue_newly(
                newL,
                newT,
                None,
                ordered=self._single_step
                or (sorted_targets and self._uniform_step),
            )
            return
        self._enqueue_newly(newL, newT, last_pos[newly])

    def _instant_wave(
        self, L: np.ndarray, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve zero-WCET completions for ``fifo`` lanes (order-free).

        Returns the non-instant arrivals produced by the cascades instead of
        enqueueing them, so the caller can merge them with the step's direct
        arrivals before the batch sort.  ``nodes`` (and therefore ``L``)
        arrive in ascending global order, so grouping needs no sort.
        """
        outL: list[np.ndarray] = []
        outT: list[np.ndarray] = []
        while len(nodes):
            when = self.ready_time[nodes]
            firsts, counts = _group_sorted(L)
            uL = L[firsts]
            self.makespan[uL] = np.maximum(
                self.makespan[uL], np.maximum.reduceat(when, firsts)
            )
            self.remaining[uL] -= counts

            e_start = self.succ_ptr[nodes]
            e_cnt = self.succ_cnt[nodes]
            total = int(e_cnt.sum())
            if total == 0:
                break
            eidx = _ragged_ranges(e_start, e_cnt)
            T = self.succ_idx[eidx]
            F = np.repeat(when, e_cnt)
            ts = np.argsort(T, kind="stable")
            Tq = T[ts]
            tfirst, tcounts = _group_sorted(Tq)
            uT = Tq[tfirst]
            Fmax = np.maximum.reduceat(F[ts], tfirst)
            newly = self.in_degree[uT] == tcounts
            self.ready_time[uT] = np.maximum(self.ready_time[uT], Fmax)
            self.in_degree[uT] -= tcounts
            newT = uT[newly]
            if not len(newT):
                break
            newL = self.lane_of[newT]
            inst = self.instant[newT]
            if not inst.all():
                outL.append(newL[~inst])
                outT.append(newT[~inst])
            L, nodes = newL[inst], newT[inst]
        if outL:
            return np.concatenate(outL), np.concatenate(outT)
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Exact scalar fallback (stamped lanes with instant cascades)
    # ------------------------------------------------------------------
    def _py_replay(self, lane: int, g: np.ndarray, f: np.ndarray) -> None:
        """Replay one lane's completion processing exactly like the dense
        engine's retirement loop (successors in CSR order, FIFO instant
        cascades, arrival stamps at enqueue)."""
        for node, finish in zip(g.tolist(), f.tolist()):
            newly: list[int] = []
            for s in self.succ_idx[
                self.succ_ptr[node] : self.succ_ptr[node + 1]
            ].tolist():
                if finish > self.ready_time[s]:
                    self.ready_time[s] = finish
                self.in_degree[s] -= 1
                if self.in_degree[s] == 0:
                    newly.append(s)
            for s in newly:
                if self.wcet[s] != 0.0:
                    self._py_enqueue(lane, s)
                else:
                    self._py_cascade(lane, s)

    def _py_cascade(self, lane: int, node: int) -> None:
        """FIFO instant cascade, mirroring the dense engine's ``enqueue``."""
        pending: deque[int] = deque((node,))
        while pending:
            current = pending.popleft()
            if self.wcet[current] != 0.0:
                self._py_enqueue(lane, current)
                continue
            when = float(self.ready_time[current])
            if when > self.makespan[lane]:
                self.makespan[lane] = when
            self.remaining[lane] -= 1
            for s in self.succ_idx[
                self.succ_ptr[current] : self.succ_ptr[current + 1]
            ].tolist():
                if when > self.ready_time[s]:
                    self.ready_time[s] = when
                self.in_degree[s] -= 1
                if self.in_degree[s] == 0:
                    pending.append(s)

    def _py_enqueue(self, lane: int, node: int) -> None:
        """Scalar ready-pool insertion with arrival stamping."""
        self.arrival_count[lane] += 1
        stamp = int(self.arrival_count[lane])
        if self.kind == VECTOR_STATIC:
            prim = float(self.rank_flat[node]) * self._stamp_mult + stamp
        elif self.kind == VECTOR_LIFO:
            prim = float(-stamp)
        else:  # VECTOR_RANDOM
            prim = (
                float(self.draw_rank_flat[self.draw_off[lane] + stamp - 1])
                * self._stamp_mult
                + stamp
            )
        device = int(self.assigned[node])
        if device < 0:
            count = int(self.rp_count[lane])
            if count >= self.W:
                self._grow_host(count + 1)
            self.rp_key[lane, count] = prim
            self.rp_node[lane, count] = node
            self.rp_count[lane] = count + 1
        else:
            count = int(self.dp_count[lane, device])
            if count >= self.Wd:
                self._grow_device(count + 1)
            self.dp_key[lane, device, count] = prim
            self.dp_node[lane, device, count] = node
            self.dp_count[lane, device] = count + 1
            self.dev_queued += 1

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def _seed(self) -> None:
        # Seed arrivals all share ready time 0.0, so the uniform-step
        # fast ordering applies.
        self._uniform_step = True
        self._single_step = False
        sources = np.flatnonzero(self.in_degree == 0)
        if not len(sources):
            return
        L = self.lane_of[sources]
        if self.kind != VECTOR_FIFO:
            inst_lanes = np.unique(L[self.instant[sources]])
            if len(inst_lanes):
                py_mask = np.zeros(self.B, dtype=bool)
                py_mask[inst_lanes] = True
                keep = ~py_mask[L]
                self._enqueue_newly(
                    L[keep], sources[keep], self.local_idx[sources[keep]]
                )
                # Dense seeding order: sources by local index, each instant
                # source's cascade resolving before the next source.
                for lane in inst_lanes:
                    for s in sources[L == lane].tolist():
                        if self.wcet[s] != 0.0:
                            self._py_enqueue(int(lane), s)
                        else:
                            self._py_cascade(int(lane), s)
                return
            self._enqueue_newly(L, sources, self.local_idx[sources])
            return
        inst = self.instant[sources]
        if inst.any():
            waveL, waveT = self._instant_wave(L[inst], sources[inst])
            keep = ~inst
            self._enqueue_newly(
                np.concatenate((L[keep], waveL)),
                np.concatenate((sources[keep], waveT)),
                sources,
                ordered=False,
            )
            return
        self._enqueue_newly(L, sources, sources, ordered=True)

    # ------------------------------------------------------------------
    # Step phases
    # ------------------------------------------------------------------
    def _start_phase(self, cand: np.ndarray) -> None:
        """Start ready nodes on the candidate lanes.

        ``cand`` holds the only lanes whose start state can have changed
        since the previous phase: arrivals and freed resources both
        originate from a lane's own retirements, so the step loop passes
        the lanes that just retired (and, for the first phase, every lane).
        """
        if not len(cand):
            return
        if self.kind == VECTOR_FIFO:
            # Each lane starts its next min(free cores, queued) nodes; with
            # the FIFO queue those are one contiguous run per lane, so the
            # whole phase is a single ragged gather (no selection passes):
            # k nodes popped from the queue head, k slots popped from the
            # free-slot stack.
            k = np.minimum(
                self.free_cores[cand], self.fq_tail[cand] - self.fq_head[cand]
            )
            started = k > 0
            lanes = cand[started]
            if len(lanes):
                k = k[started]
                if int(k.max()) == 1:  # one start per lane (common)
                    nodes = self.fq_node_flat[
                        lanes * self.fq_width + self.fq_head[lanes]
                    ]
                    finish = self.lane_time[lanes] + self.wcet[nodes]
                    slots = self.fs_slot_flat[
                        lanes * self.S_host + self.fs_top[lanes] - 1
                    ]
                    flat = slots * self.B + lanes
                    self.slot_finish_flat[flat] = finish
                    self.slot_node_flat[flat] = nodes
                    self.fs_top[lanes] -= 1
                    self.fq_head[lanes] += 1
                    self.free_cores[lanes] -= 1
                else:
                    nodes = self.fq_node_flat[
                        _ragged_ranges(
                            lanes * self.fq_width + self.fq_head[lanes], k
                        )
                    ]
                    Lr = np.repeat(lanes, k)
                    finish = self.lane_time[Lr] + self.wcet[nodes]
                    slots = self.fs_slot_flat[
                        _ragged_ranges(
                            lanes * self.S_host + self.fs_top[lanes] - k, k
                        )
                    ]
                    flat = slots * self.B + Lr
                    self.slot_finish_flat[flat] = finish
                    self.slot_node_flat[flat] = nodes
                    self.fs_top[lanes] -= k
                    self.fq_head[lanes] += k
                    self.free_cores[lanes] -= k
            if self.dev_queued:
                for d in range(self.A):
                    can = self.device_free[cand, d] & (
                        self.fqd_tail[cand, d] > self.fqd_head[cand, d]
                    )
                    lanes = cand[can]
                    if not len(lanes):
                        continue
                    nodes = self.fqd_node[lanes, d, self.fqd_head[lanes, d]]
                    self.fqd_head[lanes, d] += 1
                    self.dev_queued -= len(lanes)
                    self._place_device(lanes, d, nodes, stamped=False)
            return
        can = (self.free_cores[cand] > 0) & (self.rp_count[cand] > 0)
        lanes = cand[can]
        while len(lanes):
            slots = self._select(self.rp_key, lanes)
            nodes = self.rp_node[lanes, slots]
            self._remove_host(lanes, slots)
            self._place_host(lanes, nodes, stamped=True)
            still = (self.free_cores[lanes] > 0) & (self.rp_count[lanes] > 0)
            lanes = lanes[still]
        if self.dev_queued:
            for d in range(self.A):
                can = self.device_free[cand, d] & (self.dp_count[cand, d] > 0)
                lanes = cand[can]
                if not len(lanes):
                    continue
                slots = self._select(self.dp_key[:, d, :], lanes)
                nodes = self.dp_node[lanes, d, slots]
                self._remove_device(lanes, d, slots)
                self._place_device(lanes, d, nodes, stamped=True)

    def _place_host(
        self, lanes: np.ndarray, nodes: np.ndarray, stamped: bool
    ) -> None:
        finish = self.lane_time[lanes] + self.wcet[nodes]
        top = self.fs_top[lanes] - 1
        free_slot = self.fs_slot_flat[lanes * self.S_host + top]
        self.fs_top[lanes] = top
        flat = free_slot * self.B + lanes
        self.slot_finish_flat[flat] = finish
        self.slot_node_flat[flat] = nodes
        if stamped:
            # The start sequence only matters as the retire-order tie-break
            # of the stamped families.
            self.start_count[lanes] += 1
            self.slot_seq_flat[flat] = self.start_count[lanes]
        self.free_cores[lanes] -= 1

    def _place_device(
        self, lanes: np.ndarray, d: int, nodes: np.ndarray, stamped: bool
    ) -> None:
        finish = self.lane_time[lanes] + self.wcet[nodes]
        flat = (self.S_host + d) * self.B + lanes
        self.slot_finish_flat[flat] = finish
        self.slot_node_flat[flat] = nodes
        if stamped:
            self.start_count[lanes] += 1
            self.slot_seq_flat[flat] = self.start_count[lanes]
        self.device_free[lanes, d] = False

    def _advance_and_retire(self, active: np.ndarray) -> np.ndarray:
        """Advance every active lane to its next completion instant.

        Returns the start candidates for the next phase: the lanes that
        retired work and still have nodes left.
        """
        b = self.b_act  # active lanes live in [0, b) (big lanes first)
        finishes = self.slot_finish[:, :b]
        next_f = np.min(finishes, axis=0, out=self._buf_next[:b])
        np.copyto(self.lane_time[:b], next_f)  # idle lanes' clock is never read
        threshold = np.add(next_f, 1e-12, out=self._buf_thr[:b])
        # Free slots hold +inf finishes, so the threshold test alone
        # selects exactly the running nodes that complete now.
        rmask = np.less_equal(
            finishes, threshold[None, :], out=self._buf_mask[:, :b]
        )
        rmask &= active[:b]
        # Lane-major scan of the transposed mask: rl comes out lane-sorted.
        rl, rs = np.nonzero(rmask.T)
        if not len(rl):
            raise SimulationError(
                "simulation deadlocked: nodes remain but nothing is "
                "running (is the graph connected and acyclic?)"
            )
        flat = rs * self.B + rl
        f = self.slot_finish_flat[flat]
        g = self.slot_node_flat[flat]
        if self.kind != VECTOR_FIFO:
            # Scalar processing order: running-heap pops, i.e. (finish,
            # seq) per lane.  The fifo family is insensitive to it (ready
            # times are max folds, no arrival stamps), so it skips the sort.
            order = np.lexsort((self.slot_seq_flat[flat], f, rl))
            rl, f, g = rl[order], f[order], g[order]
            rs, flat = rs[order], flat[order]

        firsts, counts = _group_sorted(rl)
        single = len(firsts) == len(rl)
        self._single_step = single
        # Uniform step: every completion at exactly its lane's next_finish
        # (always true for single retires; exact ties are the norm with
        # integer WCETs) -- same-lane arrivals then tie on ready time.
        self._uniform_step = single or bool((f == next_f[rl]).all())
        if len(firsts) != self.n_active:
            # Every active lane must retire at least one node per step (a
            # lane that cannot is deadlocked: nothing running, and the start
            # phase would have started anything startable).
            raise SimulationError(
                "simulation deadlocked: nodes remain but nothing is "
                "running (is the graph connected and acyclic?)"
            )
        # Plain overwrite of the makespan: finishes are monotone across
        # steps (every later retire exceeds this step's threshold), so the
        # last write per lane is its global maximum; only the
        # instant-cascade path needs a genuine running max.
        if self.A:
            host = rs < self.S_host
            all_host = bool(host.all())
        else:
            all_host = True
        if len(firsts) == len(rl):  # one retire per lane (the common case)
            uL = rl
            self.makespan[rl] = f
            self.remaining[rl] -= 1
            if all_host:
                self.free_cores[rl] += 1
                self.fs_slot_flat[rl * self.S_host + self.fs_top[rl]] = rs
                self.fs_top[rl] += 1
            else:
                hostl, rs_h = rl[host], rs[host]
                self.free_cores[hostl] += 1
                self.fs_slot_flat[hostl * self.S_host + self.fs_top[hostl]] = rs_h
                self.fs_top[hostl] += 1
        else:
            uL = rl[firsts]
            self.makespan[uL] = np.maximum.reduceat(f, firsts)
            self.remaining[uL] -= counts
            if all_host:
                occ = np.arange(len(rl), dtype=np.int64) - np.repeat(firsts, counts)
                pos = self.fs_top[rl] + occ
                self.fs_slot_flat[rl * self.S_host + pos] = rs
                self.free_cores[uL] += counts
                self.fs_top[uL] += counts
            else:
                hostl, rs_h = rl[host], rs[host]
                if len(hostl):
                    hfirsts, hcounts = _group_sorted(hostl)
                    occ = np.arange(len(hostl), dtype=np.int64) - np.repeat(
                        hfirsts, hcounts
                    )
                    pos = self.fs_top[hostl] + occ
                    self.fs_slot_flat[hostl * self.S_host + pos] = rs_h
                    uLh = hostl[hfirsts]
                    self.free_cores[uLh] += hcounts
                    self.fs_top[uLh] += hcounts
        if not all_host:
            dev = ~host
            self.device_free[rl[dev], rs[dev] - self.S_host] = True
        self.slot_finish_flat[flat] = _INF
        self.slot_node_flat[flat] = -1

        self._propagate(rl, g, f)

        # Lanes that just emptied leave the batch (the propagation must run
        # first: an instant cascade can retire a lane's final nodes); the
        # rest are the only candidates for the next start phase (arrivals
        # are intra-lane).
        left = self.remaining[uL]
        done = left == 0
        if done.any():
            finished = uL[done]
            active[finished] = False
            self.n_active -= len(finished)
            while self.b_act and not active[self.b_act - 1]:
                self.b_act -= 1
            return uL[~done]
        return uL

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> np.ndarray:
        self._seed()
        total_nodes = int(self.remaining.sum())
        active = self.remaining > 0
        self.n_active = int(active.sum())
        cand = np.nonzero(active)[0]
        self.b_act = int(cand[-1]) + 1 if len(cand) else 0
        steps = 0
        lane_steps = 0
        while self.n_active:
            steps += 1
            lane_steps += self.n_active
            self._start_phase(cand)
            cand = self._advance_and_retire(active)
        record_kernel_batch(
            "lockstep",
            lanes=self.B,
            steps=steps,
            events=total_nodes,
            lane_steps=lane_steps,
        )
        return self.makespan


def _prepare_lane(cell: VectorCell, kind: str, index: int) -> _Lane:
    task = cell.task
    platform = _as_platform(cell.platform)
    compiled = cell.compiled if cell.compiled is not None else compile_task(task)
    policy = cell.policy if cell.policy is not None else BreadthFirstPolicy()
    assignment = _device_assignment(
        task, platform, cell.offload_enabled, cell.device_assignment
    )
    n = len(compiled.nodes)
    assigned = np.full(n, -1, dtype=np.int64)
    for node, device in assignment.items():
        assigned[compiled.index[node]] = device
    lane = _Lane(
        compiled=compiled, platform=platform, assigned=assigned, out_index=index
    )
    if kind == VECTOR_STATIC:
        lane.static_keys = np.asarray(
            policy.vector_keys(compiled), dtype=np.float64
        )
    elif kind == VECTOR_RANDOM:
        # One draw per non-instant node (each is enqueued exactly once);
        # consuming them here, in cell order, preserves the stream semantics
        # of the scalar engines.
        lane.draws = policy.vector_draws(int(np.count_nonzero(compiled.wcet)))
    return lane


def simulate_column_vectorized(
    entries: Sequence[tuple[DagTask, Optional[CompiledTask]]],
    platforms: Sequence[Union[Platform, int]],
    policy: SchedulingPolicy,
    offload_enabled: bool = True,
    backend: str = "numpy",
) -> np.ndarray:
    """Makespans of a ``task x platform`` grid under one vectorisable policy.

    The batch-construction fast path of
    :func:`repro.simulation.batch.simulate_many`: per-task preparation (the
    compiled view, the device-assignment array, static priority keys) is
    done once and shared across the whole platform axis, instead of once
    per cell as the generic :class:`VectorCell` API does.  Lanes run in
    ``(task, platform)`` order, so a stateful :class:`RandomPolicy` consumes
    its stream exactly like the scalar engines' nested loops.  Returns an
    array of shape ``(len(entries), len(platforms))``.

    ``backend`` selects the kernel implementation per
    :func:`~repro.simulation.vectorized_compiled.resolve_backend`:
    ``"numpy"`` (default -- the lockstep batch below), ``"compiled"`` (the
    C step loop) or ``"auto"``.  All backends are bit-identical.
    """
    kind = policy_vector_kind(policy)
    if kind is None:
        raise ValueError(
            f"policy {type(policy).__name__!r} has no vector kind; "
            "simulate it with the dense engine instead"
        )
    backend = resolve_backend(backend)
    platform_list = [_as_platform(platform) for platform in platforms]
    if not platform_list:
        raise ValueError("simulate_column_vectorized needs at least one platform")
    lanes: list[_Lane] = []
    index = 0
    for task, compiled in entries:
        if compiled is None:
            compiled = compile_task(task)
        static = (
            np.asarray(policy.vector_keys(compiled), dtype=np.float64)
            if kind == VECTOR_STATIC
            else None
        )
        nonzero = (
            int(np.count_nonzero(compiled.wcet)) if kind == VECTOR_RANDOM else 0
        )
        # The resolved assignment does not depend on the platform, only its
        # validation does: resolve once, re-validate (and surface the exact
        # error) only for platforms that cannot satisfy it.
        assignment = _device_assignment(
            task, platform_list[0], offload_enabled, None
        )
        max_device = max(assignment.values(), default=-1)
        assigned = np.full(len(compiled.nodes), -1, dtype=np.int64)
        for node, device in assignment.items():
            assigned[compiled.index[node]] = device
        for platform in platform_list:
            if max_device >= platform.accelerators:
                _device_assignment(task, platform, offload_enabled, None)
            lane = _Lane(
                compiled=compiled,
                platform=platform,
                assigned=assigned,
                static_keys=static,
                out_index=index,
            )
            if kind == VECTOR_RANDOM:
                lane.draws = policy.vector_draws(nonzero)
            lanes.append(lane)
            index += 1
    if not lanes:
        return np.empty((0, len(platform_list)))
    if backend == "compiled":
        # Lanes already sit in (task, platform) order == the output order.
        return run_lanes_compiled(lanes, [kind] * len(lanes)).reshape(
            len(entries), len(platform_list)
        )
    batch = _LockstepBatch(kind, lanes)
    out = np.empty(len(lanes))
    # run() returns lane-internal order (the batch sorts big lanes first).
    out[[lane.out_index for lane in batch.lanes]] = batch.run()
    return out.reshape(len(entries), len(platform_list))


def simulate_makespans_vectorized(
    cells: Sequence[VectorCell], backend: str = "numpy"
) -> np.ndarray:
    """Makespans of many independent simulations, via the lockstep kernel.

    Cells are grouped by the priority family of their policy
    (:func:`~repro.simulation.schedulers.policy_vector_kind`) and each group
    runs as one lockstep batch; results come back in cell order.  Every
    makespan is bit-identical to ``simulate(...).makespan()`` for the same
    cell.  Raises :class:`ValueError` for policies without a vector kind
    (custom or subclassed policies -- use the dense engine for those).

    With ``backend="compiled"`` (or ``"auto"`` on a host with a C
    compiler) the cells run through the C step loop instead -- all
    families in one native call, no grouping needed.
    """
    cells = list(cells)
    backend = resolve_backend(backend)
    out = np.empty(len(cells), dtype=np.float64)
    if backend == "compiled":
        lanes: list[_Lane] = []
        kinds: list[str] = []
        for index, cell in enumerate(cells):
            policy = (
                cell.policy if cell.policy is not None else BreadthFirstPolicy()
            )
            kind = policy_vector_kind(policy)
            if kind is None:
                raise ValueError(
                    f"policy {type(policy).__name__!r} has no vector kind; "
                    "simulate it with the dense engine instead"
                )
            lanes.append(_prepare_lane(cell, kind, index))
            kinds.append(kind)
        if lanes:
            out[:] = run_lanes_compiled(lanes, kinds)
        return out
    groups: dict[str, list[_Lane]] = {}
    for index, cell in enumerate(cells):
        policy = cell.policy if cell.policy is not None else BreadthFirstPolicy()
        kind = policy_vector_kind(policy)
        if kind is None:
            raise ValueError(
                f"policy {type(policy).__name__!r} has no vector kind; "
                "simulate it with the dense engine instead"
            )
        groups.setdefault(kind, []).append(_prepare_lane(cell, kind, index))
    for kind, lanes in groups.items():
        batch = _LockstepBatch(kind, lanes)
        # run() returns lane-internal order (the batch sorts big lanes
        # first); out_index maps back to the caller's cell order.
        out[[lane.out_index for lane in batch.lanes]] = batch.run()
    return out


def simulate_makespan_lockstep(
    task: DagTask,
    platform: Union[Platform, int],
    policy: Optional[SchedulingPolicy] = None,
    offload_enabled: bool = True,
    device_assignment: Optional[Mapping[NodeId, int]] = None,
    *,
    compiled: Optional[CompiledTask] = None,
    backend: str = "numpy",
) -> float:
    """Single-cell convenience wrapper around the lockstep kernel.

    Same parameters and bit-identity contract as
    :func:`repro.simulation.dense.simulate_makespan_dense`; mainly useful
    for tests and for cross-checking the kernel one cell at a time (the
    kernel's value lies in batching -- use
    :func:`~repro.simulation.batch.simulate_many` for sweeps).
    """
    return float(
        simulate_makespans_vectorized(
            [
                VectorCell(
                    task=task,
                    platform=platform,
                    policy=policy,
                    offload_enabled=offload_enabled,
                    device_assignment=device_assignment,
                    compiled=compiled,
                )
            ],
            backend=backend,
        )[0]
    )
