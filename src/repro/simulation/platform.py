"""Description of the simulated heterogeneous platform.

The system model of the paper considers "a host processor with ``m``
identical cores and a single accelerator device".  :class:`Platform` captures
exactly that, with the accelerator count kept configurable because the
paper's future-work section (and :mod:`repro.extensions.multi_device`)
considers several devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import SimulationError

__all__ = ["Platform", "HOST", "ACCELERATOR", "INSTANT"]

#: Resource-kind label for host cores in execution traces.
HOST = "host"
#: Resource-kind label for accelerator devices in execution traces.
ACCELERATOR = "accelerator"
#: Resource-kind label for zero-WCET nodes, which occupy no resource.
INSTANT = "instant"


@dataclass(frozen=True)
class Platform:
    """A heterogeneous platform with ``host_cores`` cores and accelerators.

    Attributes
    ----------
    host_cores:
        Number ``m`` of identical host cores.
    accelerators:
        Number of accelerator devices; the paper's model uses exactly one.
    """

    host_cores: int
    accelerators: int = 1

    def __post_init__(self) -> None:
        if self.host_cores < 1:
            raise SimulationError(
                f"platform needs at least one host core, got {self.host_cores}"
            )
        if self.accelerators < 0:
            raise SimulationError(
                f"accelerator count cannot be negative, got {self.accelerators}"
            )

    @property
    def total_processors(self) -> int:
        """Host cores plus accelerator devices."""
        return self.host_cores + self.accelerators

    def host_core_names(self) -> list[str]:
        """Stable identifiers of the host cores (``core0``, ``core1``, ...)."""
        return [f"core{i}" for i in range(self.host_cores)]

    def accelerator_names(self) -> list[str]:
        """Stable identifiers of the accelerators (``acc0``, ...)."""
        return [f"acc{i}" for i in range(self.accelerators)]
