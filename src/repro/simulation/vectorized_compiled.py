"""Compiled-backend dispatch for the lockstep kernel's lanes.

This module is the bridge between the lane representation of
:mod:`repro.simulation.vectorized` (a list of ``_Lane`` records: compiled
task view, platform, device-assignment array, optional static keys /
pre-consumed draws) and the C step-loop kernel in
:mod:`repro.simulation._kernels`: it concatenates the lanes into the flat
global node space the kernel expects -- node offsets, WCETs, the globally
rebased CSR, initial in-degrees, device assignments, per-lane resources and
priority-family codes -- and runs them all in **one** native call (mixed
families are fine; the kernel switches per lane).

It deliberately imports nothing from ``vectorized`` so the dependency chain
stays a straight line (``vectorized`` -> here -> ``_kernels``); lanes are
duck-typed on the ``_Lane`` attributes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import _kernels
from .schedulers import VECTOR_RANDOM, VECTOR_STATIC

__all__ = ["BACKENDS", "resolve_backend", "run_lanes_compiled"]

#: Recognised lockstep-kernel backends.  ``auto`` resolves to ``compiled``
#: when the C kernel is available on this host and ``numpy`` otherwise.
BACKENDS = ("auto", "numpy", "compiled")


def resolve_backend(backend: str) -> str:
    """Resolve a backend name to the concrete one that will run.

    ``auto`` silently degrades to ``numpy`` when the compiled kernel cannot
    be built (no C compiler, or ``REPRO_COMPILED=0``); an *explicit*
    ``compiled`` request raises instead -- callers asking for the compiled
    backend by name want its absence to be loud.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if backend == "auto":
        return "compiled" if _kernels.compiled_available() else "numpy"
    if backend == "compiled" and not _kernels.compiled_available():
        raise RuntimeError(
            "compiled kernel backend unavailable: "
            f"{_kernels.compiled_unavailable_reason()}"
        )
    return backend


def run_lanes_compiled(lanes: Sequence, kinds: Sequence[str]) -> np.ndarray:
    """Makespans of ``lanes`` (parallel ``kinds`` list) via the C kernel.

    Returns the per-lane makespans in input order; bit-identical to the
    scalar engines and the numpy lockstep kernel by the contract of
    :mod:`repro.simulation._kernels`.
    """
    B = len(lanes)
    if B == 0:
        return np.empty(0, dtype=np.float64)
    ns = np.array([len(lane.compiled.nodes) for lane in lanes], dtype=np.int64)
    node_off = np.concatenate(([0], np.cumsum(ns)))
    N = int(node_off[-1])
    es = np.array(
        [len(lane.compiled.succ_idx) for lane in lanes], dtype=np.int64
    )
    edge_off = np.concatenate(([0], np.cumsum(es)))
    if N:
        wcet = np.concatenate([lane.compiled.wcet for lane in lanes]).astype(
            np.float64, copy=False
        )
        ptr = np.concatenate(
            [lane.compiled.succ_ptr_array[:-1] for lane in lanes]
            + [edge_off[-1:]]
        )
        ptr[:-1] += np.repeat(edge_off[:-1], ns)
        if edge_off[-1]:
            idx = np.concatenate(
                [lane.compiled.succ_idx_array for lane in lanes]
            )
            idx += np.repeat(node_off[:-1], es)
        else:
            idx = np.empty(0, dtype=np.int64)
        in_degree = np.concatenate(
            [lane.compiled.in_degree_array for lane in lanes]
        )
        assigned = np.concatenate([lane.assigned for lane in lanes])
    else:
        wcet = np.empty(0, dtype=np.float64)
        ptr = np.zeros(1, dtype=np.int64)
        idx = np.empty(0, dtype=np.int64)
        in_degree = np.empty(0, dtype=np.int64)
        assigned = np.empty(0, dtype=np.int64)

    static_key = np.zeros(N, dtype=np.float64)
    draw_off = np.zeros(B, dtype=np.int64)
    draw_parts: list[np.ndarray] = []
    total_draws = 0
    kind_codes = np.empty(B, dtype=np.int64)
    for i, (lane, kind) in enumerate(zip(lanes, kinds)):
        kind_codes[i] = _kernels.KIND_CODES[kind]
        draw_off[i] = total_draws
        if kind == VECTOR_STATIC:
            static_key[node_off[i] : node_off[i + 1]] = lane.static_keys
        elif kind == VECTOR_RANDOM:
            draws = np.asarray(lane.draws, dtype=np.float64)
            if len(draws):
                draw_parts.append(draws)
                total_draws += len(draws)
    draws_flat = (
        np.concatenate(draw_parts)
        if draw_parts
        else np.empty(0, dtype=np.float64)
    )
    host_cores = np.array(
        [lane.platform.host_cores for lane in lanes], dtype=np.int64
    )
    accelerators = np.array(
        [lane.platform.accelerators for lane in lanes], dtype=np.int64
    )
    return _kernels.run_lanes(
        node_off,
        wcet,
        ptr,
        idx,
        in_degree,
        assigned,
        static_key,
        draws_flat,
        draw_off,
        host_cores,
        accelerators,
        kind_codes,
    )
