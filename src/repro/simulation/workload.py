"""Online multi-instance workloads on one shared platform.

Everything below :mod:`repro.simulation.batch` evaluates a *single* DAG job
in isolation -- the static regime of the paper's schedulability analysis.
This module opens the dynamic regime: **streams** of job instances with
release times contend for one shared platform (``m`` host cores plus the
accelerator pool), and the metrics of interest become per-instance response
times, deadline-miss ratios and backlog trajectories rather than a single
makespan.

Model
-----
* A :class:`JobStream` couples a :class:`~repro.core.task.DagTask` with an
  arrival process (:mod:`repro.generator.arrivals`) and an optional relative
  deadline (defaulting to the task's own constrained deadline, then to its
  period).
* :func:`build_workload` unrolls streams over a horizon into a flat list of
  :class:`JobInstance` records ordered by ``(release, stream, index)``.
  Releases at or past the horizon are dropped.
* The simulator is the natural multi-instance extension of the single-job
  reference engine (:mod:`repro.simulation.engine`): every instance is a
  block of nodes in one *shared global node space*, and all instances feed
  one work-conserving scheduler over a **shared capacity pool** -- they
  contend for the same host cores and accelerator devices instead of
  simulating independently.

Event-loop specification (both engines implement it exactly)
------------------------------------------------------------
Each step advances time to the earliest pending event, then processes the
three phases in a fixed order:

1. **advance** ``t`` to ``min(earliest running finish, next release)``;
2. **retire** every running node with ``finish <= t + 1e-12`` in
   ``(finish, start sequence)`` order, freeing its resource and propagating
   its successors in CSR creation order (a successor becomes ready at its
   *decisive* -- last -- in-degree decrement); newly-ready zero-WCET nodes
   complete instantly through the FIFO cascade of the reference engine;
3. **release** every instance with ``release <= t + 1e-12`` (retirements
   first at coinciding instants), seeding its source nodes in creation
   order at ``ready = release``;
4. **start** ready nodes work-conservingly: host queue first while host
   cores are free, then each device queue in device order.

Ready-queue keys per policy family (``policy_vector_kind``): *fifo* orders
by ``(ready time, global node index)`` -- the global index extends the
single-job creation-order tie-break across instances (earlier release, then
earlier stream, goes first); *lifo* by ``(-arrival,)``; *static* by
``(per-node key, arrival)``; *random* by ``(seeded draw, arrival)``, where
arrival stamps count non-instant enqueues across the whole workload and the
draw pool is pre-drawn once (``Generator.random(k)`` consumes the bit
stream exactly like ``k`` scalar draws).

Engines
-------
:func:`simulate_workload_reference` is the scalar reference: a heap-based
Python event loop, deliberately written like
:func:`repro.simulation.engine.simulate` so a single-instance workload
released at 0 reproduces ``simulate_makespan`` bit for bit.

:func:`simulate_workload` is the coupled lockstep path: the numpy engine
advances the whole shared node space per step with grouped propagation and
vectorised selection, mirroring the idioms of the PR 4 lockstep kernel
(``backend="auto"`` serves it today; a compiled-C shared-platform mode is
an explicit follow-on and ``backend="compiled"`` says so).  Its results are
**bit-identical** to the reference -- the same cross-engine contract every
other layer of the repo obeys, enforced by the hypothesis harness in
``tests/test_workload.py``.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..core.compiled import compile_task
from ..core.exceptions import SimulationError
from ..core.task import DagTask
from ..generator.arrivals import ArrivalProcess
from .engine import _as_platform, _device_assignment
from .kernel_stats import record_kernel_batch
from .platform import Platform
from .schedulers import (
    VECTOR_FIFO,
    VECTOR_LIFO,
    VECTOR_RANDOM,
    VECTOR_STATIC,
    BreadthFirstPolicy,
    SchedulingPolicy,
    policy_vector_kind,
)

__all__ = [
    "JobInstance",
    "JobStream",
    "WorkloadResult",
    "build_workload",
    "resolve_workload_backend",
    "simulate_workload",
    "simulate_workload_reference",
]

#: Same completion-coincidence tolerance as every other engine in the repo.
_TIE = 1e-12

#: Backends of :func:`simulate_workload`.  ``auto`` resolves to ``numpy``
#: today; the compiled-C shared-platform mode is a documented follow-on.
WORKLOAD_BACKENDS = ("auto", "numpy", "reference")


# ----------------------------------------------------------------------
# Workload model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobInstance:
    """One released job: a task instance with an absolute release time."""

    task: DagTask
    release: float
    deadline: Optional[float] = None  # absolute; None = no deadline
    stream: int = 0
    index: int = 0


@dataclass(frozen=True)
class JobStream:
    """A stream of job instances of one task under an arrival process.

    ``deadline`` is *relative* (response-time budget per instance); when
    omitted it defaults to the task's constrained deadline, then to its
    period (the implicit-deadline model), then to "no deadline".
    """

    task: DagTask
    arrivals: ArrivalProcess
    deadline: Optional[float] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and not (
            math.isfinite(self.deadline) and self.deadline > 0
        ):
            raise ValueError(
                f"relative deadline must be finite and > 0, got {self.deadline}"
            )

    def relative_deadline(self) -> Optional[float]:
        """The effective relative deadline of every instance of the stream."""
        if self.deadline is not None:
            return float(self.deadline)
        if self.task.deadline is not None:
            return float(self.task.deadline)
        if self.task.period is not None:
            return float(self.task.period)
        return None

    def instances(
        self,
        horizon: float,
        stream: int = 0,
        jobs: Optional[int] = None,
    ) -> list[JobInstance]:
        """Unroll the stream over ``[0, horizon)`` (releases past it drop)."""
        relative = self.relative_deadline()
        return [
            JobInstance(
                task=self.task,
                release=float(release),
                deadline=None if relative is None else float(release) + relative,
                stream=stream,
                index=index,
            )
            for index, release in enumerate(
                self.arrivals.release_times(horizon, jobs=jobs)
            )
        ]


def build_workload(
    streams: Sequence[JobStream],
    horizon: float,
    jobs: Optional[int] = None,
) -> list[JobInstance]:
    """Flatten ``streams`` over ``[0, horizon)`` into simulation order.

    Instances are ordered by ``(release, stream, index)``; this order *is*
    the global node-space order of the simulators, so it also settles FIFO
    tie-breaking between instances released at the same instant (earlier
    stream first, then earlier instance).
    """
    instances = [
        instance
        for stream_index, stream in enumerate(streams)
        for instance in stream.instances(horizon, stream=stream_index, jobs=jobs)
    ]
    instances.sort(key=lambda job: (job.release, job.stream, job.index))
    return instances


# ----------------------------------------------------------------------
# Result container
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadResult:
    """Per-instance outcome of one workload simulation.

    All arrays are indexed by workload order (the order of
    :func:`build_workload`).  ``deadlines`` holds absolute deadlines with
    ``+inf`` for "no deadline"; a miss is ``completion > deadline`` with no
    tolerance -- deadlines are model inputs, not simulated floats.
    """

    releases: np.ndarray
    completions: np.ndarray
    deadlines: np.ndarray
    streams: np.ndarray
    indices: np.ndarray

    @property
    def count(self) -> int:
        return int(self.releases.size)

    @property
    def response_times(self) -> np.ndarray:
        return self.completions - self.releases

    @property
    def missed(self) -> np.ndarray:
        return self.completions > self.deadlines

    def miss_ratio(self) -> float:
        return float(self.missed.mean()) if self.count else 0.0

    def makespan(self) -> float:
        """Completion of the last instance (0 for an empty workload)."""
        return float(self.completions.max()) if self.count else 0.0

    def mean_response(self) -> float:
        return float(self.response_times.mean()) if self.count else 0.0

    def max_response(self) -> float:
        return float(self.response_times.max()) if self.count else 0.0

    def backlog(self) -> tuple[np.ndarray, np.ndarray]:
        """Backlog trajectory: (event times, instances in flight after each).

        The backlog at time ``t`` is the number of instances released at or
        before ``t`` that have not yet completed.  Completions tie-break
        releases at coinciding event times (the simulators retire before
        they release), so an instance handed over back-to-back contributes
        no spurious peak.
        """
        if not self.count:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        times = np.concatenate([self.releases, self.completions])
        deltas = np.concatenate(
            [
                np.ones(self.count, dtype=np.int64),
                -np.ones(self.count, dtype=np.int64),
            ]
        )
        # Stable sort with completions (the -1 deltas) first at equal times.
        order = np.lexsort((-deltas, times))
        times = times[order]
        levels = np.cumsum(deltas[order])
        # Collapse coinciding event times to the last (settled) level.
        keep = np.append(times[1:] > times[:-1], True)
        return times[keep], levels[keep]

    def peak_backlog(self) -> int:
        _, levels = self.backlog()
        return int(levels.max()) if levels.size else 0

    def summary(self) -> dict:
        """JSON-style aggregate view (the service payload's core)."""
        return {
            "instances": self.count,
            "makespan": self.makespan(),
            "miss_ratio": self.miss_ratio(),
            "mean_response": self.mean_response(),
            "max_response": self.max_response(),
            "peak_backlog": self.peak_backlog(),
        }


# ----------------------------------------------------------------------
# Shared problem preparation (input canonicalisation, no scheduling logic)
# ----------------------------------------------------------------------
class _WorkloadProblem:
    """The concatenated global node space of one workload.

    Pure data: per-instance compiled CSRs stitched together with global
    offsets (the lockstep kernel's layout with one lane group), the shared
    platform's capacity, per-node device targets, the policy's key family
    and -- for the stochastic family -- the pre-drawn priority pool.  Both
    engines consume this and nothing else, so their agreement is about the
    event loops, not about input parsing.
    """

    def __init__(
        self,
        workload: Sequence[JobInstance],
        platform: Union[Platform, int],
        policy: Optional[SchedulingPolicy],
        offload_enabled: bool,
    ) -> None:
        self.platform = _as_platform(platform)
        self.policy = policy if policy is not None else BreadthFirstPolicy()
        kind = policy_vector_kind(self.policy)
        if kind is None:
            raise SimulationError(
                f"workload simulation requires a vectorisable built-in "
                f"policy; {type(self.policy).__name__} has no vector kind"
            )
        self.kind = kind
        self.instances = list(workload)
        self.cores = self.platform.host_cores
        self.devices = self.platform.accelerators

        compiled = [compile_task(job.task) for job in self.instances]
        counts = np.array([c.node_count for c in compiled], dtype=np.int64)
        self.node_off = np.zeros(len(compiled) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.node_off[1:])
        total = int(self.node_off[-1])
        self.total_nodes = total

        self.wcet = np.empty(total, dtype=np.float64)
        self.device = np.full(total, -1, dtype=np.int64)
        self.in_degree0 = np.empty(total, dtype=np.int64)
        succ_parts: list[np.ndarray] = []
        ptr_parts: list[np.ndarray] = []
        static_parts: list[np.ndarray] = []
        edge_base = 0
        for job, view, base in zip(
            self.instances, compiled, self.node_off[:-1]
        ):
            n = view.node_count
            base = int(base)
            self.wcet[base : base + n] = view.wcet
            self.in_degree0[base : base + n] = view.in_degree_array
            assignment = _device_assignment(
                job.task, self.platform, offload_enabled, None
            )
            for node, dev in assignment.items():
                self.device[base + view.index[node]] = dev
            succ_parts.append(view.succ_idx_array + base)
            ptr_parts.append(view.succ_ptr_array[:-1] + edge_base)
            edge_base += int(view.succ_ptr_array[-1])
            if kind == VECTOR_STATIC:
                static_parts.append(
                    np.asarray(self.policy.vector_keys(view), dtype=np.float64)
                )
        self.succ_idx = (
            np.concatenate(succ_parts) if succ_parts else np.empty(0, np.int64)
        )
        self.succ_ptr = np.empty(total + 1, dtype=np.int64)
        if ptr_parts:
            self.succ_ptr[:-1] = np.concatenate(ptr_parts)
        self.succ_ptr[-1] = edge_base
        self.instant = self.wcet == 0.0
        # Whole-problem fast-path flags: most workloads have no instant
        # nodes and many are host-only, which lets the coupled engine skip
        # the cascade guards and the per-device pool plumbing per step.
        self.has_instant = bool(self.instant.any())
        self.all_host = not bool((self.device >= 0).any())
        self.static_keys = (
            np.concatenate(static_parts)
            if static_parts
            else np.empty(0, np.float64)
        )
        # One draw per non-instant node, assigned in arrival-stamp order --
        # identical to per-arrival scalar draws (see vector_draws).
        if kind == VECTOR_RANDOM:
            self.draw_pool = self.policy.vector_draws(
                int(np.count_nonzero(self.wcet))
            )
        else:
            self.draw_pool = np.empty(0, dtype=np.float64)

        self.releases = np.array(
            [job.release for job in self.instances], dtype=np.float64
        )
        if np.any(self.releases[1:] < self.releases[:-1]):
            raise SimulationError(
                "workload instances must be ordered by release time; "
                "use build_workload()"
            )
        self.deadlines = np.array(
            [
                math.inf if job.deadline is None else float(job.deadline)
                for job in self.instances
            ],
            dtype=np.float64,
        )
        # Per-instance source nodes (in-degree 0), in global node order.
        self.sources = np.flatnonzero(self.in_degree0 == 0)

    def result(self, finish: np.ndarray) -> WorkloadResult:
        """Fold per-node finish times into the per-instance result."""
        count = len(self.instances)
        if count:
            completions = np.maximum.reduceat(finish, self.node_off[:-1])
        else:
            completions = np.empty(0, dtype=np.float64)
        return WorkloadResult(
            releases=self.releases.copy(),
            completions=completions,
            deadlines=self.deadlines.copy(),
            streams=np.array(
                [job.stream for job in self.instances], dtype=np.int64
            ),
            indices=np.array(
                [job.index for job in self.instances], dtype=np.int64
            ),
        )


# ----------------------------------------------------------------------
# Scalar reference engine
# ----------------------------------------------------------------------
def _reference_finish_times(problem: _WorkloadProblem) -> np.ndarray:
    """Heap-based scalar event loop over the shared global node space."""
    kind = problem.kind
    wcet = problem.wcet
    succ_ptr, succ_idx = problem.succ_ptr, problem.succ_idx
    device = problem.device
    static_keys = problem.static_keys
    draw_pool = problem.draw_pool
    releases = problem.releases
    node_off = problem.node_off

    total = problem.total_nodes
    in_degree = problem.in_degree0.copy()
    ready_time = np.zeros(total, dtype=np.float64)
    finish_time = np.zeros(total, dtype=np.float64)
    remaining = total

    free_cores = problem.cores
    device_free = [True] * problem.devices
    ready_host: list[tuple] = []
    ready_device: list[list[tuple]] = [[] for _ in range(problem.devices)]
    running: list[tuple] = []  # (finish, start_seq, node, device or -1)

    arrival = 0
    start_seq = 0

    def key_of(node: int, ready: float, stamp: int) -> tuple:
        if kind == VECTOR_FIFO:
            return (ready, node)
        if kind == VECTOR_LIFO:
            return (-stamp,)
        if kind == VECTOR_STATIC:
            return (static_keys[node], stamp)
        return (draw_pool[stamp - 1], stamp)

    def enqueue(node: int, when: float) -> None:
        """Queue one newly-ready node, resolving instant cascades FIFO."""
        nonlocal arrival, remaining
        pending = deque(((node, when),))
        while pending:
            current, at = pending.popleft()
            if wcet[current] == 0.0:
                finish_time[current] = at
                remaining -= 1
                newly: list[tuple[int, float]] = []
                for s in succ_idx[succ_ptr[current] : succ_ptr[current + 1]]:
                    if at > ready_time[s]:
                        ready_time[s] = at
                    in_degree[s] -= 1
                    if in_degree[s] == 0:
                        newly.append((s, ready_time[s]))
                pending.extend(newly)
                continue
            arrival += 1
            entry = (key_of(current, at, arrival), current, at)
            if device[current] >= 0:
                heapq.heappush(ready_device[device[current]], entry)
            else:
                heapq.heappush(ready_host, entry)

    def start_ready(now: float) -> None:
        nonlocal free_cores, start_seq
        while free_cores > 0 and ready_host:
            _, node, _ = heapq.heappop(ready_host)
            free_cores -= 1
            start_seq += 1
            heapq.heappush(running, (now + wcet[node], start_seq, node, -1))
        for dev in range(problem.devices):
            queue = ready_device[dev]
            while device_free[dev] and queue:
                _, node, _ = heapq.heappop(queue)
                device_free[dev] = False
                start_seq += 1
                heapq.heappush(running, (now + wcet[node], start_seq, node, dev))

    release_ptr = 0
    instance_count = len(problem.instances)
    steps = 0
    while remaining > 0:
        steps += 1
        next_finish = running[0][0] if running else math.inf
        next_release = (
            releases[release_ptr] if release_ptr < instance_count else math.inf
        )
        now = min(next_finish, next_release)
        if math.isinf(now):
            raise SimulationError(
                "workload simulation deadlocked: nodes remain but nothing "
                "is running and no release is pending"
            )
        # Retire phase: (finish, start-sequence) order, like the heap of the
        # single-job reference engine.
        while running and running[0][0] <= now + _TIE:
            fin, _, node, dev = heapq.heappop(running)
            finish_time[node] = fin
            remaining -= 1
            if dev < 0:
                free_cores += 1
            else:
                device_free[dev] = True
            newly = []
            for s in succ_idx[succ_ptr[node] : succ_ptr[node + 1]]:
                if fin > ready_time[s]:
                    ready_time[s] = fin
                in_degree[s] -= 1
                if in_degree[s] == 0:
                    newly.append((s, ready_time[s]))
            for ready_node, when in newly:
                enqueue(ready_node, when)
        # Release phase (after retirements at coinciding instants): seed
        # each instance's sources in creation order at ready = release.
        while (
            release_ptr < instance_count
            and releases[release_ptr] <= now + _TIE
        ):
            base, stop = node_off[release_ptr], node_off[release_ptr + 1]
            release = releases[release_ptr]
            for node in range(base, stop):
                if problem.in_degree0[node] == 0:
                    ready_time[node] = release
                    enqueue(int(node), float(release))
            release_ptr += 1
        start_ready(now)

    record_kernel_batch(
        "workload.reference",
        lanes=1,
        steps=steps,
        events=total,
        lane_steps=steps,
    )
    return finish_time


# ----------------------------------------------------------------------
# Coupled numpy engine
# ----------------------------------------------------------------------
class _CoupledEngine:
    """Vectorised event loop over the shared node space.

    One lockstep "lane group": grouped successor propagation with
    decisive-edge readiness per step, batched release seeding and lexsort
    selection over the shared capacity pool.  Steps whose newly-ready set
    contains an instant node fall back -- for the *stamped* families only,
    FIFO keys are insensitive to cascade interleaving -- to a scalar replay
    of that step, executed from the still-uncommitted state so the stamp
    interleaving matches the reference exactly.
    """

    def __init__(self, problem: _WorkloadProblem) -> None:
        p = problem
        self.p = p
        self.kind = p.kind
        self.in_degree = p.in_degree0.copy()
        self.ready_time = np.zeros(p.total_nodes, dtype=np.float64)
        self.finish_time = np.zeros(p.total_nodes, dtype=np.float64)
        self.remaining = p.total_nodes
        self.arrival = 0
        self.start_seq = 0

        slots = p.cores + p.devices
        self.slot_finish = np.full(slots, math.inf, dtype=np.float64)
        self.slot_node = np.full(slots, -1, dtype=np.int64)
        self.slot_seq = np.zeros(slots, dtype=np.int64)
        self.free_host = list(range(p.cores - 1, -1, -1))

        # Ready pools: parallel arrays (node, primary key, secondary key).
        # Selection lexsorts (secondary within primary), which realises the
        # exact tuple order of the reference heaps for every key family.
        self.host_pool: list[np.ndarray] = [
            np.empty(0, np.int64),
            np.empty(0, np.float64),
            np.empty(0, np.float64),
        ]
        self.device_pools = [
            [
                np.empty(0, np.int64),
                np.empty(0, np.float64),
                np.empty(0, np.float64),
            ]
            for _ in range(p.devices)
        ]

    # -- pool plumbing -------------------------------------------------
    def _keys_for(self, nodes: np.ndarray, stamps: np.ndarray) -> tuple:
        p = self.p
        if self.kind == VECTOR_FIFO:
            return self.ready_time[nodes], nodes.astype(np.float64)
        if self.kind == VECTOR_LIFO:
            return -stamps.astype(np.float64), np.zeros(len(nodes))
        if self.kind == VECTOR_STATIC:
            return p.static_keys[nodes], stamps.astype(np.float64)
        return p.draw_pool[stamps - 1], stamps.astype(np.float64)

    def _push(self, nodes: np.ndarray) -> None:
        """Append non-instant ready nodes to their pools, stamping arrivals.

        ``nodes`` must already be in the enqueue order of the reference
        engine for this phase (decisive-edge order for retirements, global
        node order for releases) -- the stamps are assigned along it.
        """
        if not len(nodes):
            return
        stamps = self.arrival + 1 + np.arange(len(nodes), dtype=np.int64)
        self.arrival += len(nodes)
        prim, sec = self._keys_for(nodes, stamps)
        if self.p.all_host:
            pool = self.host_pool
            pool[0] = np.concatenate([pool[0], nodes])
            pool[1] = np.concatenate([pool[1], prim])
            pool[2] = np.concatenate([pool[2], sec])
            return
        on_device = self.p.device[nodes]
        for dev in (-1, *range(self.p.devices)):
            mask = on_device == dev
            if not np.any(mask):
                continue
            pool = self.host_pool if dev < 0 else self.device_pools[dev]
            pool[0] = np.concatenate([pool[0], nodes[mask]])
            pool[1] = np.concatenate([pool[1], prim[mask]])
            pool[2] = np.concatenate([pool[2], sec[mask]])

    def _take(self, pool: list[np.ndarray], count: int) -> np.ndarray:
        """Remove and return the ``count`` smallest-key nodes of ``pool``."""
        size = len(pool[0])
        if size == 0 or count <= 0:
            return np.empty(0, dtype=np.int64)
        order = np.lexsort((pool[2], pool[1]))
        take = order[: min(count, size)]
        nodes = pool[0][take]
        keep = np.ones(size, dtype=bool)
        keep[take] = False
        pool[0], pool[1], pool[2] = pool[0][keep], pool[1][keep], pool[2][keep]
        return nodes

    # -- event-loop phases ---------------------------------------------
    def _scalar_enqueue(self, node: int, when: float) -> None:
        """Reference-identical enqueue-with-cascade for fallback steps."""
        p = self.p
        pending = deque(((node, when),))
        while pending:
            current, at = pending.popleft()
            if p.wcet[current] == 0.0:
                self.finish_time[current] = at
                self.remaining -= 1
                newly = []
                for s in p.succ_idx[
                    p.succ_ptr[current] : p.succ_ptr[current + 1]
                ]:
                    if at > self.ready_time[s]:
                        self.ready_time[s] = at
                    self.in_degree[s] -= 1
                    if self.in_degree[s] == 0:
                        newly.append((int(s), self.ready_time[s]))
                pending.extend(newly)
                continue
            node_arr = np.array([current], dtype=np.int64)
            self._push(node_arr)

    def _propagate_batch(self, nodes: np.ndarray, fins: np.ndarray) -> None:
        """Grouped propagation of retired ``nodes`` (in retirement order).

        Computes the newly-ready set read-only first; if a stamped family
        would cascade (an instant node among the newly ready), the whole
        step is replayed scalar so stamp interleaving matches the
        reference.  Otherwise updates commit vectorised and stamps follow
        decisive-edge order.
        """
        p = self.p
        starts = p.succ_ptr[nodes]
        counts = p.succ_ptr[nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return
        # Ragged gather of every (edge target, source finish) in retirement-
        # major CSR order -- the enqueue order of the reference engine.
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)
        targets = p.succ_idx[flat]
        fsrc = np.repeat(fins, counts)

        order = np.argsort(targets, kind="stable")
        tsorted = targets[order]
        boundary = np.ones(len(tsorted), dtype=bool)
        boundary[1:] = tsorted[1:] != tsorted[:-1]
        group_start = np.flatnonzero(boundary)
        uniq = tsorted[group_start]
        group_counts = np.diff(np.append(group_start, len(tsorted)))
        newly_mask = self.in_degree[uniq] == group_counts
        newly = uniq[newly_mask]

        if (
            p.has_instant
            and self.kind != VECTOR_FIFO
            and len(newly)
            and np.any(p.instant[newly])
        ):
            # Stamped family + instant cascade: replay the retirements
            # scalar from the uncommitted state (reference semantics).
            for node, fin in zip(nodes.tolist(), fins.tolist()):
                step_newly = []
                for s in p.succ_idx[p.succ_ptr[node] : p.succ_ptr[node + 1]]:
                    if fin > self.ready_time[s]:
                        self.ready_time[s] = fin
                    self.in_degree[s] -= 1
                    if self.in_degree[s] == 0:
                        step_newly.append((int(s), self.ready_time[s]))
                for ready_node, when in step_newly:
                    self._scalar_enqueue(ready_node, when)
            return

        # Commit: ready-time maxima and in-degree decrements are order-free.
        fmax = np.maximum.reduceat(fsrc[order], group_start)
        np.maximum.at(self.ready_time, uniq, fmax)
        np.subtract.at(self.in_degree, uniq, group_counts)
        if not len(newly):
            return
        # Decisive-edge order: a node becomes ready at its *last* incoming
        # edge of the step; sort newly nodes by that edge's flat position.
        last_index = np.append(group_start[1:], len(tsorted)) - 1
        last_pos = order[last_index]
        newly_order = np.argsort(last_pos[newly_mask], kind="stable")
        newly = newly[newly_order]
        if self.kind == VECTOR_FIFO:
            self._fifo_wave(newly)
        else:
            self._push(newly)

    def _fifo_wave(self, newly: np.ndarray) -> None:
        """Resolve instant nodes breadth-wise (FIFO keys are cascade-
        insensitive: readiness maxima and in-degree countdowns are
        order-free, and the (ready, index) key carries no stamp)."""
        p = self.p
        if not p.has_instant:
            self._push(newly)
            return
        while len(newly):
            instant = newly[p.instant[newly]]
            self._push(newly[~p.instant[newly]])
            if not len(instant):
                return
            self.finish_time[instant] = self.ready_time[instant]
            self.remaining -= len(instant)
            starts = p.succ_ptr[instant]
            counts = p.succ_ptr[instant + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return
            offsets = np.repeat(np.cumsum(counts) - counts, counts)
            flat = (
                np.arange(total, dtype=np.int64)
                - offsets
                + np.repeat(starts, counts)
            )
            targets = p.succ_idx[flat]
            fsrc = np.repeat(self.ready_time[instant], counts)
            order = np.argsort(targets, kind="stable")
            tsorted = targets[order]
            boundary = np.ones(len(tsorted), dtype=bool)
            boundary[1:] = tsorted[1:] != tsorted[:-1]
            group_start = np.flatnonzero(boundary)
            uniq = tsorted[group_start]
            group_counts = np.diff(np.append(group_start, len(tsorted)))
            fmax = np.maximum.reduceat(fsrc[order], group_start)
            np.maximum.at(self.ready_time, uniq, fmax)
            np.subtract.at(self.in_degree, uniq, group_counts)
            newly = uniq[self.in_degree[uniq] == 0]

    def _release_batch(self, first: int, stop: int) -> None:
        """Seed the sources of instances ``first:stop`` (workload order)."""
        p = self.p
        lo, hi = p.node_off[first], p.node_off[stop]
        sources = p.sources[
            np.searchsorted(p.sources, lo) : np.searchsorted(p.sources, hi)
        ]
        # Each source's ready time is its own instance's release.
        instance_of = np.searchsorted(p.node_off[1:], sources, side="right")
        self.ready_time[sources] = p.releases[instance_of]
        if (
            p.has_instant
            and self.kind != VECTOR_FIFO
            and np.any(p.instant[sources])
        ):
            # Instant sources cascade; stamped families replay the seeding
            # scalar (instance order, then creation order -- which is
            # exactly the global node order ``sources`` already has).
            for node in sources.tolist():
                self._scalar_enqueue(int(node), float(self.ready_time[node]))
            return
        if self.kind == VECTOR_FIFO:
            self._fifo_wave(sources)
        else:
            self._push(sources)

    def _start_ready(self, now: float) -> None:
        p = self.p
        if self.free_host and len(self.host_pool[0]):
            nodes = self._take(self.host_pool, len(self.free_host))
            count = len(nodes)
            if count:
                # Slots are claimed in stack-pop order and sequence numbers
                # in selection order -- exactly the scalar start loop.
                slots = np.array(
                    self.free_host[: -count - 1 : -1], dtype=np.int64
                )
                del self.free_host[-count:]
                self.slot_finish[slots] = now + p.wcet[nodes]
                self.slot_node[slots] = nodes
                self.slot_seq[slots] = self.start_seq + 1 + np.arange(count)
                self.start_seq += count
        if p.all_host:
            return
        for dev in range(p.devices):
            slot = p.cores + dev
            if math.isinf(self.slot_finish[slot]) and len(
                self.device_pools[dev][0]
            ):
                node = int(self._take(self.device_pools[dev], 1)[0])
                self.start_seq += 1
                self.slot_finish[slot] = now + p.wcet[node]
                self.slot_node[slot] = node
                self.slot_seq[slot] = self.start_seq

    def run(self) -> np.ndarray:
        p = self.p
        release_ptr = 0
        instance_count = len(p.instances)
        steps = 0
        retire_width = 0
        while self.remaining > 0:
            steps += 1
            next_finish = float(self.slot_finish.min()) if len(
                self.slot_finish
            ) else math.inf
            next_release = (
                p.releases[release_ptr]
                if release_ptr < instance_count
                else math.inf
            )
            now = min(next_finish, next_release)
            if math.isinf(now):
                raise SimulationError(
                    "workload simulation deadlocked: nodes remain but "
                    "nothing is running and no release is pending"
                )
            done = np.flatnonzero(self.slot_finish <= now + _TIE)
            retire_width += len(done)
            if len(done):
                order = np.lexsort(
                    (self.slot_seq[done], self.slot_finish[done])
                )
                done = done[order]
                nodes = self.slot_node[done]
                fins = self.slot_finish[done].copy()
                self.finish_time[nodes] = fins
                self.remaining -= len(nodes)
                for slot in done.tolist():
                    if slot < p.cores:
                        self.free_host.append(slot)
                self.slot_finish[done] = math.inf
                self.slot_node[done] = -1
                self._propagate_batch(nodes, fins)
            stop = release_ptr
            while (
                stop < instance_count and p.releases[stop] <= now + _TIE
            ):
                stop += 1
            if stop > release_ptr:
                self._release_batch(release_ptr, stop)
                release_ptr = stop
            self._start_ready(now)
        # lane_steps carries the summed retire-batch widths: occupancy is
        # the mean batch width over the in-flight slot capacity.
        record_kernel_batch(
            "workload.numpy",
            lanes=max(len(self.slot_finish), 1),
            steps=steps,
            events=p.total_nodes,
            lane_steps=retire_width,
        )
        return self.finish_time


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def resolve_workload_backend(backend: str = "auto") -> str:
    """Concrete backend ``simulate_workload`` will use for ``backend``.

    ``auto`` resolves to the coupled numpy engine.  A compiled-C
    shared-platform mode (one pool across a lane group inside the PR 8 C
    step loop) is a documented follow-on; requesting ``compiled``
    explicitly says so instead of silently downgrading.
    """
    if backend == "auto":
        return "numpy"
    if backend == "compiled":
        raise SimulationError(
            "the compiled backend has no shared-platform (multi-instance) "
            "mode yet -- it simulates independent lanes only; use "
            "backend='auto' (numpy coupled engine) for workloads"
        )
    if backend not in WORKLOAD_BACKENDS:
        valid = ", ".join(WORKLOAD_BACKENDS)
        raise ValueError(
            f"unknown workload backend {backend!r}; valid backends: {valid}"
        )
    return backend


def simulate_workload_reference(
    workload: Sequence[JobInstance],
    platform: Union[Platform, int],
    policy: Optional[SchedulingPolicy] = None,
    offload_enabled: bool = True,
) -> WorkloadResult:
    """Scalar reference simulation of a multi-instance workload.

    The validation anchor of the coupled engine: a heap-based Python event
    loop implementing the module's event-loop specification verbatim.  A
    single-instance workload released at 0 reproduces
    :func:`~repro.simulation.engine.simulate_makespan` bit for bit.
    """
    problem = _WorkloadProblem(workload, platform, policy, offload_enabled)
    return problem.result(_reference_finish_times(problem))


def simulate_workload(
    workload: Sequence[JobInstance],
    platform: Union[Platform, int],
    policy: Optional[SchedulingPolicy] = None,
    offload_enabled: bool = True,
    backend: str = "auto",
) -> WorkloadResult:
    """Simulate a workload of released job instances on one shared platform.

    All instances contend for the same ``m`` host cores and accelerator
    devices under one work-conserving scheduler; the result carries
    per-instance completion times and the derived response-time /
    deadline-miss / backlog metrics.  Bit-identical to
    :func:`simulate_workload_reference` for every backend (the repo-wide
    cross-engine contract; hypothesis-enforced).
    """
    resolved = resolve_workload_backend(backend)
    problem = _WorkloadProblem(workload, platform, policy, offload_enabled)
    if resolved == "reference":
        return problem.result(_reference_finish_times(problem))
    return problem.result(_CoupledEngine(problem).run())
