"""Work-conserving ready-queue ordering policies.

The simulator is a list scheduler: whenever a host core (or the accelerator)
is free and at least one compatible node is ready, a node is started
immediately -- this is what makes every policy *work-conserving*, the only
assumption required by both Equation 1 and Theorem 1.  Policies only decide
the *order* in which ready nodes are picked.

The paper's Section 5.2 simulates "the work-conserving breadth-first
scheduler implemented in GOMP, the OpenMP implementation in GCC":
:class:`BreadthFirstPolicy` reproduces it (a FIFO ready queue -- tasks are
executed in the order in which they became ready, ties broken by node
creation order, which corresponds to the order in which an OpenMP program
creates the tasks).  Alternative policies are provided for the scheduler
ablation study (``benchmarks/bench_ablation_scheduler.py``).
"""

from __future__ import annotations

import abc
import copy
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.graph import DirectedAcyclicGraph, NodeId

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..core.compiled import CompiledTask

__all__ = [
    "SchedulingPolicy",
    "BreadthFirstPolicy",
    "DepthFirstPolicy",
    "CriticalPathFirstPolicy",
    "ShortestFirstPolicy",
    "LongestFirstPolicy",
    "RandomPolicy",
    "FixedPriorityPolicy",
    "policy_by_name",
    "policy_supports_dense",
    "policy_vector_kind",
    "VECTOR_FIFO",
    "VECTOR_LIFO",
    "VECTOR_STATIC",
    "VECTOR_RANDOM",
]

#: Vector-kind labels of the lockstep kernel's priority families (see
#: :func:`policy_vector_kind`).
VECTOR_FIFO = "fifo"  # key (ready_time, creation index): BreadthFirstPolicy
VECTOR_LIFO = "lifo"  # key (-arrival,): DepthFirstPolicy
VECTOR_STATIC = "static"  # key (static per-node value, arrival)
VECTOR_RANDOM = "random"  # key (seeded draw per arrival, arrival)


class SchedulingPolicy(abc.ABC):
    """Interface of a ready-queue ordering policy.

    The trace-producing simulator calls :meth:`prepare` once per simulation
    with the graph being scheduled, then :meth:`priority` for every node when
    it becomes ready.  Nodes with *smaller* priority tuples are started
    first.

    The dense fast path (:mod:`repro.simulation.dense`) uses the *dense
    protocol* instead: :meth:`prepare_dense` once per simulation with the
    :class:`~repro.core.compiled.CompiledTask` view, then
    :meth:`dense_priority` with integer node indices.  The protocol is
    opt-in: dense-native policies override both methods (vectorised
    per-index keys, no ``NodeId`` hashing) and declare it via
    :attr:`supports_dense`; every other policy -- including custom
    subclasses that override only the object-keyed pair -- is adapted by
    the dense engine internally (it calls :meth:`prepare` and routes
    :meth:`priority` through the index->node table), so custom policies
    keep working unmodified.  A dense override must return priority keys
    numerically equal to :meth:`priority` -- the dense engine is required
    to be bit-identical to the reference engine.
    """

    #: Human-readable policy name used in traces and experiment reports.
    name: str = "policy"

    #: ``True`` when :meth:`prepare_dense`/:meth:`dense_priority` are native
    #: (index-based) overrides; the dense engine then skips :meth:`prepare`.
    #: Inherited by subclasses -- the dense engine therefore consults
    #: :func:`policy_supports_dense`, which additionally rejects subclasses
    #: whose object-keyed ``priority()``/``prepare()`` override is *newer*
    #: than the inherited dense implementation (a stale dense pair would
    #: silently ignore the override).
    supports_dense: bool = False

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        """Pre-compute per-graph data (called once before the simulation)."""

    @abc.abstractmethod
    def priority(
        self, node: NodeId, ready_time: float, arrival_index: int
    ) -> tuple:
        """Return the sort key of a node that just became ready.

        Parameters
        ----------
        node:
            The ready node.
        ready_time:
            Time at which its last predecessor completed.
        arrival_index:
            Monotonically increasing counter of ready-queue insertions; using
            it as a final tie-breaker makes every policy deterministic.
        """

    def prepare_dense(self, compiled: "CompiledTask") -> None:
        """Pre-compute per-index data for the dense engine.

        Only called for dense-native policies (those passing
        :func:`policy_supports_dense`); object-keyed policies never reach
        this hook -- the dense engine adapts their
        :meth:`prepare`/:meth:`priority` pair internally.  Overrides must be
        paired with a :meth:`dense_priority` override.
        """

    def dense_priority(
        self, index: int, ready_time: float, arrival_index: int
    ) -> tuple:
        """Sort key of the ready node with dense index ``index``.

        Only called for dense-native policies; must return keys numerically
        equal to :meth:`priority` for the same node.
        """
        raise NotImplementedError(
            f"{type(self).__name__} sets supports_dense but does not "
            "implement the dense protocol"
        )

    def vector_keys(self, compiled: "CompiledTask") -> np.ndarray:
        """Per-node primary priority values for the lockstep kernel.

        Only meaningful for policies of the ``static`` vector kind (see
        :func:`policy_vector_kind`): the returned ``float64`` array holds,
        for every dense index, the first component of the policy's priority
        tuple -- numerically identical to what :meth:`dense_priority` (and
        therefore :meth:`priority`) would return, with the arrival index as
        the tie-breaker.  The array may share storage with the compiled
        view and must not be mutated.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not provide static vector keys"
        )

    def spawned(self, seed: int) -> "SchedulingPolicy":
        """An independent instance of this policy for one parallel work chunk.

        Deterministic policies return a plain deep copy, which is
        indistinguishable from sharing the instance.  Stochastic policies
        must override this and reseed from ``seed`` (derived via
        :func:`repro.parallel.spawn_seeds`) so that chunks draw independent
        random streams regardless of execution order.
        """
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class BreadthFirstPolicy(SchedulingPolicy):
    """FIFO ready queue: the GOMP-style breadth-first scheduler of the paper.

    Nodes are executed in the order in which they became ready; among nodes
    that become ready simultaneously, the node created first (smaller
    insertion index in the DAG) goes first.
    """

    name = "breadth-first"
    supports_dense = True

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        self._creation_order = {node: index for index, node in enumerate(graph.nodes())}

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (ready_time, self._creation_order.get(node, 0), arrival_index)

    def prepare_dense(self, compiled: "CompiledTask") -> None:
        """Nothing to prepare: dense indices *are* creation ranks."""

    def dense_priority(
        self, index: int, ready_time: float, arrival_index: int
    ) -> tuple:
        return (ready_time, index, arrival_index)


class DepthFirstPolicy(SchedulingPolicy):
    """LIFO ready queue: most recently readied node first.

    This approximates the behaviour of depth-first (work-first) OpenMP
    runtimes; it is the natural counterpart of the breadth-first policy for
    the scheduler ablation.
    """

    name = "depth-first"
    supports_dense = True

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (-arrival_index,)

    def prepare_dense(self, compiled: "CompiledTask") -> None:
        """Stateless: the key only depends on the arrival index."""

    def dense_priority(
        self, index: int, ready_time: float, arrival_index: int
    ) -> tuple:
        return (-arrival_index,)


class CriticalPathFirstPolicy(SchedulingPolicy):
    """Largest bottom-level first (classical HLFET list scheduling).

    The bottom level of a node is the length of the longest path from the
    node (inclusive) to the sink; prioritising large bottom levels keeps the
    critical path moving and is a common makespan-oriented heuristic.
    """

    name = "critical-path-first"
    supports_dense = True

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        self._bottom_level = graph.longest_tail_lengths()

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (-self._bottom_level.get(node, 0.0), arrival_index)

    def prepare_dense(self, compiled: "CompiledTask") -> None:
        # Memoised on the (immutable) compiled view: batch drivers prepare
        # the same task once per (platform, policy) grid cell.
        if getattr(self, "_dense_for", None) is compiled:
            return
        # Same recurrence as DirectedAcyclicGraph.longest_tail_lengths(),
        # evaluated over the compiled arrays (numerically identical values).
        wcet = compiled.wcet_list
        succ_ptr, succ_idx = compiled.succ_ptr, compiled.succ_idx
        tail = [0.0] * len(wcet)
        for i in reversed(compiled.topo):
            longest = 0.0
            for s in succ_idx[succ_ptr[i] : succ_ptr[i + 1]]:
                if tail[s] > longest:
                    longest = tail[s]
            tail[i] = longest + wcet[i]
        self._dense_tail = tail
        self._dense_for = compiled

    def dense_priority(
        self, index: int, ready_time: float, arrival_index: int
    ) -> tuple:
        return (-self._dense_tail[index], arrival_index)

    def vector_keys(self, compiled: "CompiledTask") -> np.ndarray:
        self.prepare_dense(compiled)
        return -np.asarray(self._dense_tail, dtype=np.float64)


class ShortestFirstPolicy(SchedulingPolicy):
    """Smallest WCET first (SJF-like, tends to increase the makespan)."""

    name = "shortest-first"
    supports_dense = True

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        self._wcet = graph.wcets()

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (self._wcet.get(node, 0.0), arrival_index)

    def prepare_dense(self, compiled: "CompiledTask") -> None:
        self._dense_wcet = compiled.wcet_list

    def dense_priority(
        self, index: int, ready_time: float, arrival_index: int
    ) -> tuple:
        return (self._dense_wcet[index], arrival_index)

    def vector_keys(self, compiled: "CompiledTask") -> np.ndarray:
        return compiled.wcet


class LongestFirstPolicy(SchedulingPolicy):
    """Largest WCET first (LPT-like)."""

    name = "longest-first"
    supports_dense = True

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        self._wcet = graph.wcets()

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (-self._wcet.get(node, 0.0), arrival_index)

    def prepare_dense(self, compiled: "CompiledTask") -> None:
        self._dense_wcet = compiled.wcet_list

    def dense_priority(
        self, index: int, ready_time: float, arrival_index: int
    ) -> tuple:
        return (-self._dense_wcet[index], arrival_index)

    def vector_keys(self, compiled: "CompiledTask") -> np.ndarray:
        return -compiled.wcet


class RandomPolicy(SchedulingPolicy):
    """Uniformly random ready-queue order (seeded, hence reproducible).

    Useful for estimating the spread of work-conserving schedules and for the
    randomised worst-case search of
    :mod:`repro.simulation.worst_case`.
    """

    name = "random"
    supports_dense = True

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._rng = np.random.default_rng(rng)

    def spawned(self, seed: int) -> "RandomPolicy":
        """Reseeded copy: parallel chunks must not replay the same stream."""
        return RandomPolicy(seed)

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (float(self._rng.random()), arrival_index)

    def prepare_dense(self, compiled: "CompiledTask") -> None:
        """Stateless per graph; the RNG stream carries across simulations."""

    def dense_priority(
        self, index: int, ready_time: float, arrival_index: int
    ) -> tuple:
        # One draw per ready-queue insertion, exactly like priority(): the
        # dense engine enqueues in the same order as the reference engine,
        # so both consume the identical stream.
        return (float(self._rng.random()), arrival_index)

    def vector_draws(self, count: int) -> np.ndarray:
        """Consume ``count`` draws from the policy's stream as one array.

        ``Generator.random(count)`` consumes the underlying bit stream
        exactly like ``count`` successive scalar ``random()`` calls, so the
        lockstep kernel can pre-draw one simulation's priority values (one
        per non-instant node, assigned in arrival order) and stay
        bit-identical to the per-arrival draws of the other engines.
        """
        return self._rng.random(count)


class FixedPriorityPolicy(SchedulingPolicy):
    """Explicit per-node priorities (smaller value = higher priority).

    The exhaustive worst-case search enumerates permutations of node
    priorities through this policy.
    """

    name = "fixed-priority"
    supports_dense = True

    def __init__(self, priorities: Optional[dict[NodeId, float]] = None) -> None:
        self._priorities = dict(priorities) if priorities is not None else {}

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (self._priorities.get(node, float("inf")), arrival_index)

    def prepare_dense(self, compiled: "CompiledTask") -> None:
        if getattr(self, "_dense_for", None) is compiled:
            return
        missing = float("inf")
        get = self._priorities.get
        self._dense_priorities = [get(node, missing) for node in compiled.nodes]
        self._dense_for = compiled

    def dense_priority(
        self, index: int, ready_time: float, arrival_index: int
    ) -> tuple:
        return (self._dense_priorities[index], arrival_index)

    def vector_keys(self, compiled: "CompiledTask") -> np.ndarray:
        self.prepare_dense(compiled)
        return np.asarray(self._dense_priorities, dtype=np.float64)


def _providing_class(cls: type, name: str) -> type:
    """The class in ``cls``'s MRO whose ``__dict__`` defines ``name``."""
    for klass in cls.__mro__:
        if name in klass.__dict__:
            return klass
    return SchedulingPolicy


def policy_supports_dense(policy: SchedulingPolicy) -> bool:
    """``True`` when the dense engine may use the policy's dense protocol.

    Requires :attr:`SchedulingPolicy.supports_dense` *and* that neither
    object-keyed method is overridden below the class providing its dense
    counterpart: a subclass of a built-in policy that overrides only
    ``priority()`` (or only ``prepare()``) would otherwise inherit a stale
    dense implementation and the dense engine would silently ignore the
    override.  Such policies fall back to the object-keyed path, which the
    dense engine adapts internally -- bit-identity is preserved either way.
    """
    if not policy.supports_dense:
        return False
    cls = type(policy)
    for object_name, dense_name in (
        ("prepare", "prepare_dense"),
        ("priority", "dense_priority"),
    ):
        object_provider = _providing_class(cls, object_name)
        dense_provider = _providing_class(cls, dense_name)
        if dense_provider is not object_provider and issubclass(
            object_provider, dense_provider
        ):
            return False
    return True


#: Exact-type map of the built-in policies onto the lockstep kernel's
#: priority families.  Keyed by concrete class on purpose: a subclass may
#: override ``priority()``/``prepare()`` in ways the kernel cannot see, so
#: anything that is not literally one of the seven built-ins falls back to
#: the dense (or object-keyed) engine -- mirroring the conservative rule of
#: :func:`policy_supports_dense`.
_VECTOR_KINDS: dict[type, str] = {
    BreadthFirstPolicy: VECTOR_FIFO,
    DepthFirstPolicy: VECTOR_LIFO,
    CriticalPathFirstPolicy: VECTOR_STATIC,
    ShortestFirstPolicy: VECTOR_STATIC,
    LongestFirstPolicy: VECTOR_STATIC,
    RandomPolicy: VECTOR_RANDOM,
    FixedPriorityPolicy: VECTOR_STATIC,
}


def policy_vector_kind(policy: SchedulingPolicy) -> Optional[str]:
    """Vector-kind label of ``policy`` for the lockstep kernel, or ``None``.

    ``None`` means the vectorised engine must not simulate this policy (a
    custom or subclassed policy whose behaviour is only defined by its
    object-keyed methods); callers fall back to the dense engine, which
    adapts any policy and is bit-identical by contract.  The four families:

    * :data:`VECTOR_FIFO` -- priority ``(ready time, creation index)``
      (:class:`BreadthFirstPolicy`); needs no arrival bookkeeping because
      the key pair is already unique per lane.
    * :data:`VECTOR_LIFO` -- priority ``(-arrival,)``
      (:class:`DepthFirstPolicy`).
    * :data:`VECTOR_STATIC` -- priority ``(static per-node value, arrival)``
      with the per-node values from :meth:`SchedulingPolicy.vector_keys`.
    * :data:`VECTOR_RANDOM` -- priority ``(seeded draw, arrival)`` with the
      draws pre-consumed via :meth:`RandomPolicy.vector_draws`.
    """
    return _VECTOR_KINDS.get(type(policy))


_POLICIES: dict[str, type[SchedulingPolicy]] = {
    BreadthFirstPolicy.name: BreadthFirstPolicy,
    DepthFirstPolicy.name: DepthFirstPolicy,
    CriticalPathFirstPolicy.name: CriticalPathFirstPolicy,
    ShortestFirstPolicy.name: ShortestFirstPolicy,
    LongestFirstPolicy.name: LongestFirstPolicy,
    RandomPolicy.name: RandomPolicy,
    FixedPriorityPolicy.name: FixedPriorityPolicy,
}


def policy_by_name(name: str, rng: Optional[int] = None) -> SchedulingPolicy:
    """Instantiate a policy from its short name.

    Valid names: ``breadth-first``, ``depth-first``, ``critical-path-first``,
    ``shortest-first``, ``longest-first``, ``random``, ``fixed-priority``.
    A ``fixed-priority`` policy built this way starts with an empty priority
    table (every node ties at ``+inf`` and the arrival index decides, i.e.
    ready-queue FIFO); the scheduler-ablation CLI uses it as a baseline, and
    programmatic callers pass an explicit table to the constructor instead.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        valid = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown policy {name!r}; valid policies: {valid}") from None
    if cls is RandomPolicy:
        return RandomPolicy(rng)
    return cls()
