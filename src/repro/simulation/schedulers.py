"""Work-conserving ready-queue ordering policies.

The simulator is a list scheduler: whenever a host core (or the accelerator)
is free and at least one compatible node is ready, a node is started
immediately -- this is what makes every policy *work-conserving*, the only
assumption required by both Equation 1 and Theorem 1.  Policies only decide
the *order* in which ready nodes are picked.

The paper's Section 5.2 simulates "the work-conserving breadth-first
scheduler implemented in GOMP, the OpenMP implementation in GCC":
:class:`BreadthFirstPolicy` reproduces it (a FIFO ready queue -- tasks are
executed in the order in which they became ready, ties broken by node
creation order, which corresponds to the order in which an OpenMP program
creates the tasks).  Alternative policies are provided for the scheduler
ablation study (``benchmarks/bench_ablation_scheduler.py``).
"""

from __future__ import annotations

import abc
import copy
from typing import Optional

import numpy as np

from ..core.graph import DirectedAcyclicGraph, NodeId

__all__ = [
    "SchedulingPolicy",
    "BreadthFirstPolicy",
    "DepthFirstPolicy",
    "CriticalPathFirstPolicy",
    "ShortestFirstPolicy",
    "LongestFirstPolicy",
    "RandomPolicy",
    "FixedPriorityPolicy",
    "policy_by_name",
]


class SchedulingPolicy(abc.ABC):
    """Interface of a ready-queue ordering policy.

    The simulator calls :meth:`prepare` once per simulation with the graph
    being scheduled, then :meth:`priority` for every node when it becomes
    ready.  Nodes with *smaller* priority tuples are started first.
    """

    #: Human-readable policy name used in traces and experiment reports.
    name: str = "policy"

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        """Pre-compute per-graph data (called once before the simulation)."""

    @abc.abstractmethod
    def priority(
        self, node: NodeId, ready_time: float, arrival_index: int
    ) -> tuple:
        """Return the sort key of a node that just became ready.

        Parameters
        ----------
        node:
            The ready node.
        ready_time:
            Time at which its last predecessor completed.
        arrival_index:
            Monotonically increasing counter of ready-queue insertions; using
            it as a final tie-breaker makes every policy deterministic.
        """

    def spawned(self, seed: int) -> "SchedulingPolicy":
        """An independent instance of this policy for one parallel work chunk.

        Deterministic policies return a plain deep copy, which is
        indistinguishable from sharing the instance.  Stochastic policies
        must override this and reseed from ``seed`` (derived via
        :func:`repro.parallel.spawn_seeds`) so that chunks draw independent
        random streams regardless of execution order.
        """
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class BreadthFirstPolicy(SchedulingPolicy):
    """FIFO ready queue: the GOMP-style breadth-first scheduler of the paper.

    Nodes are executed in the order in which they became ready; among nodes
    that become ready simultaneously, the node created first (smaller
    insertion index in the DAG) goes first.
    """

    name = "breadth-first"

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        self._creation_order = {node: index for index, node in enumerate(graph.nodes())}

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (ready_time, self._creation_order.get(node, 0), arrival_index)


class DepthFirstPolicy(SchedulingPolicy):
    """LIFO ready queue: most recently readied node first.

    This approximates the behaviour of depth-first (work-first) OpenMP
    runtimes; it is the natural counterpart of the breadth-first policy for
    the scheduler ablation.
    """

    name = "depth-first"

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (-arrival_index,)


class CriticalPathFirstPolicy(SchedulingPolicy):
    """Largest bottom-level first (classical HLFET list scheduling).

    The bottom level of a node is the length of the longest path from the
    node (inclusive) to the sink; prioritising large bottom levels keeps the
    critical path moving and is a common makespan-oriented heuristic.
    """

    name = "critical-path-first"

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        self._bottom_level = graph.longest_tail_lengths()

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (-self._bottom_level.get(node, 0.0), arrival_index)


class ShortestFirstPolicy(SchedulingPolicy):
    """Smallest WCET first (SJF-like, tends to increase the makespan)."""

    name = "shortest-first"

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        self._wcet = graph.wcets()

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (self._wcet.get(node, 0.0), arrival_index)


class LongestFirstPolicy(SchedulingPolicy):
    """Largest WCET first (LPT-like)."""

    name = "longest-first"

    def prepare(self, graph: DirectedAcyclicGraph) -> None:
        self._wcet = graph.wcets()

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (-self._wcet.get(node, 0.0), arrival_index)


class RandomPolicy(SchedulingPolicy):
    """Uniformly random ready-queue order (seeded, hence reproducible).

    Useful for estimating the spread of work-conserving schedules and for the
    randomised worst-case search of
    :mod:`repro.simulation.worst_case`.
    """

    name = "random"

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._rng = np.random.default_rng(rng)

    def spawned(self, seed: int) -> "RandomPolicy":
        """Reseeded copy: parallel chunks must not replay the same stream."""
        return RandomPolicy(seed)

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (float(self._rng.random()), arrival_index)


class FixedPriorityPolicy(SchedulingPolicy):
    """Explicit per-node priorities (smaller value = higher priority).

    The exhaustive worst-case search enumerates permutations of node
    priorities through this policy.
    """

    name = "fixed-priority"

    def __init__(self, priorities: dict[NodeId, float]) -> None:
        self._priorities = dict(priorities)

    def priority(self, node: NodeId, ready_time: float, arrival_index: int) -> tuple:
        return (self._priorities.get(node, float("inf")), arrival_index)


_POLICIES: dict[str, type[SchedulingPolicy]] = {
    BreadthFirstPolicy.name: BreadthFirstPolicy,
    DepthFirstPolicy.name: DepthFirstPolicy,
    CriticalPathFirstPolicy.name: CriticalPathFirstPolicy,
    ShortestFirstPolicy.name: ShortestFirstPolicy,
    LongestFirstPolicy.name: LongestFirstPolicy,
    RandomPolicy.name: RandomPolicy,
}


def policy_by_name(name: str, rng: Optional[int] = None) -> SchedulingPolicy:
    """Instantiate a policy from its short name.

    Valid names: ``breadth-first``, ``depth-first``, ``critical-path-first``,
    ``shortest-first``, ``longest-first``, ``random``.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        valid = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown policy {name!r}; valid policies: {valid}") from None
    if cls is RandomPolicy:
        return RandomPolicy(rng)
    return cls()
