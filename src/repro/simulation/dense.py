"""Trace-free dense-index simulation core (the PR 3 fast path).

The reference engine (:mod:`repro.simulation.engine`) dispatches on hashed
``NodeId`` objects: per-simulation in-degree/ready-time dictionaries, heap
entries keyed on node objects, one :class:`~repro.simulation.trace.NodeExecution`
dataclass per node.  For the figure 6/8/9 sweeps -- thousands of simulations
over the same task ensembles -- that object churn dominates wall time.

This module re-implements the *exact same scheduling semantics* purely on
the integer dense indices of the task's compiled view
(:class:`~repro.core.compiled.CompiledTask`):

* in-degree countdown and ready times live in preallocated Python lists
  indexed by dense index;
* ready queues and the running set hold small integer tuples -- no node
  hashing, no ``NodeExecution`` objects, no trace assembly;
* successor order is the precompiled CSR order (creation order -- dense
  indices are insertion ranks), computed once per *task* instead of one
  ``repr`` sort per completed node per simulation;
* zero-WCET ("instant") nodes resolve through a :class:`collections.deque`;
* policies are consulted through the dense protocol
  (:meth:`~repro.simulation.schedulers.SchedulingPolicy.prepare_dense` /
  ``dense_priority``), with a shim keeping object-keyed custom policies
  working.

Bit-identity contract
---------------------
:func:`simulate_makespan_dense` must return **exactly** the makespan of
``simulate(...).makespan()`` for every task, platform, policy, device
assignment and ``offload_enabled`` flag -- the property suite in
``tests/test_dense_engine.py`` enforces this across random DAGs and all
registered policies.  The loop below therefore mirrors the reference
engine's event structure statement for statement (same enqueue order, same
arrival-counter stream, same tie-breaking, same floating-point operations);
any change here must be mirrored there and vice versa.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Mapping, Optional, Union

from ..core.compiled import CompiledTask, compile_task
from ..core.exceptions import SimulationError
from ..core.graph import NodeId
from ..core.task import DagTask
from .engine import _as_platform, _device_assignment
from .platform import Platform
from .schedulers import (
    BreadthFirstPolicy,
    SchedulingPolicy,
    policy_supports_dense,
)

__all__ = ["simulate_makespan_dense"]


def simulate_makespan_dense(
    task: DagTask,
    platform: Union[Platform, int],
    policy: Optional[SchedulingPolicy] = None,
    offload_enabled: bool = True,
    device_assignment: Optional[Mapping[NodeId, int]] = None,
    *,
    compiled: Optional[CompiledTask] = None,
) -> float:
    """Makespan of one simulated execution, without building a trace.

    Same semantics and parameters as :func:`repro.simulation.engine.simulate`
    (see there), plus ``compiled``: the task's pre-compiled dense view, so
    batch drivers can compile once and reuse it across every platform /
    policy / variant cell.  When omitted the cached view is compiled on the
    fly (a dictionary lookup for an unmutated task).

    Returns
    -------
    float
        The simulated makespan, bit-identical to the reference engine's
        ``simulate(...).makespan()``.
    """
    platform = _as_platform(platform)
    policy = policy if policy is not None else BreadthFirstPolicy()
    if compiled is None:
        compiled = compile_task(task)  # raises CycleError on cyclic graphs
    if policy_supports_dense(policy):
        policy.prepare_dense(compiled)
        dense_priority = policy.dense_priority
    else:
        # Object-keyed policy (or a subclass whose priority()/prepare()
        # override outdates an inherited dense implementation): run the
        # object-keyed pair through an index adapter, which is bit-identical
        # by construction.
        policy.prepare(task.graph)
        nodes = compiled.nodes
        object_priority = policy.priority

        def dense_priority(i: int, ready: float, arrival: int) -> tuple:
            return object_priority(nodes[i], ready, arrival)

    assignment = _device_assignment(task, platform, offload_enabled, device_assignment)
    index = compiled.index

    n = len(compiled.nodes)
    if n == 0:
        return 0.0

    # Per-index device assignment (-1 = host), replacing the reference
    # engine's per-arrival dictionary membership test.
    assigned = [-1] * n
    for node, device in assignment.items():
        assigned[index[node]] = device

    wcet = compiled.wcet_list
    succ_ptr = compiled.succ_ptr
    succ_idx = compiled.succ_idx
    in_degree = list(compiled.in_degree)
    ready_time = [0.0] * n
    remaining = n

    free_cores = platform.host_cores
    device_count = platform.accelerators
    device_free = [True] * device_count

    # Ready queues are heaps of (priority tuple, arrival index, dense index);
    # the arrival index is unique, so comparisons never reach the node index.
    ready_host: list[tuple[tuple, int, int]] = []
    ready_device: list[list[tuple[tuple, int, int]]] = [
        [] for _ in range(device_count)
    ]
    # Running heap: (finish time, start sequence, dense index, device or -1).
    running: list[tuple[float, int, int, int]] = []

    arrival_counter = 0
    start_counter = 0
    makespan = 0.0
    heappush = heapq.heappush
    heappop = heapq.heappop

    # The GOMP-style breadth-first policy is the paper's scheduler and the
    # default of every sweep driver.  Its priority key (ready time, index,
    # arrival) is already a unique, totally ordered heap entry, so the loop
    # pushes it flat -- one tuple per arrival instead of a nested
    # (key, arrival, index) entry plus a method call -- and reads the node
    # index from slot 1 instead of slot 2.  The total order is unchanged:
    # the generic entry's tie-breakers are never reached (keys are unique).
    flat_breadth_first = type(policy) is BreadthFirstPolicy
    node_slot = 1 if flat_breadth_first else 2

    # Ready nodes are always enqueued at their ready time, so the propagation
    # path passes bare indices and reads ready_time[] at the point of use
    # (the value is final once the in-degree hits zero: every predecessor has
    # retired).  The completion scan visits successors in CSR (creation)
    # order and runs to completion before any newly ready node is enqueued;
    # the reference engine does the same, and the relative order feeds the
    # arrival counter that policies use for tie-breaking.  The scan and the
    # non-instant push are inlined in the retirement loop -- the hottest code
    # of the sweep drivers.

    def enqueue(i: int) -> None:
        """Add a ready index to the right queue, resolving instant nodes.

        FIFO cascade identical to the reference engine's pending queue; the
        retirement loop below inlines the same logic.
        """
        nonlocal arrival_counter, remaining, makespan
        pending: deque[int] = deque((i,))
        while pending:
            current = pending.popleft()
            if wcet[current] != 0.0:
                arrival_counter += 1
                if flat_breadth_first:
                    entry = (ready_time[current], current, arrival_counter)
                else:
                    entry = (
                        dense_priority(current, ready_time[current], arrival_counter),
                        arrival_counter,
                        current,
                    )
                device = assigned[current]
                if device < 0:
                    heappush(ready_host, entry)
                else:
                    heappush(ready_device[device], entry)
                continue
            when = ready_time[current]
            if when > makespan:
                makespan = when
            remaining -= 1
            # Appending mid-scan preserves the reference order: nothing else
            # touches `pending` until the scan of `current` completes.
            for s in succ_idx[succ_ptr[current] : succ_ptr[current + 1]]:
                if when > ready_time[s]:
                    ready_time[s] = when
                in_degree[s] -= 1
                if in_degree[s] == 0:
                    pending.append(s)

    # Seed with the source indices, snapshotted before any instant-node
    # cascade mutates the in-degree array (same rationale as the reference
    # engine's source snapshot).  Source ready times are the initial 0.0.
    for i in [i for i in range(n) if in_degree[i] == 0]:
        enqueue(i)

    current_time = 0.0
    while remaining > 0:
        # Start nodes while compatible resources are free (work conserving).
        while free_cores and ready_host:
            i = heappop(ready_host)[node_slot]
            free_cores -= 1
            start_counter += 1
            heappush(running, (current_time + wcet[i], start_counter, i, -1))
        for device in range(device_count):
            queue = ready_device[device]
            while device_free[device] and queue:
                i = heappop(queue)[node_slot]
                device_free[device] = False
                start_counter += 1
                heappush(
                    running, (current_time + wcet[i], start_counter, i, device)
                )
        if remaining == 0:
            break
        if not running:
            raise SimulationError(
                "simulation deadlocked: nodes remain but nothing is running "
                "(is the graph connected and acyclic?)"
            )

        # Advance time to the earliest completion and retire every node that
        # finishes at that instant.
        current_time = running[0][0]
        threshold = current_time + 1e-12
        while running and running[0][0] <= threshold:
            finish, _, i, device = heappop(running)
            if finish > makespan:
                makespan = finish
            remaining -= 1
            if device < 0:
                free_cores += 1
            else:
                device_free[device] = True
            newly_ready = []
            for s in succ_idx[succ_ptr[i] : succ_ptr[i + 1]]:
                if finish > ready_time[s]:
                    ready_time[s] = finish
                in_degree[s] -= 1
                if in_degree[s] == 0:
                    newly_ready.append(s)
            for s in newly_ready:
                # Inlined enqueue() fast path (instant nodes take the
                # cascade); must stay in lock-step with enqueue() above.
                if wcet[s] != 0.0:
                    arrival_counter += 1
                    if flat_breadth_first:
                        entry = (ready_time[s], s, arrival_counter)
                    else:
                        entry = (
                            dense_priority(s, ready_time[s], arrival_counter),
                            arrival_counter,
                            s,
                        )
                    target = assigned[s]
                    if target < 0:
                        heappush(ready_host, entry)
                    else:
                        heappush(ready_device[target], entry)
                else:
                    enqueue(s)

    return makespan
