"""Aggregate metrics over simulation traces.

The evaluation of the paper reports *average* execution times over batches of
random DAGs (Figure 6) and derived quantities such as percentage changes.
This module provides small, well-tested helpers to aggregate traces so that
experiment drivers do not re-implement statistics ad hoc.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

from .trace import ExecutionTrace

__all__ = ["TraceStatistics", "summarise_traces", "speedup", "average_makespan"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a batch of execution traces."""

    count: int
    mean_makespan: float
    median_makespan: float
    min_makespan: float
    max_makespan: float
    stdev_makespan: float
    mean_host_utilisation: float
    mean_accelerator_utilisation: float
    mean_host_idle_while_accelerator_busy: float

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a flat dictionary (CSV/table friendly)."""
        return {
            "count": float(self.count),
            "mean_makespan": self.mean_makespan,
            "median_makespan": self.median_makespan,
            "min_makespan": self.min_makespan,
            "max_makespan": self.max_makespan,
            "stdev_makespan": self.stdev_makespan,
            "mean_host_utilisation": self.mean_host_utilisation,
            "mean_accelerator_utilisation": self.mean_accelerator_utilisation,
            "mean_host_idle_while_accelerator_busy": (
                self.mean_host_idle_while_accelerator_busy
            ),
        }


def summarise_traces(traces: Iterable[ExecutionTrace]) -> TraceStatistics:
    """Aggregate a batch of traces into :class:`TraceStatistics`.

    Raises
    ------
    ValueError
        If the iterable is empty.
    """
    trace_list = list(traces)
    if not trace_list:
        raise ValueError("cannot summarise an empty batch of traces")
    makespans = [trace.makespan() for trace in trace_list]
    return TraceStatistics(
        count=len(trace_list),
        mean_makespan=statistics.fmean(makespans),
        median_makespan=statistics.median(makespans),
        min_makespan=min(makespans),
        max_makespan=max(makespans),
        stdev_makespan=statistics.pstdev(makespans) if len(makespans) > 1 else 0.0,
        mean_host_utilisation=statistics.fmean(
            trace.host_utilisation() for trace in trace_list
        ),
        mean_accelerator_utilisation=statistics.fmean(
            trace.accelerator_utilisation() for trace in trace_list
        ),
        mean_host_idle_while_accelerator_busy=statistics.fmean(
            trace.host_idle_while_accelerator_busy() for trace in trace_list
        ),
    )


def average_makespan(traces: Iterable[ExecutionTrace]) -> float:
    """Mean makespan of a batch of traces."""
    makespans = [trace.makespan() for trace in traces]
    if not makespans:
        raise ValueError("cannot average an empty batch of traces")
    return statistics.fmean(makespans)


def speedup(baseline_makespans: Sequence[float], improved_makespans: Sequence[float]) -> float:
    """Mean baseline makespan divided by mean improved makespan.

    Values greater than one mean the "improved" schedules are faster on
    average.
    """
    if not baseline_makespans or not improved_makespans:
        raise ValueError("speedup requires non-empty makespan sequences")
    improved_mean = statistics.fmean(improved_makespans)
    if improved_mean == 0:
        raise ZeroDivisionError("improved makespans have a zero mean")
    return statistics.fmean(baseline_makespans) / improved_mean
