"""Heterogeneous scheduling simulator (the paper's Section 5.2 methodology).

* :mod:`repro.simulation.platform` -- host + accelerator platform model;
* :mod:`repro.simulation.schedulers` -- work-conserving ready-queue policies,
  including the GOMP-style breadth-first policy used by the paper;
* :mod:`repro.simulation.engine` -- the discrete-event list scheduler
  (trace-producing reference implementation);
* :mod:`repro.simulation.dense` -- the trace-free dense-index fast path
  (bit-identical makespans, no ``NodeExecution`` churn);
* :mod:`repro.simulation.vectorized` -- the lockstep kernel advancing many
  simulations per numpy batch (bit-identical makespans, the default of
  ``simulate_many``);
* :mod:`repro.simulation.batch` -- batched ``simulate_many`` over
  task x platform x policy grids with one compile per task;
* :mod:`repro.simulation.trace` -- execution traces with legality validation;
* :mod:`repro.simulation.worst_case` -- exhaustive / randomised worst-case
  makespan search over work-conserving schedules;
* :mod:`repro.simulation.metrics` -- aggregate statistics over trace batches;
* :mod:`repro.simulation.workload` -- online multi-instance workloads: job
  streams with release times contending for one shared platform.
"""

from .batch import simulate_many
from .dense import simulate_makespan_dense
from .engine import simulate, simulate_makespan
from .metrics import TraceStatistics, average_makespan, speedup, summarise_traces
from .platform import ACCELERATOR, HOST, INSTANT, Platform
from .schedulers import (
    BreadthFirstPolicy,
    CriticalPathFirstPolicy,
    DepthFirstPolicy,
    FixedPriorityPolicy,
    LongestFirstPolicy,
    RandomPolicy,
    SchedulingPolicy,
    ShortestFirstPolicy,
    policy_by_name,
)
from .trace import ExecutionTrace, NodeExecution
from .vectorized import (
    VectorCell,
    simulate_makespan_lockstep,
    simulate_makespans_vectorized,
)
from .workload import (
    JobInstance,
    JobStream,
    WorkloadResult,
    build_workload,
    simulate_workload,
    simulate_workload_reference,
)
from .worst_case import WorstCaseResult, exhaustive_worst_case, randomised_worst_case

__all__ = [
    "Platform",
    "HOST",
    "ACCELERATOR",
    "INSTANT",
    "simulate",
    "simulate_makespan",
    "simulate_makespan_dense",
    "simulate_makespan_lockstep",
    "simulate_makespans_vectorized",
    "VectorCell",
    "simulate_many",
    "ExecutionTrace",
    "NodeExecution",
    "SchedulingPolicy",
    "BreadthFirstPolicy",
    "DepthFirstPolicy",
    "CriticalPathFirstPolicy",
    "ShortestFirstPolicy",
    "LongestFirstPolicy",
    "RandomPolicy",
    "FixedPriorityPolicy",
    "policy_by_name",
    "JobInstance",
    "JobStream",
    "WorkloadResult",
    "build_workload",
    "simulate_workload",
    "simulate_workload_reference",
    "WorstCaseResult",
    "exhaustive_worst_case",
    "randomised_worst_case",
    "TraceStatistics",
    "summarise_traces",
    "average_makespan",
    "speedup",
]
