"""Discrete-event list-scheduling simulator for heterogeneous DAG tasks.

The simulator reproduces the experimental methodology of Section 5.2 of the
paper: the execution of a DAG task on a host with ``m`` identical cores plus
one accelerator device is *simulated* under a work-conserving scheduler
(GOMP's breadth-first policy by default), with every node executing for
exactly its WCET.

Semantics
---------
* A node becomes *ready* when all of its predecessors have completed.
* Host nodes execute on any free host core; the offloaded node executes on a
  free accelerator device; the two resource classes never compete.
* The scheduler is work-conserving: whenever a compatible resource is free
  and a compatible node is ready, a node is started immediately.  The
  :class:`~repro.simulation.schedulers.SchedulingPolicy` only decides *which*
  ready node goes first.
* Zero-WCET nodes (the synchronisation node ``v_sync`` inserted by
  Algorithm 1, dummy sources/sinks) complete instantaneously when they become
  ready and occupy no resource.

The returned :class:`~repro.simulation.trace.ExecutionTrace` contains one
record per node and can be validated independently
(:meth:`ExecutionTrace.validate`), which the test-suite uses to prove the
simulator only ever produces legal schedules.

This module is the *trace-producing reference implementation*: the dense
fast path of :mod:`repro.simulation.dense` (used by :func:`simulate_makespan`
and the batched :func:`~repro.simulation.batch.simulate_many`) must produce
bit-identical makespans, so any semantic change here must be mirrored there.
Successors of a completed node are propagated in node-creation order (the
dense view's CSR order); historically this was a per-completion ``repr``
sort, which cost a sort per event and tied tie-breaking to identifier
spelling rather than to the order in which an OpenMP program would create
the tasks.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Mapping, Optional, Union

from ..core.exceptions import SimulationError
from ..core.graph import NodeId
from ..core.task import DagTask
from .platform import ACCELERATOR, HOST, INSTANT, Platform
from .schedulers import BreadthFirstPolicy, SchedulingPolicy
from .trace import ExecutionTrace, NodeExecution

__all__ = ["simulate", "simulate_makespan"]


def _as_platform(platform_or_cores: Union[Platform, int]) -> Platform:
    if isinstance(platform_or_cores, Platform):
        return platform_or_cores
    return Platform(host_cores=int(platform_or_cores), accelerators=1)


def _device_assignment(
    task: DagTask,
    platform: Platform,
    offload_enabled: bool,
    device_assignment: Optional[Mapping[NodeId, int]],
) -> dict[NodeId, int]:
    """Resolve which nodes run on which accelerator device.

    Without an explicit assignment the task's single offloaded node (if any)
    is mapped to device ``0``, which is the paper's system model.  The
    extensions of :mod:`repro.extensions` pass explicit assignments to model
    several offloaded regions and several devices.
    """
    if not offload_enabled:
        return {}
    if device_assignment is not None:
        resolved = {node: int(device) for node, device in device_assignment.items()}
    elif task.offloaded_node is not None:
        resolved = {task.offloaded_node: 0}
    else:
        resolved = {}
    if resolved and platform.accelerators == 0:
        raise SimulationError(
            "task offloads work but the platform has no accelerator; "
            "pass offload_enabled=False for a homogeneous execution"
        )
    for node, device in resolved.items():
        if node not in task.graph:
            raise SimulationError(f"offloaded node {node!r} is not part of the task")
        if not 0 <= device < platform.accelerators:
            raise SimulationError(
                f"node {node!r} is assigned to device {device} but the platform "
                f"only has {platform.accelerators} accelerator(s)"
            )
    return resolved


def simulate(
    task: DagTask,
    platform: Union[Platform, int],
    policy: Optional[SchedulingPolicy] = None,
    offload_enabled: bool = True,
    device_assignment: Optional[Mapping[NodeId, int]] = None,
) -> ExecutionTrace:
    """Simulate one execution of ``task`` and return the full trace.

    Parameters
    ----------
    task:
        The DAG task to execute.  Its graph must be acyclic.
    platform:
        Either a :class:`Platform` or an integer host-core count ``m`` (one
        accelerator is then assumed).
    policy:
        Ready-queue ordering policy; defaults to the GOMP-style
        :class:`~repro.simulation.schedulers.BreadthFirstPolicy`.
    offload_enabled:
        When ``False`` every node -- including the offloaded one -- executes
        on the host, which models a purely homogeneous execution.
    device_assignment:
        Optional explicit ``node -> accelerator index`` mapping used by the
        multi-offload / multi-device extensions.  When omitted, the task's
        single offloaded node (if any) runs on accelerator ``0``.

    Returns
    -------
    ExecutionTrace
        One :class:`NodeExecution` per node; ``trace.makespan()`` is the
        simulated response time.

    Raises
    ------
    SimulationError
        If the graph is cyclic, or offloaded work cannot be placed on the
        requested devices.
    """
    platform = _as_platform(platform)
    policy = policy if policy is not None else BreadthFirstPolicy()
    graph = task.graph
    compiled = graph.compiled()  # raises CycleError on cyclic graphs
    policy.prepare(graph)

    assignment = _device_assignment(task, platform, offload_enabled, device_assignment)

    # Successor lists in creation (dense CSR) order, resolved once per
    # simulation instead of one repr sort per completed node.
    successor_order = {
        node: [compiled.nodes[s] for s in compiled.successors_of(i)]
        for i, node in enumerate(compiled.nodes)
    }

    in_degree = {node: graph.in_degree(node) for node in graph.nodes()}
    ready_time = {node: 0.0 for node in graph.nodes()}
    remaining = graph.node_count

    free_cores = list(reversed(platform.host_core_names()))
    accelerator_names = platform.accelerator_names()
    accelerator_index = {name: i for i, name in enumerate(accelerator_names)}
    device_free = {index: True for index in range(platform.accelerators)}

    # Ready queues are heaps of (priority tuple, arrival index, node, ready time).
    ready_host: list[tuple[tuple, int, NodeId, float]] = []
    ready_device: dict[int, list[tuple[tuple, int, NodeId, float]]] = {
        index: [] for index in range(platform.accelerators)
    }
    # Running heap: (finish time, sequence, node, start, kind, resource, ready).
    running: list[tuple[float, int, NodeId, float, str, str, float]] = []

    executions: list[NodeExecution] = []
    arrival_counter = 0
    start_counter = 0

    def complete(node: NodeId, finish: float) -> list[tuple[NodeId, float]]:
        """Propagate a completion; return nodes that just became ready."""
        newly_ready: list[tuple[NodeId, float]] = []
        for successor in successor_order[node]:
            ready_time[successor] = max(ready_time[successor], finish)
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                newly_ready.append((successor, ready_time[successor]))
        return newly_ready

    def enqueue(node: NodeId, at_time: float) -> None:
        """Add a ready node to the right queue, resolving instant nodes."""
        nonlocal arrival_counter, remaining
        pending = deque(((node, at_time),))
        while pending:
            current, when = pending.popleft()
            if graph.wcet(current) == 0:
                executions.append(
                    NodeExecution(
                        node=current,
                        start=when,
                        finish=when,
                        resource_kind=INSTANT,
                        resource=None,
                        ready=when,
                    )
                )
                remaining -= 1
                pending.extend(complete(current, when))
                continue
            arrival_counter += 1
            entry = (
                policy.priority(current, when, arrival_counter),
                arrival_counter,
                current,
                when,
            )
            if current in assignment:
                heapq.heappush(ready_device[assignment[current]], entry)
            else:
                heapq.heappush(ready_host, entry)

    def start_ready_nodes(now: float) -> None:
        """Start nodes while compatible resources are free (work conserving)."""
        nonlocal start_counter
        while free_cores and ready_host:
            _, _, node, ready_at = heapq.heappop(ready_host)
            core = free_cores.pop()
            start_counter += 1
            finish = now + graph.wcet(node)
            heapq.heappush(
                running,
                (finish, start_counter, node, now, HOST, core, ready_at),
            )
        for device_index, queue in ready_device.items():
            while device_free[device_index] and queue:
                _, _, node, ready_at = heapq.heappop(queue)
                device_free[device_index] = False
                start_counter += 1
                finish = now + graph.wcet(node)
                heapq.heappush(
                    running,
                    (
                        finish,
                        start_counter,
                        node,
                        now,
                        ACCELERATOR,
                        accelerator_names[device_index],
                        ready_at,
                    ),
                )

    # Seed the simulation with the source nodes.  The source set must be
    # snapshotted first: enqueueing an instant (zero-WCET) source resolves
    # it immediately and decrements successor in-degrees, and a successor
    # that reaches zero mid-loop has already been enqueued by that
    # resolution -- reading ``in_degree`` live would enqueue it twice and
    # leave ``remaining`` to hit zero before every node has run.
    sources = [node for node in graph.nodes() if in_degree[node] == 0]
    for node in sources:
        enqueue(node, 0.0)

    current_time = 0.0
    while remaining > 0:
        start_ready_nodes(current_time)
        if remaining == 0:
            break
        if not running:
            raise SimulationError(
                "simulation deadlocked: nodes remain but nothing is running "
                "(is the graph connected and acyclic?)"
            )

        # Advance time to the earliest completion and retire every node that
        # finishes at that instant.
        current_time = running[0][0]
        while running and running[0][0] <= current_time + 1e-12:
            finish, _, node, start, kind, resource, ready_at = heapq.heappop(running)
            executions.append(
                NodeExecution(
                    node=node,
                    start=start,
                    finish=finish,
                    resource_kind=kind,
                    resource=resource,
                    ready=ready_at,
                )
            )
            remaining -= 1
            if kind == HOST:
                free_cores.append(resource)
            else:
                device_free[accelerator_index[resource]] = True
            for ready_node, when in complete(node, finish):
                enqueue(ready_node, when)

    return ExecutionTrace(
        task=task,
        platform=platform,
        executions=executions,
        policy_name=policy.name,
        device_assignment=dict(assignment),
    )


def simulate_makespan(
    task: DagTask,
    platform: Union[Platform, int],
    policy: Optional[SchedulingPolicy] = None,
    offload_enabled: bool = True,
    device_assignment: Optional[Mapping[NodeId, int]] = None,
) -> float:
    """Makespan of one simulated execution of ``task``.

    Served by the trace-free dense fast path
    (:func:`repro.simulation.dense.simulate_makespan_dense`), which is
    bit-identical to ``simulate(...).makespan()`` but never constructs
    :class:`~repro.simulation.trace.NodeExecution` objects; callers that
    need the schedule itself use :func:`simulate`.
    """
    from .dense import simulate_makespan_dense

    return simulate_makespan_dense(
        task, platform, policy, offload_enabled, device_assignment
    )
