"""Batched simulation over task x platform x policy grids.

The figure 6 sweep (and the scheduler ablation built on it) evaluates the
same tasks on every host size and for both task variants (original and
transformed).  :func:`simulate_many` is the batch entry point that

* compiles each task **once** (:func:`repro.core.compiled.compile_task`) and
  reuses the compiled view across every ``(platform, policy)`` cell -- one
  compile serves all ``m`` values and both variants of a sweep point;
* runs the **vectorised lockstep kernel** by default
  (:func:`~repro.simulation.vectorized.simulate_column_vectorized`): all
  cells of a policy column advance as lanes of one numpy batch, which is
  what makes the paper-scale figure 6 sweep (100 DAGs x 15 fractions x 4
  host sizes x 2 variants) a few array-sweep batches instead of thousands
  of Python event loops;
* falls back to the trace-free dense engine
  (:func:`~repro.simulation.dense.simulate_makespan_dense`) for cells the
  kernel cannot serve -- custom or subclassed policies without a vector
  kind -- and to the trace-producing reference engine when
  ``makespans_only=False``; ``engine="dense"`` forces the dense path
  everywhere (the benchmark baseline);
* distributes fixed-size task chunks over a process pool; chunk boundaries
  and the per-chunk policy instances depend only on ``(tasks, chunk_size,
  root_seed)`` -- never on the worker count -- so ``jobs=N`` is
  **bit-identical** to the serial path.  Each chunk receives its own policy
  instances via :meth:`~repro.simulation.schedulers.SchedulingPolicy.spawned`
  with :func:`repro.parallel.spawn_seeds`-derived child seeds (a plain copy
  for deterministic policies, an independently seeded stream for
  ``RandomPolicy``).

Engine-equivalence contract
---------------------------
Every path produces bit-identical makespans: the lockstep kernel and the
dense engine both reproduce ``simulate(...).makespan()`` exactly (enforced
by ``tests/test_vectorized_engine.py`` / ``tests/test_dense_engine.py``),
and the kernel's per-lane results do not depend on how cells are grouped
into batches -- which is why the serial path may batch a whole call while
``jobs=N`` batches per chunk, without breaking the determinism contract.
Stochastic policies are the one subtlety: ``RandomPolicy`` draws are
consumed per chunk in ``(task, platform)`` cell order on every path, so the
chunk-seeded streams match the dense path draw for draw.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..core.compiled import compile_task
from ..core.task import DagTask
from ..parallel import parallel_map, resolve_jobs, spawn_seeds
from .engine import _as_platform, simulate
from .platform import Platform
from .schedulers import (
    VECTOR_RANDOM,
    BreadthFirstPolicy,
    SchedulingPolicy,
    policy_vector_kind,
)
from .vectorized import simulate_column_vectorized
from .vectorized_compiled import resolve_backend

__all__ = ["simulate_many", "resolve_engine"]

#: Tasks per dispatched chunk.  Fixed (never derived from the worker count)
#: so that chunk boundaries -- and therefore the spawned policy streams --
#: are identical for any ``jobs``.
DEFAULT_CHUNK_SIZE = 16

_ENGINES = ("auto", "dense", "lockstep", "compiled")

#: Lockstep-kernel backend behind each non-dense engine name.
_ENGINE_BACKEND = {"auto": "auto", "lockstep": "numpy", "compiled": "compiled"}


def resolve_engine(engine: str) -> str:
    """Concrete engine name that will serve vectorisable policy columns.

    ``auto`` resolves to ``compiled`` when the C kernel is available on this
    host and to the numpy ``lockstep`` kernel otherwise; the explicit names
    map to themselves.  (Non-vectorisable policies always take the dense
    per-cell fallback regardless of the engine.)
    """
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if engine == "auto":
        return "compiled" if resolve_backend("auto") == "compiled" else "lockstep"
    return engine


def _dense_column(entries, platforms, policy, offload_enabled) -> np.ndarray:
    """One policy column via the dense engine, cells in (task, platform) order."""
    from .dense import simulate_makespan_dense

    out = np.empty((len(entries), len(platforms)), dtype=np.float64)
    for t, (task, compiled) in enumerate(entries):
        for p, platform in enumerate(platforms):
            out[t, p] = simulate_makespan_dense(
                task, platform, policy, offload_enabled, compiled=compiled
            )
    return out


def _simulate_columns(
    entries, platforms, policies, offload_enabled, engine
) -> np.ndarray:
    """Simulate one task chunk over the platform x policy grid (makespans)."""
    out = np.empty(
        (len(entries), len(platforms), len(policies)), dtype=np.float64
    )
    for q, policy in enumerate(policies):
        if engine != "dense" and policy_vector_kind(policy) is not None:
            out[:, :, q] = simulate_column_vectorized(
                entries,
                platforms,
                policy,
                offload_enabled,
                backend=_ENGINE_BACKEND[engine],
            )
        else:
            out[:, :, q] = _dense_column(
                entries, platforms, policy, offload_enabled
            )
    return out


def _simulate_chunk(args: tuple) -> np.ndarray | list:
    """Worker: simulate one task chunk over the full platform x policy grid."""
    entries, platforms, policies, offload_enabled, makespans_only, engine = args
    if makespans_only:
        return _simulate_columns(
            entries, platforms, policies, offload_enabled, engine
        )
    return [
        [
            [
                simulate(task, platform, policy, offload_enabled)
                for policy in policies
            ]
            for platform in platforms
        ]
        for task, _ in entries
    ]


def simulate_many(
    tasks: Sequence[DagTask],
    platforms: Union[Platform, int, Sequence[Union[Platform, int]]],
    policies: Union[SchedulingPolicy, Sequence[SchedulingPolicy], None] = None,
    *,
    offload_enabled: bool = True,
    makespans_only: bool = True,
    jobs: Optional[int] = None,
    root_seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    engine: str = "auto",
):
    """Simulate every task on every platform under every policy.

    Parameters
    ----------
    tasks:
        The DAG tasks to simulate.  Each is compiled once; the compiled view
        is reused for every ``(platform, policy)`` cell and shipped with the
        task to worker processes (the view is picklable).
    platforms:
        One platform -- or a sequence of platforms -- as :class:`Platform`
        objects or integer host-core counts (one accelerator assumed).
    policies:
        One policy or a sequence; defaults to the GOMP-style
        :class:`~repro.simulation.schedulers.BreadthFirstPolicy`.  Policies
        are never used directly: every chunk simulates with its own
        ``policy.spawned(child_seed)`` instances, the child seeds derived
        from ``root_seed`` via :func:`repro.parallel.spawn_seeds` (one per
        ``(chunk, policy)`` pair), so stochastic policies draw independent
        per-chunk streams in any execution order.
    offload_enabled:
        Forwarded to the engine (``False`` models a homogeneous execution).
    makespans_only:
        ``True`` (default): return a ``float64`` array of shape
        ``(len(tasks), len(platforms), len(policies))`` computed by the
        vectorised lockstep kernel (dense fallback per cell where needed).
        ``False``: return the analogous nested list of
        :class:`~repro.simulation.trace.ExecutionTrace` objects from the
        reference engine (useful for inspection; much slower).
    jobs:
        Worker-process count; ``None``/``0``/``1`` runs serially with
        results bit-identical to any parallel run.  The serial path batches
        whole policy columns through the lockstep kernel (big batches
        amortise best); parallel workers batch per chunk -- the kernel's
        per-lane results do not depend on batch composition, so the
        results agree bit for bit.
    root_seed:
        Root of the spawned per-chunk policy seeds.
    chunk_size:
        Tasks per chunk.  Part of the determinism contract: results depend
        on it (chunk boundaries seed the spawned policies) but never on
        ``jobs``.
    engine:
        ``"auto"`` (default): the lockstep kernel for vectorisable
        policies -- on its compiled C backend when available on this host,
        the numpy backend otherwise -- with the dense fallback for custom
        policies.  ``"lockstep"``: force the numpy kernel backend;
        ``"compiled"``: force the C backend (raises when unavailable).
        ``"dense"``: force the dense per-cell path everywhere (the PR-3
        behaviour; kept as the benchmark baseline and an escape hatch).
        All engines are bit-identical; see :func:`resolve_engine` for what
        ``auto`` picks.

    Returns
    -------
    numpy.ndarray or list
        Makespans (``makespans_only=True``) or traces, indexed
        ``[task][platform][policy]``.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    task_list = list(tasks)
    if isinstance(platforms, (Platform, int)):
        platforms = [platforms]
    platform_list = [_as_platform(platform) for platform in platforms]
    if policies is None:
        policies = [BreadthFirstPolicy()]
    elif isinstance(policies, SchedulingPolicy):
        policies = [policies]
    policy_list = list(policies)
    if not platform_list:
        raise ValueError("simulate_many needs at least one platform")
    if not policy_list:
        raise ValueError("simulate_many needs at least one policy")

    shape = (len(task_list), len(platform_list), len(policy_list))
    if not task_list:
        return np.empty(shape, dtype=np.float64) if makespans_only else []

    # One compile per task; cached on the graph, shared across every cell
    # (and pickled to the workers instead of being rebuilt there).  The
    # trace mode runs the reference engine, which never touches the view.
    if makespans_only:
        entries = [(task, compile_task(task)) for task in task_list]
    else:
        entries = [(task, None) for task in task_list]
    chunks = [
        entries[start : start + chunk_size]
        for start in range(0, len(entries), chunk_size)
    ]
    seeds = spawn_seeds(root_seed, len(chunks) * len(policy_list))

    if makespans_only and resolve_jobs(jobs) == 1:
        # Serial fast path: batch whole policy columns through the lockstep
        # kernel instead of dispatching chunk-sized batches.  Deterministic
        # policies behave identically through any spawned copy, so one
        # instance serves the whole column; RandomPolicy keeps the chunked
        # per-instance streams of the determinism contract, so its column
        # is evaluated chunk by chunk (matching the dense path draw for
        # draw).  Custom policies take the dense per-cell fallback.
        out = np.empty(shape, dtype=np.float64)
        backend = _ENGINE_BACKEND.get(engine)
        for q, policy in enumerate(policy_list):
            kind = policy_vector_kind(policy) if engine != "dense" else None
            per_chunk = kind is None or kind == VECTOR_RANDOM
            if not per_chunk:
                out[:, :, q] = simulate_column_vectorized(
                    entries,
                    platform_list,
                    policy.spawned(seeds[q]),
                    offload_enabled,
                    backend=backend,
                )
                continue
            row = 0
            for c, chunk in enumerate(chunks):
                spawned = policy.spawned(seeds[c * len(policy_list) + q])
                if kind is None:
                    block = _dense_column(
                        chunk, platform_list, spawned, offload_enabled
                    )
                else:
                    block = simulate_column_vectorized(
                        chunk, platform_list, spawned, offload_enabled,
                        backend=backend,
                    )
                out[row : row + len(chunk), :, q] = block
                row += len(chunk)
        return out

    work = [
        (
            chunk,
            platform_list,
            [
                policy.spawned(seeds[c * len(policy_list) + q])
                for q, policy in enumerate(policy_list)
            ],
            offload_enabled,
            makespans_only,
            engine,
        )
        for c, chunk in enumerate(chunks)
    ]
    results = parallel_map(_simulate_chunk, work, jobs=jobs)
    if makespans_only:
        return np.concatenate(results, axis=0).reshape(shape)
    return [row for chunk_result in results for row in chunk_result]
