"""repro -- Response-time analysis of DAG tasks supporting heterogeneous computing.

Reproduction of M. A. Serrano and E. Quinones, DAC 2018.

The most frequently used names are re-exported at the package root::

    from repro import DagTask, transform, heterogeneous_response_time

See :mod:`repro.core`, :mod:`repro.analysis`, :mod:`repro.generator`,
:mod:`repro.simulation`, :mod:`repro.ilp`, :mod:`repro.experiments`,
:mod:`repro.extensions` and :mod:`repro.io` for the full API.
"""

from .analysis import (
    ResponseTimeResult,
    Scenario,
    TaskAnalysis,
    analyse_many,
    classify_scenario,
    compare,
    heterogeneous_response_time,
    homogeneous_response_time,
    naive_unsafe_response_time,
    percentage_change,
)
from .core import (
    CompiledTask,
    DagTask,
    DirectedAcyclicGraph,
    TaskSet,
    TransformedTask,
    figure1_task,
    figure3_task,
    normalise_task,
    transform,
    validate_task,
)
from .generator import (
    DagStructureGenerator,
    GeneratorConfig,
    OffloadConfig,
    make_heterogeneous,
    pin_offloaded_fraction,
)
from .simulation import (
    BreadthFirstPolicy,
    Platform,
    simulate,
    simulate_makespan,
    simulate_many,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DirectedAcyclicGraph",
    "CompiledTask",
    "DagTask",
    "TaskSet",
    "TransformedTask",
    "transform",
    "validate_task",
    "normalise_task",
    "figure1_task",
    "figure3_task",
    # analysis
    "ResponseTimeResult",
    "Scenario",
    "homogeneous_response_time",
    "heterogeneous_response_time",
    "naive_unsafe_response_time",
    "classify_scenario",
    "analyse_many",
    "TaskAnalysis",
    "compare",
    "percentage_change",
    # generation
    "GeneratorConfig",
    "OffloadConfig",
    "DagStructureGenerator",
    "make_heterogeneous",
    "pin_offloaded_fraction",
    # simulation
    "Platform",
    "simulate",
    "simulate_makespan",
    "simulate_many",
    "BreadthFirstPolicy",
]
