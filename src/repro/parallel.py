"""Deterministic process-based parallelism helpers.

The experiment sweeps and the batched analyses are embarrassingly parallel:
thousands of independent (task, platform) evaluations whose inputs are drawn
*before* any work is distributed.  This module provides the small shared
substrate:

* :func:`parallel_map` -- an order-preserving ``map`` over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, falling back to a plain
  serial loop for ``jobs <= 1`` so that callers have a single code path;
* :func:`spawn_seeds` -- deterministic per-chunk child seeds derived from a
  root seed via :class:`numpy.random.SeedSequence`, so that splitting work
  into chunks never changes the random draws;
* :func:`resolve_jobs` -- normalisation of the user-facing ``--jobs`` flag
  (``None``/``0``/``1`` mean serial, negative values mean "all cores").

Determinism contract
--------------------
Workers receive *pickled copies* of their inputs, so a worker can never
mutate shared state.  Every driver built on this module generates its random
inputs serially (single RNG stream) and only distributes the deterministic
evaluation, which is why ``jobs=N`` produces bit-identical results to
``jobs=1``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional, TypeVar

__all__ = ["resolve_jobs", "parallel_map", "spawn_seeds"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``None``, ``0`` and ``1`` mean "serial"; negative values request one
    worker per available CPU; positive values are taken literally.
    """
    if jobs is None or jobs == 0 or jobs == 1:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> list[_ResultT]:
    """Apply ``fn`` to every item, preserving order.

    With ``jobs <= 1`` (or fewer than two items) this is a plain serial loop
    -- no processes, no pickling.  Otherwise the items are dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; ``fn`` must be a
    module-level callable and both items and results must be picklable.
    """
    work = list(items)
    workers = resolve_jobs(jobs)
    if workers == 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(workers, len(work))) as pool:
        return list(pool.map(fn, work, chunksize=max(1, chunksize)))


def spawn_seeds(root_seed: int, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from ``root_seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, the canonical way to split
    one reproducible stream into statistically independent sub-streams: the
    result depends only on ``(root_seed, count)``, never on scheduling order,
    so chunked parallel generation stays reproducible.
    """
    from numpy.random import SeedSequence

    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [
        int(child.generate_state(1, dtype="uint64")[0])
        for child in SeedSequence(root_seed).spawn(count)
    ]
