"""Deterministic process-based parallelism helpers.

The experiment sweeps and the batched analyses are embarrassingly parallel:
thousands of independent (task, platform) evaluations whose inputs are drawn
*before* any work is distributed.  This module provides the small shared
substrate:

* :func:`parallel_map` -- an order-preserving ``map`` over a
  :class:`~concurrent.futures.ProcessPoolExecutor` that survives worker
  death: a crashed worker breaks the pool, so the pool is respawned and
  only the chunks whose results were lost are retried.  Falls back to a
  plain serial loop for ``jobs <= 1`` so that callers have a single code
  path;
* :func:`spawn_seeds` -- deterministic per-chunk child seeds derived from a
  root seed via :class:`numpy.random.SeedSequence`, so that splitting work
  into chunks never changes the random draws;
* :func:`resolve_jobs` -- normalisation of the user-facing ``--jobs`` flag
  (``None``/``0``/``1`` mean serial, negative values mean "all cores").

Determinism contract
--------------------
Workers receive *pickled copies* of their inputs, so a worker can never
mutate shared state.  Every driver built on this module generates its random
inputs serially (single RNG stream) and only distributes the deterministic
evaluation, which is why ``jobs=N`` produces bit-identical results to
``jobs=1`` -- and why retrying a lost chunk after a worker crash is sound:
re-evaluating a pure function of pickled inputs yields the same values the
dead worker would have produced.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Iterable, Optional, TypeVar

from .core.exceptions import WorkerCrashError
from .resilience import fault_point

__all__ = ["resolve_jobs", "parallel_map", "spawn_seeds", "worker_respawn_count"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

_respawn_lock = threading.Lock()
_respawn_count = 0


def worker_respawn_count() -> int:
    """Process-lifetime count of pool respawns after worker crashes."""
    with _respawn_lock:
        return _respawn_count


def _note_respawn() -> None:
    global _respawn_count
    with _respawn_lock:
        _respawn_count += 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``None``, ``0`` and ``1`` mean "serial"; negative values request one
    worker per available CPU; positive values are taken literally.
    """
    if jobs is None or jobs == 0 or jobs == 1:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _apply_chunk(payload: tuple) -> list:
    """Worker entry point: apply ``fn`` to one chunk of items, in order."""
    fn, chunk = payload
    results = []
    for item in chunk:
        fault_point("parallel.chunk")
        results.append(fn(item))
    return results


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    jobs: Optional[int] = None,
    chunksize: int = 1,
    max_respawns: int = 2,
) -> list[_ResultT]:
    """Apply ``fn`` to every item, preserving order, surviving worker death.

    With ``jobs <= 1`` (or fewer than two items) this is a plain serial loop
    -- no processes, no pickling.  Otherwise the items are split into chunks
    of ``chunksize`` and each chunk is submitted as one future to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; ``fn`` must be a
    module-level callable and both items and results must be picklable.

    When a worker dies (OOM kill, segfault, hard ``os._exit``), the pool
    breaks and every unfinished future fails with
    :class:`~concurrent.futures.BrokenExecutor`.  Completed chunks are
    keepers; the pool is respawned and only the lost chunks are retried, up
    to ``max_respawns`` fresh pools, after which
    :class:`~repro.core.exceptions.WorkerCrashError` is raised.  Exceptions
    raised by ``fn`` itself are *not* crashes and propagate on first
    occurrence, exactly as in the serial path.
    """
    work = list(items)
    workers = resolve_jobs(jobs)
    if workers == 1 or len(work) <= 1:
        return [fn(item) for item in work]

    size = max(1, chunksize)
    chunks = [work[start : start + size] for start in range(0, len(work), size)]
    chunk_results: list[Optional[list]] = [None] * len(chunks)
    pending = list(range(len(chunks)))
    respawns = 0
    while pending:
        lost: list[int] = []
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {}
            for index in pending:
                try:
                    futures[pool.submit(_apply_chunk, (fn, chunks[index]))] = index
                except BrokenExecutor:
                    lost.append(index)
            for future, index in futures.items():
                try:
                    chunk_results[index] = future.result()
                except BrokenExecutor:
                    lost.append(index)
        if not lost:
            break
        respawns += 1
        if respawns > max_respawns:
            raise WorkerCrashError(
                f"parallel workers kept dying: {len(lost)} chunk(s) still "
                f"unfinished after {max_respawns} pool respawn(s)"
            )
        _note_respawn()
        pending = sorted(lost)

    return [result for chunk in chunk_results for result in chunk]  # type: ignore[union-attr]


def spawn_seeds(root_seed: int, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from ``root_seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, the canonical way to split
    one reproducible stream into statistically independent sub-streams: the
    result depends only on ``(root_seed, count)``, never on scheduling order,
    so chunked parallel generation stays reproducible.
    """
    from numpy.random import SeedSequence

    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [
        int(child.generate_state(1, dtype="uint64")[0])
        for child in SeedSequence(root_seed).spawn(count)
    ]
