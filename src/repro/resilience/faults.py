"""Deterministic fault injection keyed by named fault points.

The keystone of the resilience layer's testability: every recovery path --
hung solver, killed worker, executor exception, mid-drain shutdown -- must
be a reproducible CI-enforced test, not a hope.  Code under test declares
**fault points** (:func:`fault_point` calls compiled into the hot paths)
and tests *arm* them with an action:

``raise``
    Raise :class:`~repro.core.exceptions.FaultInjectedError` (an executor
    / engine failure).
``hang``
    Sleep ``delay`` seconds (a wedged solver or stuck backend; bounded, so
    tests never genuinely hang).
``kill``
    ``os._exit(17)`` -- a hard process death, for :class:`ProcessPool`
    workers (never arm it in the test process itself).

Determinism controls: ``after`` skips the first N hits, ``times`` caps the
number of fires, and ``token`` points at a file consumed atomically (one
``os.unlink`` succeeds across any number of racing processes) so e.g.
"exactly one worker dies, ever" holds even across pool respawns.

Two arming channels cover both process topologies:

* **programmatic** -- ``FAULTS.arm(...)`` / ``with FAULTS.armed(...)``:
  reaches everything in-process, including forked pool workers (they
  inherit the armed table);
* **environment** -- ``REPRO_FAULTS="point:action:key=value:...;..."``
  parsed at import: reaches spawned workers and separately exec'd servers
  (the CI chaos job arms ``repro serve`` this way).

When nothing is armed, a fault point is one attribute read on a module
singleton -- below measurement noise on every hot path (measured by
``benchmarks/bench_service.py --faults``).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.exceptions import FaultInjectedError

__all__ = ["FaultInjector", "FAULTS", "fault_point"]

_ACTIONS = ("raise", "hang", "kill")

#: Exit status of a ``kill`` action -- distinguishable from a Python
#: traceback death (1) and a clean exit (0) in test assertions.
KILL_EXIT_CODE = 17


@dataclass
class _Fault:
    """One armed fault: the action plus its determinism controls."""

    point: str
    action: str
    times: Optional[int] = 1
    after: int = 0
    delay: float = 0.1
    token: Optional[str] = None
    message: Optional[str] = None
    hits: int = 0
    fires: int = 0


class FaultInjector:
    """Registry of armed faults, fired from named fault points.

    ``enabled`` mirrors "any fault armed" so the disabled fast path is a
    single attribute read (see :func:`fault_point`).  All bookkeeping is
    lock-protected; the *action* itself (sleep, raise, exit) runs outside
    the lock so a hang never blocks other points.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._faults: dict[str, _Fault] = {}
        self.enabled = False

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(
        self,
        point: str,
        action: str = "raise",
        *,
        times: Optional[int] = 1,
        after: int = 0,
        delay: float = 0.1,
        token: Optional[str] = None,
        message: Optional[str] = None,
    ) -> None:
        """Arm ``point`` with ``action`` (see the module docstring).

        ``times=None`` fires on every hit; ``after=N`` skips the first N
        hits; ``token`` gates each fire on atomically consuming the file.
        """
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r}; valid actions: "
                f"{', '.join(_ACTIONS)}"
            )
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 or None, got {times}")
        if after < 0 or delay < 0:
            raise ValueError(
                f"after and delay must be >= 0, got {after} and {delay}"
            )
        with self._lock:
            self._faults[point] = _Fault(
                point=point,
                action=action,
                times=times,
                after=after,
                delay=delay,
                token=token,
                message=message,
            )
            self.enabled = True

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point (or all of them); counters are dropped too."""
        with self._lock:
            if point is None:
                self._faults.clear()
            else:
                self._faults.pop(point, None)
            self.enabled = bool(self._faults)

    @contextmanager
    def armed(self, point: str, action: str = "raise", **options: object) -> Iterator[None]:
        """Scope-bound arming for tests: disarms ``point`` on exit."""
        self.arm(point, action, **options)  # type: ignore[arg-type]
        try:
            yield
        finally:
            self.disarm(point)

    def configure(self, spec: str) -> None:
        """Arm faults from a ``REPRO_FAULTS``-style specification string.

        Grammar: entries separated by ``;``, each entry
        ``point:action[:key=value]*`` with keys ``times`` (int or
        ``inf``), ``after`` (int), ``delay`` (float), ``token`` (path),
        ``message`` (str).  Example::

            REPRO_FAULTS="oracle.solve:hang:delay=0.4:times=2;parallel.chunk:kill:token=/tmp/kill-token"
        """
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            fields = entry.split(":")
            if len(fields) < 2:
                raise ValueError(
                    f"malformed REPRO_FAULTS entry {entry!r}: expected "
                    f"'point:action[:key=value]*'"
                )
            point, action = fields[0], fields[1]
            options: dict[str, object] = {}
            for field in fields[2:]:
                key, sep, value = field.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed option {field!r} in REPRO_FAULTS entry "
                        f"{entry!r}: expected 'key=value'"
                    )
                if key == "times":
                    options[key] = None if value == "inf" else int(value)
                elif key == "after":
                    options[key] = int(value)
                elif key == "delay":
                    options[key] = float(value)
                elif key in ("token", "message"):
                    options[key] = value
                else:
                    raise ValueError(
                        f"unknown option {key!r} in REPRO_FAULTS entry {entry!r}"
                    )
            self.arm(point, action, **options)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, point: str) -> None:
        """Evaluate ``point``'s armed fault, if any (called by the hook)."""
        with self._lock:
            fault = self._faults.get(point)
            if fault is None:
                return
            fault.hits += 1
            if fault.hits <= fault.after:
                return
            if fault.times is not None and fault.fires >= fault.times:
                return
            if fault.token is not None:
                try:
                    os.unlink(fault.token)
                except FileNotFoundError:
                    return  # token already consumed (by any process)
            fault.fires += 1
            action, delay = fault.action, fault.delay
            message = fault.message or f"injected fault at {point!r}"
        # Act outside the lock: a hang must not serialise other points.
        if action == "hang":
            time.sleep(delay)
        elif action == "kill":
            os._exit(KILL_EXIT_CODE)
        else:
            raise FaultInjectedError(message)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Armed points with hit/fire counters (surfaced in ``/stats``)."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "points": {
                    name: {
                        "action": fault.action,
                        "hits": fault.hits,
                        "fires": fault.fires,
                        "times": fault.times,
                        "after": fault.after,
                    }
                    for name, fault in self._faults.items()
                },
            }


#: Process-wide injector.  Forked workers inherit its armed table; spawned
#: workers re-import this module and re-arm from ``REPRO_FAULTS``.
FAULTS = FaultInjector()

_env_spec = os.environ.get("REPRO_FAULTS")
if _env_spec:
    FAULTS.configure(_env_spec)


def fault_point(name: str) -> None:
    """Declare a named fault point (a no-op unless something is armed).

    This is the hook compiled into the hot paths: the disabled cost is one
    global load plus one attribute read.
    """
    if FAULTS.enabled:
        FAULTS.fire(name)
