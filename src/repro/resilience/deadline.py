"""Deadline / time-budget primitive shared by the resilience layer.

A :class:`Deadline` is an absolute point on the monotonic clock.  Every
layer that bounds work in wall-clock terms -- per-request service deadlines,
per-batch oracle budgets, retry loops -- carries one of these instead of a
raw ``timeout`` float, because a float silently resets every time it is
passed down a call chain while a deadline keeps shrinking: a request that
already waited 40 ms of its 50 ms budget in the queue has 10 ms left for
the engine, not another 50.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.exceptions import DeadlineExceededError

__all__ = ["Deadline"]


class Deadline:
    """An absolute expiry instant on the monotonic clock.

    ``Deadline.after(None)`` is the unbounded deadline: it never expires
    and :meth:`remaining` returns ``None``, so "no timeout" flows through
    the same code path as a finite one.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, expires_at: Optional[float]) -> None:
        self._expires_at = expires_at

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """Deadline ``seconds`` from now (``None`` -> never expires)."""
        if seconds is None:
            return cls(None)
        if seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        return cls(time.monotonic() + seconds)

    @property
    def unbounded(self) -> bool:
        """``True`` when the deadline never expires."""
        return self._expires_at is None

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0.0); ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        """``True`` once the instant has passed."""
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def cap(self, limit: Optional[float]) -> Optional[float]:
        """The tighter of ``limit`` and the remaining budget.

        The way a per-batch budget flows into per-instance solver limits:
        ``deadline.cap(time_limit)`` never grants an instance more time
        than the whole batch has left.  ``None`` means "no bound" on both
        sides.
        """
        remaining = self.remaining()
        if remaining is None:
            return limit
        if limit is None:
            return remaining
        return min(limit, remaining)

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` when expired."""
        if self.expired:
            raise DeadlineExceededError(f"{what} exceeded its deadline")

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        if self._expires_at is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={self.remaining():.3f}s)"
