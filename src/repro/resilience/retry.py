"""Bounded retry with exponential backoff and deterministic seeded jitter.

The retry policy of this repository must obey the same discipline as every
other stochastic component: seeded, replayable, testable.  ``retry_call``
therefore draws its jitter from a private ``random.Random(seed)`` stream --
two clients constructed with the same seed back off identically, and a test
can assert the exact delay sequence -- instead of the unseeded module-level
RNG most retry helpers reach for.

Retrying is only sound against idempotent operations.  Every consumer in
this repository qualifies by construction: service requests are keyed on
content fingerprints (re-asking is a cache hit, never a duplicated side
effect) and parallel chunks are pure functions of their pickled inputs.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from .deadline import Deadline

__all__ = ["retry_call"]

_ResultT = TypeVar("_ResultT")


def retry_call(
    fn: Callable[[], _ResultT],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 5.0,
    jitter: float = 0.25,
    seed: Optional[int] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    should_retry: Optional[Callable[[BaseException], bool]] = None,
    retry_after: Optional[Callable[[BaseException], Optional[float]]] = None,
    deadline: Optional[Deadline] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> _ResultT:
    """Call ``fn`` until it succeeds, the attempts run out, or the deadline.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is returned on success.
    attempts:
        Total number of calls (1 = no retries).
    base_delay, factor, max_delay:
        Backoff schedule: attempt ``k`` (0-based) sleeps
        ``min(max_delay, base_delay * factor**k)`` before retrying.
    jitter:
        Fractional spread added on top of the backoff: the delay is scaled
        by ``1 + jitter * u`` with ``u`` drawn uniformly from ``[0, 1)``.
        Spreads synchronised retry storms without ever shrinking a delay
        below the schedule.
    seed:
        Seed of the jitter stream.  ``None`` keeps jitter deterministic
        too (``u = 0``): determinism is the default, opting *into* spread
        requires a seed.
    retry_on:
        Exception classes eligible for retry; anything else propagates
        immediately.
    should_retry:
        Optional refinement: called with the caught exception, returning
        ``False`` vetoes the retry (e.g. an HTTP 400 inside a family of
        otherwise-retryable transport errors).
    retry_after:
        Optional server-dictated floor: called with the exception; a
        non-``None`` return raises the sleep to at least that many seconds
        (how ``Retry-After`` headers are honoured).
    deadline:
        Overall budget; once expired, the last exception propagates
        instead of sleeping again.
    sleep, on_retry:
        Injection points for tests (fake sleep; per-retry observation as
        ``on_retry(attempt_index, error, delay)``).
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if base_delay < 0 or max_delay < 0 or factor < 1 or jitter < 0:
        raise ValueError(
            "backoff parameters must satisfy base_delay >= 0, max_delay >= 0, "
            f"factor >= 1, jitter >= 0; got {base_delay}, {max_delay}, "
            f"{factor}, {jitter}"
        )
    rng = random.Random(seed) if seed is not None else None
    last_error: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as error:  # noqa: PERF203 - retry loop by design
            last_error = error
            if attempt == attempts - 1:
                raise
            if should_retry is not None and not should_retry(error):
                raise
            if deadline is not None and deadline.expired:
                raise
            delay = min(max_delay, base_delay * factor**attempt)
            if rng is not None and jitter:
                delay *= 1.0 + jitter * rng.random()
            if retry_after is not None:
                floor = retry_after(error)
                if floor is not None:
                    delay = max(delay, float(floor))
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None and delay >= remaining:
                    raise
            if on_retry is not None:
                on_retry(attempt, error, delay)
            if delay > 0:
                sleep(delay)
    raise last_error  # pragma: no cover - loop always returns or raises
