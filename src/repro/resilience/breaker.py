"""Counter-exposing circuit breaker.

Protects a dependency that fails *persistently* (a wedged solver, a dead
backend) from being hammered by every request: after ``failure_threshold``
consecutive failures the breaker **opens** and callers are told to use
their degraded path immediately, without paying the failure latency again.
After ``reset_timeout`` seconds the breaker lets probes through
(**half-open**); a success closes it, a failure re-opens it.

The breaker never decides *what* the degraded path is -- the oracle layer
pairs it with the verified bound-sandwich fallback
(:func:`repro.ilp.makespan.degraded_makespan_result`) -- it only decides
*when* to stop trying the real one.  All transitions and rejections are
counted and exposed through :meth:`stats` so the service's ``/stats``
document shows exactly what the breaker did.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, TypeVar

from ..core.exceptions import CircuitOpenError

__all__ = ["CircuitBreaker"]

_ResultT = TypeVar("_ResultT")


class CircuitBreaker:
    """Thread-safe closed / open / half-open circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls that trip the breaker.
    reset_timeout:
        Seconds the breaker stays open before probes are allowed through.
    clock:
        Monotonic time source (injectable for tests).
    name:
        Label carried in error messages and :meth:`stats`.

    Usage is explicit -- ``if breaker.allow(): ... record_success() /
    record_failure()`` -- so the protected call site controls what counts
    as a failure (a degraded batch counts; a client-side validation error
    must not).  :meth:`call` wraps the common case.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._consecutive_failures = 0
        self._successes = 0
        self._failures = 0
        self._trips = 0
        self._rejections = 0

    # ------------------------------------------------------------------
    # Decision / recording
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the protected call be attempted right now?

        While open, returns ``False`` (counted as a rejection) until
        ``reset_timeout`` has elapsed, then transitions to half-open and
        lets the caller probe.
        """
        with self._lock:
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._state = self.HALF_OPEN
                    return True
                self._rejections += 1
                return False
            return True

    def record_success(self) -> None:
        """A protected call succeeded: close (from half-open) and heal."""
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED

    def record_failure(self) -> None:
        """A protected call failed: trip once the threshold is reached.

        A half-open probe failure re-opens immediately (the dependency is
        still down; one probe is evidence enough).
        """
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._trips += 1

    def call(self, fn: Callable[[], _ResultT]) -> _ResultT:
        """Run ``fn`` under the breaker; raise :class:`CircuitOpenError` when open."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is open; call rejected"
            )
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    def reset(self) -> None:
        """Force the breaker closed (counters are preserved)."""
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == self.OPEN
                and self._clock() - self._opened_at >= self.reset_timeout
            ):
                return self.HALF_OPEN
            return self._state

    def stats(self) -> dict:
        """Counters + current state for ``stats()`` / ``/stats``."""
        state = self.state
        with self._lock:
            return {
                "name": self.name,
                "state": state,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout,
                "consecutive_failures": self._consecutive_failures,
                "successes": self._successes,
                "failures": self._failures,
                "trips": self._trips,
                "rejections": self._rejections,
            }
