"""Resilience primitives: deadlines, retries, circuit breaking, fault injection.

This package is the substrate of the service's failure semantics (see
``docs/service.md``, "Failure modes & operational runbook"):

* :class:`Deadline` -- absolute monotonic expiry carried down call chains;
* :func:`retry_call` -- bounded exponential backoff with deterministic
  seeded jitter;
* :class:`CircuitBreaker` -- counter-exposing closed/open/half-open breaker;
* :class:`FaultInjector` / :data:`FAULTS` / :func:`fault_point` --
  deterministic fault injection keyed by named fault points.

The matching exception types live in :mod:`repro.core.exceptions` and are
re-exported here for convenience.
"""

from ..core.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjectedError,
    WorkerCrashError,
)
from .breaker import CircuitBreaker
from .deadline import Deadline
from .faults import FAULTS, FaultInjector, fault_point
from .retry import retry_call

__all__ = [
    "Deadline",
    "retry_call",
    "CircuitBreaker",
    "FaultInjector",
    "FAULTS",
    "fault_point",
    "DeadlineExceededError",
    "CircuitOpenError",
    "FaultInjectedError",
    "WorkerCrashError",
]
