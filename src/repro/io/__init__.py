"""Task and result (de)serialisation.

* :mod:`repro.io.json_io` -- JSON format for tasks and task sets;
* :mod:`repro.io.dot` -- Graphviz DOT export (with transformation
  highlighting) and import.
"""

from .dot import load_dot, save_dot, task_from_dot, task_to_dot, transformed_to_dot
from .json_io import (
    load_task,
    load_taskset,
    save_task,
    save_taskset,
    task_from_dict,
    task_from_json,
    task_to_dict,
    task_to_json,
    taskset_from_dict,
    taskset_to_dict,
)

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "task_to_json",
    "task_from_json",
    "save_task",
    "load_task",
    "taskset_to_dict",
    "taskset_from_dict",
    "save_taskset",
    "load_taskset",
    "task_to_dot",
    "transformed_to_dot",
    "task_from_dot",
    "save_dot",
    "load_dot",
]
