"""JSON (de)serialisation of heterogeneous DAG tasks and task sets.

The on-disk format is deliberately simple and explicit so that tasks can be
authored by hand, produced by external tools (e.g. a compiler pass extracting
an OpenMP task graph, as reference [22] of the paper does), or exchanged
between runs of the experiment harness::

    {
      "name": "tau",
      "period": 100,
      "deadline": 80,
      "offloaded_node": "v_off",
      "nodes": {"v1": 1, "v2": 4, "v_off": 4},
      "edges": [["v1", "v2"], ["v2", "v_off"]]
    }

Task sets are stored as ``{"name": ..., "tasks": [<task>, ...]}``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..core.exceptions import SerializationError
from ..core.task import DagTask, TaskSet

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "task_to_json",
    "task_from_json",
    "save_task",
    "load_task",
    "taskset_to_dict",
    "taskset_from_dict",
    "save_taskset",
    "load_taskset",
]


def task_to_dict(task: DagTask) -> dict:
    """Convert a task to a JSON-serialisable dictionary."""
    return {
        "name": task.name,
        "period": task.period,
        "deadline": task.deadline,
        "offloaded_node": task.offloaded_node,
        "nodes": {str(node): task.graph.wcet(node) for node in task.graph.nodes()},
        "edges": [[str(src), str(dst)] for src, dst in task.graph.edges()],
        "metadata": dict(task.metadata),
    }


def task_from_dict(data: dict) -> DagTask:
    """Inverse of :func:`task_to_dict`.

    Raises
    ------
    SerializationError
        If mandatory keys are missing or edges reference unknown nodes.
    """
    if "nodes" not in data:
        raise SerializationError("task document is missing the 'nodes' mapping")
    try:
        nodes = {str(node): float(wcet) for node, wcet in data["nodes"].items()}
    except (TypeError, ValueError) as error:
        raise SerializationError(f"invalid node mapping: {error}") from error
    edges = []
    for edge in data.get("edges", []):
        if len(edge) != 2:
            raise SerializationError(f"invalid edge entry {edge!r}")
        src, dst = str(edge[0]), str(edge[1])
        if src not in nodes or dst not in nodes:
            raise SerializationError(f"edge {edge!r} references an unknown node")
        edges.append((src, dst))
    offloaded = data.get("offloaded_node")
    if offloaded is not None:
        offloaded = str(offloaded)
        if offloaded not in nodes:
            raise SerializationError(
                f"offloaded node {offloaded!r} is not part of the node mapping"
            )
    try:
        task = DagTask.from_wcets(
            nodes,
            edges,
            offloaded_node=offloaded,
            period=data.get("period"),
            deadline=data.get("deadline"),
            name=str(data.get("name", "tau")),
        )
    except Exception as error:  # noqa: BLE001 - wrap as serialisation problem
        raise SerializationError(f"cannot build task from document: {error}") from error
    task.metadata.update(data.get("metadata", {}))
    return task


def task_to_json(task: DagTask, indent: int = 2) -> str:
    """Serialise a task to a JSON string."""
    return json.dumps(task_to_dict(task), indent=indent)


def task_from_json(document: str) -> DagTask:
    """Parse a task from a JSON string."""
    try:
        data = json.loads(document)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return task_from_dict(data)


def save_task(task: DagTask, path: Union[str, Path]) -> Path:
    """Write a task to a JSON file and return the path."""
    destination = Path(path)
    destination.write_text(task_to_json(task) + "\n", encoding="utf-8")
    return destination


def load_task(path: Union[str, Path]) -> DagTask:
    """Read a task from a JSON file."""
    return task_from_json(Path(path).read_text(encoding="utf-8"))


def taskset_to_dict(tasks: TaskSet) -> dict:
    """Convert a task set to a JSON-serialisable dictionary."""
    return {"name": tasks.name, "tasks": [task_to_dict(task) for task in tasks]}


def taskset_from_dict(data: dict) -> TaskSet:
    """Inverse of :func:`taskset_to_dict`."""
    tasks = [task_from_dict(entry) for entry in data.get("tasks", [])]
    return TaskSet(tasks=tasks, name=str(data.get("name", "taskset")))


def save_taskset(tasks: TaskSet, path: Union[str, Path]) -> Path:
    """Write a task set to a JSON file and return the path."""
    destination = Path(path)
    destination.write_text(
        json.dumps(taskset_to_dict(tasks), indent=2) + "\n", encoding="utf-8"
    )
    return destination


def load_taskset(path: Union[str, Path]) -> TaskSet:
    """Read a task set from a JSON file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return taskset_from_dict(data)
