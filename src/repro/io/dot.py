"""Graphviz DOT export / import of heterogeneous DAG tasks.

The DOT exporter makes the transformation visually inspectable (the paper's
Figures 1-4 are exactly such drawings): the offloaded node is drawn as a grey
box, the synchronisation node as a red square and the ``G_par`` nodes (when a
:class:`~repro.core.transformation.TransformedTask` is exported) with a blue
border.  The importer supports the subset of DOT that the exporter emits plus
hand-written files using ``label="name (wcet)"`` or ``wcet=<value>``
attributes, which is sufficient for round-tripping and for authoring small
examples by hand.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Union

from ..core.exceptions import SerializationError
from ..core.task import DagTask
from ..core.transformation import TransformedTask

__all__ = ["task_to_dot", "transformed_to_dot", "task_from_dot", "save_dot", "load_dot"]


def _quote(identifier: object) -> str:
    return '"' + str(identifier).replace('"', r"\"") + '"'


def task_to_dot(task: DagTask, graph_name: str = "task") -> str:
    """Render a task as a Graphviz ``digraph`` document."""
    lines = [f"digraph {_quote(graph_name)} {{", "  rankdir=LR;"]
    for node in task.graph.nodes():
        wcet = task.graph.wcet(node)
        attributes = [f'label="{node} ({wcet:g})"', f"wcet={wcet:g}"]
        if node == task.offloaded_node:
            attributes += ["shape=box", "style=filled", "fillcolor=lightgrey", "offloaded=true"]
        lines.append(f"  {_quote(node)} [{', '.join(attributes)}];")
    for src, dst in task.graph.edges():
        lines.append(f"  {_quote(src)} -> {_quote(dst)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def transformed_to_dot(transformed: TransformedTask, graph_name: str = "task_prime") -> str:
    """Render a transformed task, highlighting ``v_sync`` and ``G_par``."""
    task = transformed.task
    gpar = transformed.gpar_nodes
    lines = [f"digraph {_quote(graph_name)} {{", "  rankdir=LR;"]
    for node in task.graph.nodes():
        wcet = task.graph.wcet(node)
        attributes = [f'label="{node} ({wcet:g})"', f"wcet={wcet:g}"]
        if node == task.offloaded_node:
            attributes += ["shape=box", "style=filled", "fillcolor=lightgrey"]
        elif node == transformed.sync_node:
            attributes += ["shape=square", "style=filled", "fillcolor=indianred"]
        elif node in gpar:
            attributes += ["color=blue", "penwidth=2"]
        lines.append(f"  {_quote(node)} [{', '.join(attributes)}];")
    for src, dst in task.graph.edges():
        style = ""
        if (src, dst) not in transformed.original.graph.edges():
            style = " [color=darkgreen]"
        lines.append(f"  {_quote(src)} -> {_quote(dst)}{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"


_NODE_PATTERN = re.compile(
    r'^\s*"?(?P<name>[\w.\-]+)"?\s*\[(?P<attrs>[^\]]*)\]\s*;?\s*$'
)
_EDGE_PATTERN = re.compile(
    r'^\s*"?(?P<src>[\w.\-]+)"?\s*->\s*"?(?P<dst>[\w.\-]+)"?\s*(\[[^\]]*\])?\s*;?\s*$'
)
_WCET_PATTERN = re.compile(r"wcet\s*=\s*(?P<value>[0-9.]+)")
_LABEL_WCET_PATTERN = re.compile(r'label\s*=\s*"[^"(]*\(\s*(?P<value>[0-9.]+)\s*\)"')
_OFFLOADED_PATTERN = re.compile(r"offloaded\s*=\s*true", re.IGNORECASE)


def task_from_dot(document: str, name: str = "tau") -> DagTask:
    """Parse a task from the DOT subset produced by :func:`task_to_dot`.

    Node WCETs are taken from a ``wcet=<value>`` attribute or, failing that,
    from a ``label="... (<value>)"`` suffix; nodes without either get WCET 0.
    A node carrying ``offloaded=true`` (or filled light-grey by the exporter)
    becomes the offloaded node.
    """
    wcets: dict[str, float] = {}
    edges: list[tuple[str, str]] = []
    offloaded: Optional[str] = None
    for raw_line in document.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("digraph", "{", "}", "//", "#", "rankdir")):
            continue
        edge_match = _EDGE_PATTERN.match(line)
        if edge_match:
            src, dst = edge_match.group("src"), edge_match.group("dst")
            wcets.setdefault(src, 0.0)
            wcets.setdefault(dst, 0.0)
            edges.append((src, dst))
            continue
        node_match = _NODE_PATTERN.match(line)
        if node_match:
            node = node_match.group("name")
            attrs = node_match.group("attrs")
            wcet_match = _WCET_PATTERN.search(attrs) or _LABEL_WCET_PATTERN.search(attrs)
            wcets[node] = float(wcet_match.group("value")) if wcet_match else 0.0
            if _OFFLOADED_PATTERN.search(attrs) or "fillcolor=lightgrey" in attrs:
                offloaded = node
            continue
        raise SerializationError(f"cannot parse DOT line: {raw_line!r}")
    if not wcets:
        raise SerializationError("DOT document contains no nodes")
    return DagTask.from_wcets(wcets, edges, offloaded_node=offloaded, name=name)


def save_dot(task: Union[DagTask, TransformedTask], path: Union[str, Path]) -> Path:
    """Write a task (or transformed task) to a ``.dot`` file."""
    destination = Path(path)
    if isinstance(task, TransformedTask):
        destination.write_text(transformed_to_dot(task), encoding="utf-8")
    else:
        destination.write_text(task_to_dot(task), encoding="utf-8")
    return destination


def load_dot(path: Union[str, Path], name: str = "tau") -> DagTask:
    """Read a task from a ``.dot`` file."""
    return task_from_dot(Path(path).read_text(encoding="utf-8"), name=name)
