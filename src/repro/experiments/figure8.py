"""Figure 8 -- occurrence of the Theorem 1 execution scenarios.

Section 5.4 first analyses how often each of the three scenarios of
Theorem 1 occurs for randomly generated large tasks when the offloaded
fraction grows.  The expected shape (per the paper):

* Scenario 1 (``v_off`` off the critical path) dominates while
  ``C_off`` is below roughly 8 % of the volume -- and its frequency does not
  depend on ``m``;
* Scenario 2.2 takes over as ``v_off`` joins the critical path while
  ``C_off`` is still below ``R_hom(G_par)``;
* Scenario 2.1 grows for large fractions, earlier for larger ``m`` (more host
  parallelism makes ``R_hom(G_par)`` smaller).

The crossing between Scenarios 2.1 and 2.2 -- i.e. ``C_off = R_hom(G_par)``
-- is where the benefit of ``R_het`` over ``R_hom`` peaks (Figure 9).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.heterogeneous import classify_scenario
from ..analysis.results import Scenario
from ..core.task import DagTask
from ..core.transformation import transform
from ..generator.config import GeneratorConfig, OffloadConfig
from ..generator.presets import LARGE_TASKS_FIG6
from ..generator.sweep import chunked_offload_fraction_sweep
from ..parallel import parallel_map
from .base import ExperimentResult, ExperimentSeries
from .config import ExperimentScale, quick_scale

__all__ = ["run_figure8"]

_SCENARIO_LABELS = {
    Scenario.SCENARIO_1: "scenario 1",
    Scenario.SCENARIO_2_1: "scenario 2.1",
    Scenario.SCENARIO_2_2: "scenario 2.2",
}


def _classify_point(
    args: tuple[list[DagTask], tuple[int, ...]]
) -> dict[int, dict[Scenario, int]]:
    """Worker: classify one sweep point's tasks for every host size.

    Each task is transformed once (Algorithm 1 does not depend on ``m``);
    the per-core classifications then reuse the memoised ``R_hom(G_par)``.
    """
    tasks, core_counts = args
    transformed_tasks = [transform(task) for task in tasks]
    counts_by_cores: dict[int, dict[Scenario, int]] = {}
    for cores in core_counts:
        counts = {scenario: 0 for scenario in _SCENARIO_LABELS}
        for transformed in transformed_tasks:
            counts[classify_scenario(transformed, cores)] += 1
        counts_by_cores[cores] = counts
    return counts_by_cores


def run_figure8(
    scale: Optional[ExperimentScale] = None,
    generator_config: GeneratorConfig = LARGE_TASKS_FIG6,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 8 of the paper.

    Parameters
    ----------
    jobs:
        Worker-process count; results are bit-identical to the serial path.
        Both stages honour it: generation uses the chunked seeded scheme
        (:func:`~repro.generator.sweep.chunked_offload_fraction_sweep`,
        draw-identical for any worker count) and the deterministic
        classification is distributed per sweep point.

    Returns
    -------
    ExperimentResult
        Three series per host size ``m`` (one per scenario) giving the
        percentage of generated tasks classified into that scenario at each
        offloaded fraction.
    """
    scale = scale or quick_scale()
    points = chunked_offload_fraction_sweep(
        fractions=scale.fractions,
        dags_per_point=scale.dags_per_point,
        generator_config=generator_config,
        offload_config=OffloadConfig(),
        root_seed=scale.seed + 8,
        jobs=jobs,
    )

    result = ExperimentResult(
        name="figure8",
        title="Percentage of scenario occurrence",
        x_label="C_off / vol(G)",
        y_label="occurrence [%]",
        metadata={
            "dags_per_point": scale.dags_per_point,
            "seed": scale.seed,
        },
    )

    core_counts = tuple(scale.core_counts)
    counts_per_point = parallel_map(
        _classify_point, [(point.tasks, core_counts) for point in points], jobs=jobs
    )

    for cores in core_counts:
        series_by_scenario = {
            scenario: ExperimentSeries(label=f"{label} m={cores}")
            for scenario, label in _SCENARIO_LABELS.items()
        }
        for point, counts_by_cores in zip(points, counts_per_point):
            counts = counts_by_cores[cores]
            total = max(1, len(point.tasks))
            for scenario, series in series_by_scenario.items():
                series.append(point.fraction, 100.0 * counts[scenario] / total)
        for series in series_by_scenario.values():
            result.add_series(series)
    return result
