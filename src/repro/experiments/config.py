"""Experiment-scale configuration: paper-scale vs quick (CI-scale) runs.

The paper generates "100 DAGs for each target value of ``C_off``" and sweeps
many fractions and four host sizes; running that takes minutes to hours in
pure Python (and the ILP experiment took the original authors up to 12 hours
per instance with CPLEX).  Every experiment driver therefore takes an
:class:`ExperimentScale` with two stock instances:

* :func:`paper_scale` -- the parameters of the paper (100 DAGs per point,
  full fraction grids, all of ``m in {2, 4, 8, 16}``);
* :func:`quick_scale` -- a small but statistically meaningful configuration
  used by the benchmark harness and the test-suite, tuned to finish in
  seconds while still reproducing the qualitative shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "ExperimentScale",
    "quick_scale",
    "paper_scale",
    "figure7_paper_scale",
]


def _default_fractions() -> list[float]:
    return [0.01, 0.02, 0.04, 0.08, 0.12, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70]


def _default_small_fractions() -> list[float]:
    return [0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50]


@dataclass(frozen=True)
class ExperimentScale:
    """Sampling effort of an experiment run.

    Attributes
    ----------
    dags_per_point:
        Number of random DAG tasks generated per ``C_off`` fraction.
    core_counts:
        Host sizes ``m`` to evaluate.
    fractions:
        ``C_off / vol`` grid for the large-task experiments (Figures 6, 8, 9).
    small_task_fractions:
        ``C_off / vol`` grid for the ILP experiment (Figure 7), usually
        coarser because every point requires exact makespans.
    ilp_node_range:
        Node-count range of the small tasks used against the ILP.
    ilp_wcet_max:
        Upper bound of the WCET distribution for the ILP experiment.  The
        paper uses 100 with a 12-hour CPLEX budget; the reproduction defaults
        to a smaller value so the HiGHS models stay small (the relative
        comparison between bounds and optimum is unaffected by the WCET
        scale).
    ilp_time_limit:
        Per-instance HiGHS time limit in seconds.
    seed:
        Root seed of all random draws.
    """

    dags_per_point: int = 100
    core_counts: tuple[int, ...] = (2, 4, 8, 16)
    fractions: list[float] = field(default_factory=_default_fractions)
    small_task_fractions: list[float] = field(default_factory=_default_small_fractions)
    ilp_node_range: tuple[int, int] = (3, 20)
    ilp_wcet_max: int = 100
    ilp_time_limit: float | None = None
    seed: int = 2018

    def with_seed(self, seed: int) -> "ExperimentScale":
        """Return a copy with a different root seed."""
        return replace(self, seed=seed)

    def with_dags_per_point(self, count: int) -> "ExperimentScale":
        """Return a copy with a different number of DAGs per sweep point."""
        return replace(self, dags_per_point=count)


def paper_scale() -> ExperimentScale:
    """The sampling effort of the original paper (slow in pure Python)."""
    return ExperimentScale(
        dags_per_point=100,
        core_counts=(2, 4, 8, 16),
        fractions=[0.0012, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.14, 0.20,
                   0.28, 0.32, 0.40, 0.50, 0.60, 0.70],
        small_task_fractions=[0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30,
                              0.40, 0.50],
        ilp_node_range=(3, 20),
        ilp_wcet_max=100,
        ilp_time_limit=None,
        seed=2018,
    )


def figure7_paper_scale() -> ExperimentScale:
    """Figure 7 at the paper's WCET range (``ilp_wcet_max = 100``).

    The WCET range is the property that matters scientifically (the paper
    used WCETs in ``[1, 100]`` with a 12-hour CPLEX budget per instance;
    the reproduction's quick scale shrinks it to keep the time-indexed
    models small).  Two documented substitutions keep the recorded run
    bounded on one machine: 25 DAGs per sweep point instead of 100 (the
    quick-scale golden already pins the full pipeline bit-exactly; the
    paper-scale run is about the WCET range), and a 60 s per-instance
    oracle cap standing in for the 12-hour budget -- the PR-2 oracles
    solve the overwhelming majority of instances optimally well within
    it, and ``run_figure7`` records every trip
    (``non_optimal_oracle_results`` in the result metadata; a tripped
    HiGHS solve degrades to the verified warm-start incumbent).
    """
    return replace(paper_scale(), dags_per_point=25, ilp_time_limit=60.0)


def quick_scale() -> ExperimentScale:
    """A seconds-scale configuration preserving the qualitative shapes."""
    return ExperimentScale(
        dags_per_point=12,
        core_counts=(2, 8),
        fractions=[0.01, 0.04, 0.10, 0.20, 0.35, 0.50],
        small_task_fractions=[0.05, 0.20, 0.40],
        ilp_node_range=(3, 12),
        ilp_wcet_max=10,
        ilp_time_limit=10.0,
        seed=2018,
    )
