"""Plain-text rendering of experiment results.

The original paper presents its evaluation as figures; this reproduction
prints the same data as fixed-width text tables (one row per ``C_off``
fraction, one column per host size or bound), which is what the benchmark
harness emits and what EXPERIMENTS.md quotes.  CSV export is provided for
users who want to re-plot the curves with their favourite tool.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

from .base import ExperimentResult

__all__ = ["format_table", "render_result", "to_csv", "write_csv"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as a fixed-width text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Iterable of row sequences; floats are formatted with
        ``float_format``, everything else with ``str``.
    float_format:
        Format string applied to float cells.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(str(h).rjust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_result(result: ExperimentResult, float_format: str = "{:.2f}") -> str:
    """Render an :class:`ExperimentResult` as a titled text table."""
    headers = list(result.column_names())
    rows = [[row[name] for name in headers] for row in result.rows()]
    table = format_table(headers, rows, float_format)
    title = f"{result.title}\n({result.x_label} vs {result.y_label})"
    return f"{title}\n{table}"


def to_csv(result: ExperimentResult) -> str:
    """Serialise an :class:`ExperimentResult` to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    headers = list(result.column_names())
    writer.writerow(headers)
    for row in result.rows():
        writer.writerow([row[name] for name in headers])
    return buffer.getvalue()


def write_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write :func:`to_csv` output to a file and return the path."""
    destination = Path(path)
    destination.write_text(to_csv(result), encoding="utf-8")
    return destination
