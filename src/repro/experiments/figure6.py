"""Figure 6 -- impact of the DAG transformation on average performance.

The experiment of Section 5.2: simulate the execution of the original task
``tau`` and of the transformed task ``tau'`` under the work-conserving
breadth-first (GOMP) scheduler, on hosts with ``m in {2, 4, 8, 16}`` cores
plus one accelerator, for random large tasks (``n in [100, 250]``), sweeping
the offloaded workload ``C_off`` from 1 % to 70 % of the task volume.  The
reported metric is the *percentage change of the average execution time of*
``tau`` *with respect to* ``tau'``:

* negative values -- the synchronisation node hurts: ``tau`` is faster than
  ``tau'`` (observed for small ``C_off``, more strongly for larger ``m``);
* positive values -- the transformation pays off: forcing ``G_par`` to run
  while ``v_off`` executes avoids the host idling of Figure 1(c).

The paper reports the crossover at roughly 11 %, 8 %, 6 % and 4.5 % of the
volume for ``m = 2, 4, 8, 16`` and peak slowdowns of the original task of
about 24 % (m = 2) down to 4 % (m = 16).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.comparison import percentage_change
from ..core.task import DagTask
from ..core.transformation import transform
from ..generator.config import GeneratorConfig, OffloadConfig
from ..generator.presets import LARGE_TASKS_FIG6
from ..generator.sweep import chunked_offload_fraction_sweep
from ..parallel import parallel_map, spawn_seeds
from ..simulation.batch import simulate_many
from ..simulation.platform import Platform
from ..simulation.schedulers import BreadthFirstPolicy, SchedulingPolicy
from .base import ExperimentResult, ExperimentSeries
from .config import ExperimentScale, quick_scale

__all__ = ["run_figure6"]


def _evaluate_point(
    args: tuple[list[DagTask], tuple[int, ...], SchedulingPolicy, int]
) -> list[tuple[float, float]]:
    """Worker: simulate one sweep point for every host size.

    The tasks are transformed once (Algorithm 1 does not depend on ``m``)
    and both variants run through the batched simulator (the vectorised
    lockstep kernel behind :func:`~repro.simulation.batch.simulate_many`):
    each variant is compiled once and that single compile serves every
    ``(cores, variant)`` cell of the point, all cells advancing as lanes
    of one numpy batch.  Returns one ``(average original, average
    transformed)`` makespan pair per core count.
    """
    tasks, core_counts, policy, policy_seed = args
    transformed_tasks = [transform(task).task for task in tasks]
    platforms = [Platform(host_cores=cores, accelerators=1) for cores in core_counts]
    makespans = simulate_many(
        tasks + transformed_tasks, platforms, policy, root_seed=policy_seed
    )
    count = len(tasks)
    return [
        (
            float(np.mean(makespans[:count, core_index, 0])),
            float(np.mean(makespans[count:, core_index, 0])),
        )
        for core_index in range(len(core_counts))
    ]


def run_figure6(
    scale: Optional[ExperimentScale] = None,
    generator_config: GeneratorConfig = LARGE_TASKS_FIG6,
    policy: Optional[SchedulingPolicy] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 6 of the paper.

    Parameters
    ----------
    scale:
        Sampling effort; defaults to :func:`~repro.experiments.config.quick_scale`.
    generator_config:
        Structural distribution of the random tasks (defaults to the paper's
        large-task preset restricted to ``n in [100, 250]``).
    policy:
        Scheduling policy used for both tasks; defaults to the GOMP-style
        breadth-first policy.  The scheduler ablation benchmark passes other
        policies here.
    jobs:
        Number of worker processes; ``None``/``1`` runs serially.  Both
        stages honour it with bit-identical results: generation uses the
        chunked seeded scheme
        (:func:`~repro.generator.sweep.chunked_offload_fraction_sweep`,
        draw-identical for any worker count), and the simulation sweep
        distributes one chunk per point, each point receiving its own policy
        via :meth:`~repro.simulation.schedulers.SchedulingPolicy.spawned`
        (deterministic policies: a plain copy; ``RandomPolicy``: reseeded
        per point).

    Returns
    -------
    ExperimentResult
        One series per host size ``m``; x is the target ``C_off`` fraction,
        y the percentage change of the average makespan of ``tau`` with
        respect to ``tau'``.
    """
    scale = scale or quick_scale()
    policy = policy or BreadthFirstPolicy()
    points = chunked_offload_fraction_sweep(
        fractions=scale.fractions,
        dags_per_point=scale.dags_per_point,
        generator_config=generator_config,
        offload_config=OffloadConfig(),
        root_seed=scale.seed,
        jobs=jobs,
    )

    result = ExperimentResult(
        name="figure6",
        title="Percentage change of the average execution time of tau w.r.t. tau'",
        x_label="C_off / vol(G)",
        y_label="percentage change of average makespan [%]",
        metadata={
            "dags_per_point": scale.dags_per_point,
            "policy": policy.name,
            "generator": "large tasks, n in "
            f"[{generator_config.n_min}, {generator_config.n_max}]",
            "seed": scale.seed,
        },
    )

    core_counts = tuple(scale.core_counts)
    # Each sweep point gets its own policy instance (deterministic policies:
    # a plain copy; RandomPolicy: reseeded from a spawned child seed so the
    # points draw independent streams in any execution order); the same
    # child seed roots the point's simulate_many chunk spawning.
    work = [
        (point.tasks, core_counts, policy.spawned(seed), seed)
        for point, seed in zip(points, spawn_seeds(scale.seed, len(points)))
    ]
    rows_per_point = parallel_map(_evaluate_point, work, jobs=jobs)

    for core_index, cores in enumerate(core_counts):
        series = ExperimentSeries(label=f"m={cores}")
        for point, rows in zip(points, rows_per_point):
            average_original, average_transformed = rows[core_index]
            series.append(
                point.fraction,
                percentage_change(average_original, average_transformed),
            )
        series.metadata["crossover_fraction"] = series.crossover()
        result.add_series(series)
    return result
