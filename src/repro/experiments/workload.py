"""Schedulability under load: deadline-miss ratio vs offered utilisation.

The single-job experiments (Figures 6--9) evaluate one DAG instance in
isolation.  This driver asks the online question instead: a fixed set of
periodic job streams shares one platform, the streams' periods are scaled
so the *offered host utilisation* sweeps a grid, and every released
instance contends for the same core/accelerator pool under the
shared-capacity coupled simulator
(:func:`repro.simulation.workload.simulate_workload`).  The reported curve
is the deadline-miss ratio per utilisation point -- the classic
schedulability-under-load shape: flat near zero while the platform keeps
up, then a sharp knee once the backlog starts compounding.

Construction, all seeded from the scale's root seed:

* a fixed set of small heterogeneous tasks (one offloaded region each) is
  generated once and reused at every sweep point, so the curve varies only
  the load, never the workload mix;
* stream ``i`` gets ``period_i = S * host_volume_i / (U * m)``, which makes
  the host utilisation sum to exactly ``U * m`` for ``S`` streams on ``m``
  cores; deadlines are implicit (relative deadline = period);
* releases are periodic with seeded jitter, and the horizon is a fixed
  multiple of the mean period so every point simulates a comparable number
  of instances.

Each (utilisation, policy) cell is deterministic, so the sweep is
distributed over worker processes with bit-identical results
(``jobs=N`` == serial; the golden test pins this).
"""

from __future__ import annotations

from typing import Optional

from ..core.task import DagTask
from ..generator.arrivals import PeriodicArrivals
from ..generator.config import OffloadConfig
from ..generator.offload import make_heterogeneous
from ..generator.presets import SMALL_TASKS
from ..generator.random_dag import DagStructureGenerator
from ..parallel import parallel_map, spawn_seeds
from ..simulation.platform import Platform
from ..simulation.schedulers import policy_by_name
from ..simulation.workload import JobStream, build_workload, simulate_workload
from .base import ExperimentResult, ExperimentSeries
from .config import ExperimentScale, quick_scale

__all__ = ["run_workload_schedulability", "UTILISATION_GRID"]

#: Offered host-utilisation grid (fraction of ``m`` cores kept busy by the
#: aggregate stream volume).  Spans well past 1.0 so the knee and the
#: saturated regime are both on the plot.
UTILISATION_GRID = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6)

#: Ready-queue policies contrasted in the curve.
POLICIES = ("breadth-first", "depth-first")

#: Shared platform of the sweep: 4 host cores, 1 accelerator.
HOST_CORES = 4
ACCELERATORS = 1

#: Horizon as a multiple of the mean stream period, so every sweep point
#: simulates a comparable number of released instances.
HORIZON_PERIODS = 12.0

#: Release jitter as a fraction of the stream's period.
JITTER_FRACTION = 0.1

#: Offloaded fraction of each generated task (one accelerator region).
OFFLOAD_FRACTION = 0.15


def _stream_tasks(scale: ExperimentScale) -> list[DagTask]:
    """The fixed task set shared by every sweep point, seeded once."""
    count = max(2, min(8, scale.dags_per_point // 3))
    config = SMALL_TASKS.with_node_range(8, 40)
    tasks = []
    for index, seed in enumerate(spawn_seeds(scale.seed + 11, count)):
        base = DagStructureGenerator(config, seed).generate_task(f"tau_{index}")
        tasks.append(
            make_heterogeneous(
                base,
                OffloadConfig(),
                rng=seed + 1,
                target_fraction=OFFLOAD_FRACTION,
            )
        )
    return tasks


def _streams_for(
    tasks: list[DagTask], utilisation: float, seed: int
) -> tuple[list[JobStream], float]:
    """``(streams, horizon)`` realising one offered-utilisation point."""
    count = len(tasks)
    periods = [
        count * task.volume / (utilisation * HOST_CORES) for task in tasks
    ]
    streams = [
        JobStream(
            task=task,
            arrivals=PeriodicArrivals(
                period=period,
                jitter=JITTER_FRACTION * period,
                seed=seed + index,
            ),
            deadline=period,
            name=task.name,
        )
        for index, (task, period) in enumerate(zip(tasks, periods))
    ]
    horizon = HORIZON_PERIODS * sum(periods) / count
    return streams, horizon


def _evaluate_point(
    args: tuple[list[DagTask], float, str, int]
) -> dict[str, float]:
    """Worker: simulate one (utilisation, policy) cell of the sweep."""
    tasks, utilisation, policy_name, seed = args
    streams, horizon = _streams_for(tasks, utilisation, seed)
    workload = build_workload(streams, horizon)
    result = simulate_workload(
        workload,
        Platform(host_cores=HOST_CORES, accelerators=ACCELERATORS),
        policy_by_name(policy_name),
        backend="auto",
    )
    return {
        "miss_ratio": result.miss_ratio(),
        "instances": float(result.count),
        "mean_response": result.mean_response(),
        "peak_backlog": float(result.peak_backlog()),
    }


def run_workload_schedulability(
    scale: Optional[ExperimentScale] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Deadline-miss ratio vs offered utilisation on one shared platform.

    Parameters
    ----------
    scale:
        Sampling effort; only ``dags_per_point`` (stream count) and ``seed``
        are consulted.  ``None`` uses the quick preset.
    jobs:
        Worker-process count for the sweep; results are bit-identical to
        the serial path (each cell is a deterministic seeded simulation).

    Returns
    -------
    ExperimentResult
        One series per ready-queue policy giving the deadline-miss ratio
        at each offered host utilisation.
    """
    scale = scale or quick_scale()
    tasks = _stream_tasks(scale)
    cells = [
        (tasks, utilisation, policy, scale.seed + 23)
        for policy in POLICIES
        for utilisation in UTILISATION_GRID
    ]
    metrics = parallel_map(_evaluate_point, cells, jobs=jobs)

    result = ExperimentResult(
        name="workload-schedulability",
        title="Deadline-miss ratio under offered load (shared platform)",
        x_label="offered host utilisation U",
        y_label="deadline-miss ratio",
        metadata={
            "streams": len(tasks),
            "host_cores": HOST_CORES,
            "accelerators": ACCELERATORS,
            "horizon_periods": HORIZON_PERIODS,
            "jitter_fraction": JITTER_FRACTION,
            "offload_fraction": OFFLOAD_FRACTION,
            "seed": scale.seed,
            "instances_per_point": [
                metric["instances"] for metric in metrics[: len(UTILISATION_GRID)]
            ],
        },
    )
    for policy_index, policy in enumerate(POLICIES):
        series = ExperimentSeries(label=policy)
        for point_index, utilisation in enumerate(UTILISATION_GRID):
            metric = metrics[policy_index * len(UTILISATION_GRID) + point_index]
            series.append(utilisation, metric["miss_ratio"])
        result.add_series(series)
    return result
