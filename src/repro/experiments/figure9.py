"""Figure 9 -- homogeneous vs heterogeneous response-time bounds.

Section 5.4's headline comparison: the percentage change of ``R_hom(tau)``
with respect to ``R_het(tau')`` for random large tasks while sweeping the
offloaded fraction and the host size.  Expected shape (per the paper):

* ``R_het`` improves over ``R_hom`` for all but very small fractions (the
  crossover is below ~1.6-5 % depending on ``m``);
* the improvement grows with ``C_off``, peaks around the fraction where
  ``C_off = R_hom(G_par)`` (32 %, 20 %, 14 %, 10 % of the volume for
  ``m = 2, 4, 8, 16``), where the paper reports gains of 70 %, 55 %, 40 % and
  30 % respectively;
* the gain shrinks as ``m`` grows because the interference term is divided by
  ``m``.

Besides the average curves the driver records, per host size, the maximum
observed difference (the paper quotes 95.0 %, 82.5 %, 65.3 % and 47.7 %).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.comparison import compare
from ..core.task import DagTask
from ..core.transformation import transform
from ..generator.config import GeneratorConfig, OffloadConfig
from ..generator.presets import LARGE_TASKS_FIG6
from ..generator.sweep import chunked_offload_fraction_sweep
from ..parallel import parallel_map
from .base import ExperimentResult, ExperimentSeries
from .config import ExperimentScale, quick_scale

__all__ = ["run_figure9"]


def _compare_point(
    args: tuple[list[DagTask], tuple[int, ...]]
) -> dict[int, tuple[float, float]]:
    """Worker: compare the two bounds over one sweep point for every ``m``.

    Transforms each task once and returns ``(mean gain, max gain)`` per host
    size; means and maxima compose across points without loss.
    """
    tasks, core_counts = args
    pairs = [(task, transform(task)) for task in tasks]
    stats: dict[int, tuple[float, float]] = {}
    for cores in core_counts:
        gains = [compare(task, cores, transformed).gain_percent() for task, transformed in pairs]
        stats[cores] = (float(np.mean(gains)), float(max(gains)))
    return stats


def run_figure9(
    scale: Optional[ExperimentScale] = None,
    generator_config: GeneratorConfig = LARGE_TASKS_FIG6,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 9 of the paper.

    Parameters
    ----------
    jobs:
        Worker-process count; results are bit-identical to the serial path.
        Both stages honour it: generation uses the chunked seeded scheme
        (:func:`~repro.generator.sweep.chunked_offload_fraction_sweep`,
        draw-identical for any worker count) and the deterministic bound
        comparison is distributed per sweep point.

    Returns
    -------
    ExperimentResult
        One series per host size ``m``; x is the offloaded fraction, y the
        average percentage change of ``R_hom(tau)`` with respect to
        ``R_het(tau')``.  Each series' metadata records the maximum observed
        difference and the fraction at which the average peaks.
    """
    scale = scale or quick_scale()
    points = chunked_offload_fraction_sweep(
        fractions=scale.fractions,
        dags_per_point=scale.dags_per_point,
        generator_config=generator_config,
        offload_config=OffloadConfig(),
        root_seed=scale.seed + 9,
        jobs=jobs,
    )

    result = ExperimentResult(
        name="figure9",
        title="Percentage change of R_hom(tau) w.r.t. R_het(tau')",
        x_label="C_off / vol(G)",
        y_label="percentage change [%]",
        metadata={
            "dags_per_point": scale.dags_per_point,
            "seed": scale.seed,
        },
    )

    core_counts = tuple(scale.core_counts)
    stats_per_point = parallel_map(
        _compare_point, [(point.tasks, core_counts) for point in points], jobs=jobs
    )

    for cores in core_counts:
        series = ExperimentSeries(label=f"m={cores}")
        max_difference = 0.0
        for point, stats in zip(points, stats_per_point):
            mean_gain, max_gain = stats[cores]
            max_difference = max(max_difference, max_gain)
            series.append(point.fraction, mean_gain)
        peak_x, peak_y = series.max_point()
        series.metadata.update(
            {
                "max_observed_difference": max_difference,
                "peak_fraction": peak_x,
                "peak_gain": peak_y,
                "crossover_fraction": series.crossover(),
            }
        )
        result.add_series(series)
    return result
