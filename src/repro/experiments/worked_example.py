"""Figures 1 and 2 -- the worked example of the paper, as a checkable table.

The motivating example of Section 3.2 packs the whole argument of the paper
into six nodes: the homogeneous bound, the *unsafe* naive reduction, a
work-conserving schedule that violates the naive bound, and the transformed
task whose schedule is both faster and safely bounded.  This driver
recomputes every number quoted in the text and returns them as a result
table; the regression test asserts exact equality with the paper.
"""

from __future__ import annotations

from ..analysis.heterogeneous import naive_unsafe_response_time
from ..analysis.heterogeneous import response_time as heterogeneous_response_time
from ..analysis.homogeneous import response_time as homogeneous_response_time
from ..core.examples import figure1_task
from ..core.transformation import transform
from ..simulation.engine import simulate_makespan
from ..simulation.platform import Platform
from ..simulation.worst_case import exhaustive_worst_case
from .base import ExperimentResult, ExperimentSeries

__all__ = ["run_worked_example", "EXPECTED_VALUES"]

#: The values quoted in Sections 3.2 and 3.3 of the paper for Figures 1 & 2.
EXPECTED_VALUES: dict[str, float] = {
    "vol(G)": 18.0,
    "len(G)": 8.0,
    "R_hom": 13.0,
    "naive_bound": 11.0,
    "worst_case_makespan_original": 12.0,
    "len(G')": 10.0,
    "makespan_transformed_breadth_first": 10.0,
    "R_het": 12.0,
}


def run_worked_example(cores: int = 2) -> ExperimentResult:
    """Recompute every quantity of the Figure 1/2 worked example.

    Parameters
    ----------
    cores:
        Host size; the paper's example uses ``m = 2``.

    Returns
    -------
    ExperimentResult
        A single series whose x values index the metrics (in the order of
        :data:`EXPECTED_VALUES`) and whose metadata carries a name -> value
        mapping for readable access.
    """
    task = figure1_task()
    platform = Platform(host_cores=cores, accelerators=1)
    transformed = transform(task)

    values: dict[str, float] = {
        "vol(G)": task.volume,
        "len(G)": task.critical_path_length,
        "R_hom": homogeneous_response_time(task, cores).bound,
        "naive_bound": naive_unsafe_response_time(task, cores).bound,
        "worst_case_makespan_original": exhaustive_worst_case(task, platform).makespan,
        "len(G')": transformed.transformed_length(),
        "makespan_transformed_breadth_first": simulate_makespan(
            transformed.task, platform
        ),
        "R_het": heterogeneous_response_time(transformed, cores).bound,
    }

    series = ExperimentSeries(label=f"m={cores}", metadata={"values": values})
    for index, (name, value) in enumerate(values.items()):
        series.append(float(index), value)

    result = ExperimentResult(
        name="worked-example",
        title="Figure 1/2 worked example (Sections 3.2-3.3)",
        x_label="metric index",
        y_label="value",
        metadata={"metric_names": list(values), "expected": EXPECTED_VALUES},
    )
    result.add_series(series)
    return result
