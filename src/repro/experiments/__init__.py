"""Experiment drivers regenerating every figure of the paper's evaluation.

* :mod:`repro.experiments.worked_example` -- Figures 1 & 2 (Sections 3.2-3.3);
* :mod:`repro.experiments.figure6` -- impact of the transformation on average
  performance (Section 5.2);
* :mod:`repro.experiments.figure7` -- accuracy against the ILP optimum
  (Section 5.3);
* :mod:`repro.experiments.figure8` -- scenario occurrence (Section 5.4);
* :mod:`repro.experiments.figure9` -- homogeneous vs heterogeneous bounds
  (Section 5.4);
* :mod:`repro.experiments.ablations` -- scheduler- and oracle-sensitivity
  studies added by the reproduction;
* :mod:`repro.experiments.workload` -- schedulability under load: deadline-
  miss ratio of online job streams vs offered utilisation (reproduction
  extension);
* :mod:`repro.experiments.runner` -- single entry point for all of the above;
* :mod:`repro.experiments.tables` -- text-table / CSV rendering.
"""

from .base import ExperimentResult, ExperimentSeries
from .config import ExperimentScale, paper_scale, quick_scale
from .figure6 import run_figure6
from .figure7 import run_figure7
from .figure8 import run_figure8
from .figure9 import run_figure9
from .ablations import run_ilp_ablation, run_scheduler_ablation
from .runner import EXPERIMENTS, available_experiments, run_all, run_experiment
from .tables import format_table, render_result, to_csv, write_csv
from .worked_example import EXPECTED_VALUES, run_worked_example
from .workload import run_workload_schedulability

__all__ = [
    "ExperimentResult",
    "ExperimentSeries",
    "ExperimentScale",
    "quick_scale",
    "paper_scale",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_worked_example",
    "EXPECTED_VALUES",
    "run_scheduler_ablation",
    "run_ilp_ablation",
    "run_workload_schedulability",
    "run_experiment",
    "run_all",
    "available_experiments",
    "EXPERIMENTS",
    "format_table",
    "render_result",
    "to_csv",
    "write_csv",
]
