"""Figure 7 -- accuracy of the bounds against the optimal makespan.

The experiment of Section 5.3: for *small* tasks (the only sizes the ILP can
handle), compute the minimum makespan of each heterogeneous task with the ILP
solver and report the *increment* (in percent) of the homogeneous bound
``R_hom(tau)`` and of the heterogeneous bound ``R_het(tau')`` over that
optimum, sweeping the offloaded fraction.

The paper shows ``m = 2`` with ``n in [3, 20]`` and ``m = 8`` with
``n in [30, 60]``; the reproduction scales the node range with ``m`` in the
same spirit (see :func:`node_range_for_cores`).  The expected shape: the
pessimism of ``R_het`` shrinks as ``C_off`` grows (below 1 % for large
fractions) while ``R_hom`` keeps growing, with ``R_hom`` better only for very
small fractions.

Substitution note: the paper used CPLEX with up to 12 hours per instance and
WCETs in ``[1, 100]``; the reproduction uses HiGHS with an optional
per-instance time limit and (by default at quick scale) a smaller WCET range,
which keeps the time-indexed models small without affecting the *relative*
comparison between the bounds and the optimum.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..analysis.batch import analyse_many
from ..analysis.comparison import percentage_increment
from ..generator.config import OffloadConfig
from ..generator.presets import SMALL_TASKS
from ..generator.sweep import offload_fraction_sweep
from ..ilp.batch import minimum_makespans_many
from ..ilp.makespan import MakespanMethod
from .base import ExperimentResult, ExperimentSeries
from .config import ExperimentScale, quick_scale

__all__ = ["run_figure7", "node_range_for_cores"]


def node_range_for_cores(scale: ExperimentScale, cores: int) -> tuple[int, int]:
    """Node-count range of the small tasks used against the ILP for ``m``.

    The paper uses ``[3, 20]`` nodes for ``m = 2`` and ``[30, 60]`` for
    ``m = 8`` (larger hosts need larger tasks for the comparison to be
    meaningful).  The reproduction keeps the configured range for ``m <= 2``
    and scales it up by 2.5x for larger hosts, which reproduces the paper's
    ranges when the paper-scale configuration is used.
    """
    low, high = scale.ilp_node_range
    if cores <= 2:
        return (low, high)
    return (high, max(high + 2, int(round(high * 2.5))))


def run_figure7(
    scale: Optional[ExperimentScale] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 7 of the paper.

    Parameters
    ----------
    jobs:
        Worker-process count for the exact-makespan solves and the batched
        bound analysis (task generation stays serial, so results are
        bit-identical to the serial path).

    Returns
    -------
    ExperimentResult
        Two series per host size ``m``: ``R_hom m=<m>`` and ``R_het m=<m>``,
        giving the average percentage increment of each bound over the ILP
        minimum makespan at every offloaded fraction.
    """
    scale = scale or quick_scale()
    rng = np.random.default_rng(scale.seed + 7)

    result = ExperimentResult(
        name="figure7",
        title="Increment of R_hom(tau) and R_het(tau') w.r.t. the minimum makespan",
        x_label="C_off / vol(G)",
        y_label="increment over optimal makespan [%]",
        metadata={
            "dags_per_point": scale.dags_per_point,
            "wcet_max": scale.ilp_wcet_max,
            "ilp_time_limit": scale.ilp_time_limit,
            "seed": scale.seed,
            "oracle": MakespanMethod.AUTO.value,
        },
    )

    # Figure 7 shows m = 2 and m = 8; evaluate whichever of those the scale
    # requests (falling back to the first two configured core counts).
    preferred = [m for m in scale.core_counts if m in (2, 8)] or list(
        scale.core_counts[:2]
    )
    for cores in preferred:
        node_range = node_range_for_cores(scale, cores)
        generator_config = replace(
            SMALL_TASKS,
            n_min=node_range[0],
            n_max=node_range[1],
            c_max=scale.ilp_wcet_max,
        )
        points = offload_fraction_sweep(
            fractions=scale.small_task_fractions,
            dags_per_point=scale.dags_per_point,
            generator_config=generator_config,
            offload_config=OffloadConfig(),
            rng=rng,
            paired=True,
        )
        hom_series = ExperimentSeries(
            label=f"R_hom m={cores}", metadata={"nodes": list(node_range)}
        )
        het_series = ExperimentSeries(
            label=f"R_het m={cores}", metadata={"nodes": list(node_range)}
        )
        # The exact solvers require integer WCETs; round the pinned C_off.
        rounded = [
            [
                task.with_offloaded_wcet(max(1.0, round(task.offloaded_wcet)))
                for task in point.tasks
            ]
            for point in points
        ]
        flat_tasks = [task for point_tasks in rounded for task in point_tasks]
        # One deduplicated, memoised oracle batch over the whole sweep: the
        # paired design re-pins C_off on the same structures, so sweep
        # points whose rounded C_off coincides (the minimum-WCET floor at
        # small fractions) are solved exactly once.
        optima = minimum_makespans_many(
            flat_tasks,
            cores,
            method=MakespanMethod.AUTO,
            time_limit=scale.ilp_time_limit,
            jobs=jobs,
        )
        # A tripped time limit leaves a sub-optimal incumbent in the
        # increments (as with the paper's 12h CPLEX budget); record how
        # often that happened instead of letting it pass silently.
        result.metadata["non_optimal_oracle_results"] = result.metadata.get(
            "non_optimal_oracle_results", 0
        ) + sum(1 for entry in optima if not entry.optimal)
        analyses = analyse_many(flat_tasks, cores=cores, include_naive=False, jobs=jobs)
        cursor = 0
        for point, point_tasks in zip(points, rounded):
            hom_increments = []
            het_increments = []
            for _ in point_tasks:
                optimum = optima[cursor].makespan
                analysis = analyses[cursor]
                hom_increments.append(
                    percentage_increment(analysis.bound(cores, "hom"), optimum)
                )
                het_increments.append(
                    percentage_increment(analysis.bound(cores, "het"), optimum)
                )
                cursor += 1
            hom_series.append(point.fraction, float(np.mean(hom_increments)))
            het_series.append(point.fraction, float(np.mean(het_increments)))
        result.add_series(hom_series)
        result.add_series(het_series)
    return result
