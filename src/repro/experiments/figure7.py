"""Figure 7 -- accuracy of the bounds against the optimal makespan.

The experiment of Section 5.3: for *small* tasks (the only sizes the ILP can
handle), compute the minimum makespan of each heterogeneous task with the ILP
solver and report the *increment* (in percent) of the homogeneous bound
``R_hom(tau)`` and of the heterogeneous bound ``R_het(tau')`` over that
optimum, sweeping the offloaded fraction.

The paper shows ``m = 2`` with ``n in [3, 20]`` and ``m = 8`` with
``n in [30, 60]``; the reproduction scales the node range with ``m`` in the
same spirit (see :func:`node_range_for_cores`).  The expected shape: the
pessimism of ``R_het`` shrinks as ``C_off`` grows (below 1 % for large
fractions) while ``R_hom`` keeps growing, with ``R_hom`` better only for very
small fractions.

Substitution note: the paper used CPLEX with up to 12 hours per instance and
WCETs in ``[1, 100]``; the reproduction uses HiGHS with an optional
per-instance time limit and (by default at quick scale) a smaller WCET range,
which keeps the time-indexed models small without affecting the *relative*
comparison between the bounds and the optimum.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..analysis.comparison import percentage_increment
from ..analysis.heterogeneous import response_time as heterogeneous_response_time
from ..analysis.homogeneous import response_time as homogeneous_response_time
from ..core.task import DagTask
from ..core.transformation import transform
from ..generator.config import OffloadConfig
from ..generator.presets import SMALL_TASKS
from ..generator.sweep import offload_fraction_sweep
from ..ilp.makespan import MakespanMethod, minimum_makespan
from ..parallel import parallel_map
from .base import ExperimentResult, ExperimentSeries
from .config import ExperimentScale, quick_scale

__all__ = ["run_figure7", "node_range_for_cores"]


def _evaluate_point(
    args: tuple[list[DagTask], int, Optional[float]]
) -> tuple[float, float]:
    """Worker: ILP optimum + both bounds over one sweep point.

    The ILP solve dominates the cost of Figure 7, which is why the work is
    chunked per sweep point.  Returns the mean percentage increments of
    ``R_hom`` and ``R_het`` over the optimum.
    """
    tasks, cores, time_limit = args
    hom_increments = []
    het_increments = []
    for task in tasks:
        # The ILP requires integer WCETs; round the pinned C_off.
        task = task.with_offloaded_wcet(max(1.0, round(task.offloaded_wcet)))
        optimum = minimum_makespan(
            task,
            cores,
            method=MakespanMethod.ILP,
            time_limit=time_limit,
        ).makespan
        transformed = transform(task)
        hom = homogeneous_response_time(task, cores).bound
        het = heterogeneous_response_time(transformed, cores).bound
        hom_increments.append(percentage_increment(hom, optimum))
        het_increments.append(percentage_increment(het, optimum))
    return float(np.mean(hom_increments)), float(np.mean(het_increments))


def node_range_for_cores(scale: ExperimentScale, cores: int) -> tuple[int, int]:
    """Node-count range of the small tasks used against the ILP for ``m``.

    The paper uses ``[3, 20]`` nodes for ``m = 2`` and ``[30, 60]`` for
    ``m = 8`` (larger hosts need larger tasks for the comparison to be
    meaningful).  The reproduction keeps the configured range for ``m <= 2``
    and scales it up by 2.5x for larger hosts, which reproduces the paper's
    ranges when the paper-scale configuration is used.
    """
    low, high = scale.ilp_node_range
    if cores <= 2:
        return (low, high)
    return (high, max(high + 2, int(round(high * 2.5))))


def run_figure7(
    scale: Optional[ExperimentScale] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 7 of the paper.

    Parameters
    ----------
    jobs:
        Worker-process count for the ILP sweep (task generation stays
        serial, so results are bit-identical to the serial path).

    Returns
    -------
    ExperimentResult
        Two series per host size ``m``: ``R_hom m=<m>`` and ``R_het m=<m>``,
        giving the average percentage increment of each bound over the ILP
        minimum makespan at every offloaded fraction.
    """
    scale = scale or quick_scale()
    rng = np.random.default_rng(scale.seed + 7)

    result = ExperimentResult(
        name="figure7",
        title="Increment of R_hom(tau) and R_het(tau') w.r.t. the minimum makespan",
        x_label="C_off / vol(G)",
        y_label="increment over optimal makespan [%]",
        metadata={
            "dags_per_point": scale.dags_per_point,
            "wcet_max": scale.ilp_wcet_max,
            "ilp_time_limit": scale.ilp_time_limit,
            "seed": scale.seed,
        },
    )

    # Figure 7 shows m = 2 and m = 8; evaluate whichever of those the scale
    # requests (falling back to the first two configured core counts).
    preferred = [m for m in scale.core_counts if m in (2, 8)] or list(
        scale.core_counts[:2]
    )
    for cores in preferred:
        node_range = node_range_for_cores(scale, cores)
        generator_config = replace(
            SMALL_TASKS,
            n_min=node_range[0],
            n_max=node_range[1],
            c_max=scale.ilp_wcet_max,
        )
        points = offload_fraction_sweep(
            fractions=scale.small_task_fractions,
            dags_per_point=scale.dags_per_point,
            generator_config=generator_config,
            offload_config=OffloadConfig(),
            rng=rng,
            paired=True,
        )
        hom_series = ExperimentSeries(
            label=f"R_hom m={cores}", metadata={"nodes": list(node_range)}
        )
        het_series = ExperimentSeries(
            label=f"R_het m={cores}", metadata={"nodes": list(node_range)}
        )
        increments = parallel_map(
            _evaluate_point,
            [(point.tasks, cores, scale.ilp_time_limit) for point in points],
            jobs=jobs,
        )
        for point, (hom_increment, het_increment) in zip(points, increments):
            hom_series.append(point.fraction, hom_increment)
            het_series.append(point.fraction, het_increment)
        result.add_series(hom_series)
        result.add_series(het_series)
    return result
