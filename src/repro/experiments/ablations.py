"""Ablation studies complementing the paper's evaluation.

Two design choices of the reproduction deserve dedicated evidence:

* **Scheduler sensitivity** (:func:`run_scheduler_ablation`) -- the paper
  simulates only the GOMP breadth-first policy; this ablation re-runs the
  Figure 6 comparison under several work-conserving policies to show that the
  qualitative conclusion ("the transformation helps once ``C_off`` is a
  non-trivial share of the volume") does not hinge on the specific policy.

* **Makespan-oracle agreement** (:func:`run_ilp_ablation`) -- the paper's
  single oracle was CPLEX; the reproduction has two independent ones (the
  HiGHS time-indexed ILP and an exact branch-and-bound).  This ablation
  verifies they agree on a population of small random tasks and reports their
  cost (variables / explored states), which is the evidence backing the use
  of HiGHS in Figure 7.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..analysis.comparison import percentage_change
from ..core.transformation import transform
from ..generator.config import OffloadConfig
from ..generator.presets import LARGE_TASKS_FIG6, SMALL_TASKS
from ..generator.sweep import chunked_offload_fraction_sweep
from ..ilp.batch import minimum_makespans_many
from ..ilp.branch_and_bound import BranchAndBoundResult, branch_and_bound_makespan
from ..ilp.makespan import MakespanMethod
from ..parallel import parallel_map, spawn_seeds
from ..simulation.platform import Platform
from ..simulation.schedulers import (
    BreadthFirstPolicy,
    CriticalPathFirstPolicy,
    DepthFirstPolicy,
    SchedulingPolicy,
)
from .base import ExperimentResult, ExperimentSeries
from .config import ExperimentScale, quick_scale
from .figure6 import run_figure6

__all__ = [
    "run_scheduler_ablation",
    "run_scheduler_ablation_service",
    "run_ilp_ablation",
    "ABLATION_POLICY_NAMES",
]

#: Every registered policy family, in registry order: the seven-policy
#: ablation of the paper-scale run.
ABLATION_POLICY_NAMES = (
    "breadth-first",
    "depth-first",
    "critical-path-first",
    "shortest-first",
    "longest-first",
    "random",
    "fixed-priority",
)


def run_scheduler_ablation(
    scale: Optional[ExperimentScale] = None,
    cores: int = 4,
    policies: Optional[Sequence[SchedulingPolicy]] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 6 repeated under several work-conserving scheduling policies.

    Each policy re-runs the rewired Figure 6 driver, so the sweep inherits
    its chunked parallel generation and the batched simulator
    (:func:`repro.simulation.batch.simulate_many` -- one compile per task
    variant serves every sweep cell, and every registered policy family
    runs through the vectorised lockstep kernel); ``jobs`` is forwarded
    with bit-identical results.

    Returns
    -------
    ExperimentResult
        One series per policy (all for the same host size ``cores``), with
        the same metric as Figure 6.
    """
    scale = scale or quick_scale()
    scale = replace(scale, core_counts=(cores,))
    policies = list(
        policies
        if policies is not None
        else [BreadthFirstPolicy(), DepthFirstPolicy(), CriticalPathFirstPolicy()]
    )

    result = ExperimentResult(
        name="ablation-scheduler",
        title=f"Figure 6 metric under different schedulers (m={cores})",
        x_label="C_off / vol(G)",
        y_label="percentage change of average makespan [%]",
        metadata={"cores": cores, "policies": [policy.name for policy in policies]},
    )
    for policy in policies:
        figure = run_figure6(scale=scale, policy=policy, jobs=jobs)
        series = figure.series_by_label(f"m={cores}")
        series.label = policy.name
        result.add_series(series)
    return result


def run_scheduler_ablation_service(
    scale: Optional[ExperimentScale] = None,
    cores: int = 4,
    policy_names: Sequence[str] = ABLATION_POLICY_NAMES,
    jobs: Optional[int] = None,
    threads: int = 32,
) -> ExperimentResult:
    """The seven-policy Figure 6 ablation served through the batch queue.

    Unlike :func:`run_scheduler_ablation` (which calls the batched engines
    directly), this driver submits every ``(task, variant, policy)`` cell as
    an individual request to a live :class:`~repro.service.facade.
    EvaluationService` from a thread pool -- the shape of a sweep client
    hitting the HTTP facade.  The micro-batcher coalesces the bursts into
    task x platform x policy grids for the lockstep kernel (the grid
    executor's policy axis), while the stochastic policy takes the solo
    path with an explicit per-request seed, so the resulting figures are
    deterministic and independent of batch composition -- the documents
    can be frozen as goldens.

    Returns
    -------
    ExperimentResult
        One series per policy (all at host size ``cores``), same metric as
        Figure 6; the metadata records the deterministic request count and
        sampling parameters (never runtime counters, which depend on flush
        timing).
    """
    from ..service.facade import EvaluationService

    scale = scale or quick_scale()
    policy_names = list(policy_names)
    points = chunked_offload_fraction_sweep(
        fractions=scale.fractions,
        dags_per_point=scale.dags_per_point,
        generator_config=LARGE_TASKS_FIG6,
        offload_config=OffloadConfig(),
        root_seed=scale.seed,
        jobs=jobs,
    )
    point_seeds = spawn_seeds(scale.seed, len(points))
    platform = Platform(host_cores=cores, accelerators=1)

    # One request per (point, variant, task, policy), task-major so a flush
    # window holds every policy of the tasks it covers (dense 3-axis grids
    # for the coalescer).  The stochastic policy gets an explicit seed per
    # cell -- derived only from the sampling parameters, never from batch
    # composition -- which the solo path replays exactly.
    requests = []
    for point_index, point in enumerate(points):
        variants = [point.tasks, [transform(task).task for task in point.tasks]]
        for variant, tasks in enumerate(variants):
            for task_index, task in enumerate(tasks):
                for policy in policy_names:
                    seed = None
                    if policy == "random":
                        seed = int(
                            point_seeds[point_index]
                            + 2 * task_index
                            + variant
                        )
                    requests.append((point_index, variant, policy, task, seed))

    with EvaluationService(jobs=jobs) as service:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            values = list(
                pool.map(
                    lambda spec: service.submit_simulation(
                        spec[3],
                        platform,
                        policy=spec[2],
                        policy_seed=spec[4],
                    ),
                    requests,
                )
            )

    sums: dict[tuple[int, int, str], list] = {}
    for (point_index, variant, policy, _, _), value in zip(requests, values):
        sums.setdefault((point_index, variant, policy), []).append(value)

    result = ExperimentResult(
        name="ablation-scheduler-paper",
        title=f"Figure 6 metric under all registered schedulers (m={cores})",
        x_label="C_off / vol(G)",
        y_label="percentage change of average makespan [%]",
        metadata={
            "cores": cores,
            "policies": policy_names,
            "dags_per_point": scale.dags_per_point,
            "seed": scale.seed,
            "generator": "large tasks, n in "
            f"[{LARGE_TASKS_FIG6.n_min}, {LARGE_TASKS_FIG6.n_max}]",
            "requests": len(requests),
            "served_by": "EvaluationService micro-batch queue",
        },
    )
    for policy in policy_names:
        series = ExperimentSeries(label=policy)
        for point_index, point in enumerate(points):
            average_original = float(
                np.mean(sums[(point_index, 0, policy)])
            )
            average_transformed = float(
                np.mean(sums[(point_index, 1, policy)])
            )
            series.append(
                point.fraction,
                percentage_change(average_original, average_transformed),
            )
        series.metadata["crossover_fraction"] = series.crossover()
        result.add_series(series)
    # The queue's serving statistics (service.stats()) are observability,
    # not golden material: engine/batch counts depend on flush timing and
    # on which kernel backend the host has, so they never enter the
    # document.
    return result


def _solve_bnb_pair(
    args: tuple,
) -> tuple[BranchAndBoundResult, BranchAndBoundResult]:
    """Worker: pruned and unpruned-reference branch-and-bound of one task."""
    task, cores = args
    return (
        branch_and_bound_makespan(task, cores),
        branch_and_bound_makespan(task, cores, pruning=False),
    )


def run_ilp_ablation(
    scale: Optional[ExperimentScale] = None,
    cores: int = 2,
    task_count: int = 10,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Cross-check the two optimal-makespan oracles on small random tasks.

    The task ensemble is generated with the chunked seeded scheme
    (:func:`repro.generator.sweep.chunked_offload_fraction_sweep`); the ILP
    side runs through the batched oracle layer with ``warm_start=False`` so
    HiGHS genuinely solves every instance (the warm start shares its
    incumbent with the branch-and-bound, which would make the agreement
    check vacuous); and both branch-and-bound engines (pruned and unpruned
    reference) are dispatched per task.  All three stages honour ``jobs=N``
    with bit-identical results.

    Returns
    -------
    ExperimentResult
        Series ``ilp`` and ``bnb`` hold the makespans returned by each engine
        for every generated task (x is the task index); the metadata records
        the number of disagreements (expected: zero), the average model /
        search sizes, how many pruned searches were resolved by the
        list-schedule==lower-bound early exit (``bnb_short_circuited``), and
        the explored-state reduction both overall and restricted to the
        instances where the pruned engine actually searched
        (``searched_state_reduction``).
    """
    scale = scale or quick_scale()
    generator_config = replace(
        SMALL_TASKS, n_min=4, n_max=10, c_max=min(scale.ilp_wcet_max, 10)
    )
    points = chunked_offload_fraction_sweep(
        fractions=[0.2],
        dags_per_point=task_count,
        generator_config=generator_config,
        offload_config=OffloadConfig(),
        root_seed=scale.seed + 42,
        jobs=jobs,
    )
    tasks = [
        task.with_offloaded_wcet(max(1.0, round(task.offloaded_wcet)))
        for task in points[0].tasks
    ]

    ilp_results = minimum_makespans_many(
        tasks,
        cores,
        method=MakespanMethod.ILP,
        time_limit=scale.ilp_time_limit,
        jobs=jobs,
        warm_start=False,
    )
    bnb_pairs = parallel_map(
        _solve_bnb_pair, [(task, cores) for task in tasks], jobs=jobs
    )

    ilp_series = ExperimentSeries(label="ilp")
    bnb_series = ExperimentSeries(label="bnb")
    disagreements = 0
    short_circuited = 0
    variable_counts = []
    explored_states = []
    reference_states = []
    searched = []  # (pruned, reference) states of instances with a real search
    for index, (ilp, (bnb, reference)) in enumerate(zip(ilp_results, bnb_pairs)):
        ilp_series.append(float(index), ilp.makespan)
        bnb_series.append(float(index), bnb.makespan)
        variable_counts.append(ilp.engine_stats.get("variables", 0))
        explored_states.append(bnb.explored_states)
        reference_states.append(reference.explored_states)
        if bnb.explored_states == 0:
            short_circuited += 1
        else:
            searched.append((bnb.explored_states, reference.explored_states))
        if (
            abs(ilp.makespan - bnb.makespan) > 1e-6
            or abs(reference.makespan - bnb.makespan) > 1e-6
        ):
            disagreements += 1

    result = ExperimentResult(
        name="ablation-ilp",
        title="Agreement of the HiGHS ILP and the branch-and-bound oracle",
        x_label="task index",
        y_label="minimum makespan",
        metadata={
            "cores": cores,
            "disagreements": disagreements,
            "mean_ilp_variables": float(np.mean(variable_counts)),
            "mean_bnb_explored_states": float(np.mean(explored_states)),
            "mean_reference_explored_states": float(np.mean(reference_states)),
            "bnb_short_circuited": short_circuited,
            "pruning_state_reduction": float(
                np.sum(reference_states) / max(float(np.sum(explored_states)), 1.0)
            ),
            "searched_state_reduction": float(
                sum(r for _, r in searched) / max(sum(p for p, _ in searched), 1)
            )
            if searched
            else 1.0,
        },
    )
    result.add_series(ilp_series)
    result.add_series(bnb_series)
    return result
