"""Unified experiment runner: one entry point per paper artefact.

:func:`run_experiment` dispatches an experiment name (``figure6`` ...
``figure9``, ``worked-example``, the ablations) to its driver and returns the
:class:`~repro.experiments.base.ExperimentResult`; :func:`run_all` runs every
experiment of the paper.  The CLI (:mod:`repro.cli`) and the benchmark
harness are thin wrappers around these functions.

Parallel execution
------------------
The figure drivers accept a ``jobs`` argument (surfaced here and as the
CLI's ``--jobs`` flag) that distributes their sweep evaluation over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Random task generation
always happens serially up front from the scale's root seed, and only the
deterministic evaluation is chunked (one chunk per sweep point), so
``jobs=N`` produces bit-identical results to the serial path -- the
test-suite asserts this with
:meth:`~repro.experiments.base.ExperimentResult.identical_to`.
"""

from __future__ import annotations

from typing import Callable, Optional

from .ablations import run_ilp_ablation, run_scheduler_ablation
from .base import ExperimentResult
from .config import ExperimentScale, paper_scale, quick_scale
from .figure6 import run_figure6
from .figure7 import run_figure7
from .figure8 import run_figure8
from .figure9 import run_figure9
from .worked_example import run_worked_example
from .workload import run_workload_schedulability

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "available_experiments"]

#: Mapping of experiment names to their driver functions.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "worked-example": lambda scale=None: run_worked_example(),
    "figure6": run_figure6,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "ablation-scheduler": run_scheduler_ablation,
    "ablation-ilp": run_ilp_ablation,
    "workload-schedulability": run_workload_schedulability,
}

#: Experiments whose drivers support process-parallel sweeps.  The worked
#: example is a single closed-form evaluation and the scheduler ablation is
#: dominated by tiny instances; parallelising it would buy nothing.
_SUPPORTS_JOBS = frozenset(
    {
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "ablation-ilp",
        "workload-schedulability",
    }
)


def available_experiments() -> list[str]:
    """Names accepted by :func:`run_experiment`, in canonical order."""
    return list(EXPERIMENTS)


def run_experiment(
    name: str,
    scale: Optional[ExperimentScale] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment by name.

    Parameters
    ----------
    name:
        One of :func:`available_experiments`.
    scale:
        Sampling effort; ``None`` uses the quick (seconds-scale) preset.
    jobs:
        Worker-process count for the figure sweeps (``None``/``1`` = serial;
        negative = all CPUs).  Ignored by experiments that do not support
        parallel execution; results never depend on it.
    """
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        valid = ", ".join(available_experiments())
        raise KeyError(f"unknown experiment {name!r}; valid names: {valid}") from None
    if name == "worked-example":
        return driver()
    if name in _SUPPORTS_JOBS:
        return driver(scale=scale, jobs=jobs)
    return driver(scale=scale)


def run_all(
    scale: Optional[ExperimentScale] = None,
    names: Optional[list[str]] = None,
    jobs: Optional[int] = None,
) -> dict[str, ExperimentResult]:
    """Run every requested experiment and return the results by name.

    Parameters
    ----------
    scale:
        Sampling effort shared by all experiments.
    names:
        Subset of :func:`available_experiments`; ``None`` runs everything.
    jobs:
        Worker-process count forwarded to each driver that supports it; the
        results are bit-identical to ``jobs=None``.
    """
    selected = names if names is not None else available_experiments()
    return {name: run_experiment(name, scale, jobs=jobs) for name in selected}
