"""Common result containers and helpers shared by every experiment driver.

Each experiment module (one per paper figure) produces an
:class:`ExperimentResult` made of named :class:`ExperimentSeries`.  A series
is simply an x-vector (the offloaded-workload fraction in every experiment of
the paper) and a y-vector (the metric of the figure), plus a label such as
``"m=8"``.  Results can be rendered as fixed-width text tables
(:mod:`repro.experiments.tables`), exported to CSV/JSON, and compared against
the qualitative expectations recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["ExperimentSeries", "ExperimentResult"]


@dataclass
class ExperimentSeries:
    """One curve of a figure: a label plus aligned x and y vectors."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )

    def append(self, x_value: float, y_value: float) -> None:
        """Append one ``(x, y)`` point to the series."""
        self.x.append(float(x_value))
        self.y.append(float(y_value))

    def __len__(self) -> int:
        return len(self.x)

    def y_at(self, x_value: float, tolerance: float = 1e-9) -> float:
        """Return the y value recorded for a given x value."""
        for x, y in zip(self.x, self.y):
            if abs(x - x_value) <= tolerance:
                return y
        raise KeyError(f"series {self.label!r} has no point at x={x_value}")

    def crossover(self) -> Optional[float]:
        """First x value at which the series changes sign (linear interp.).

        Several figures of the paper are characterised by the ``C_off``
        fraction at which a percentage-change curve crosses zero (e.g. the
        point where the transformed task becomes faster than the original).
        Returns ``None`` when the series never changes sign.
        """
        for (x0, y0), (x1, y1) in zip(zip(self.x, self.y), zip(self.x[1:], self.y[1:])):
            if y0 == 0:
                return x0
            if y0 * y1 < 0:
                # Linear interpolation between the two samples.
                return x0 + (x1 - x0) * (0 - y0) / (y1 - y0)
        if self.y and self.y[-1] == 0:
            return self.x[-1]
        return None

    def max_point(self) -> tuple[float, float]:
        """Return ``(x, y)`` of the maximum y value."""
        if not self.y:
            raise ValueError(f"series {self.label!r} is empty")
        index = max(range(len(self.y)), key=self.y.__getitem__)
        return self.x[index], self.y[index]

    def min_point(self) -> tuple[float, float]:
        """Return ``(x, y)`` of the minimum y value."""
        if not self.y:
            raise ValueError(f"series {self.label!r} is empty")
        index = min(range(len(self.y)), key=self.y.__getitem__)
        return self.x[index], self.y[index]


@dataclass
class ExperimentResult:
    """A reproduced figure: metadata plus one series per curve."""

    name: str
    title: str
    x_label: str
    y_label: str
    series: list[ExperimentSeries] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add_series(self, series: ExperimentSeries) -> None:
        """Append one curve to the figure."""
        self.series.append(series)

    def series_by_label(self, label: str) -> ExperimentSeries:
        """Look up a curve by its label."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        available = ", ".join(repr(candidate.label) for candidate in self.series)
        raise KeyError(f"no series labelled {label!r}; available: {available}")

    def labels(self) -> list[str]:
        """Labels of all curves, in insertion order."""
        return [series.label for series in self.series]

    def identical_to(self, other: "ExperimentResult") -> bool:
        """Exact equality of every label, sample and metadata entry.

        Stricter in intent than ``==`` on floats being "close": the parallel
        experiment runner is required to reproduce the serial results
        *bit-identically*, and the test-suite asserts it with this helper.
        """
        return self.to_dict() == other.to_dict()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Return a JSON-serialisable representation of the result."""
        return asdict(self)

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialise to JSON; optionally write the document to ``path``."""
        document = json.dumps(self.to_dict(), indent=indent, default=float)
        if path is not None:
            Path(path).write_text(document + "\n", encoding="utf-8")
        return document

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        series = [ExperimentSeries(**entry) for entry in data.get("series", [])]
        return cls(
            name=data["name"],
            title=data.get("title", data["name"]),
            x_label=data.get("x_label", "x"),
            y_label=data.get("y_label", "y"),
            series=series,
            metadata=data.get("metadata", {}),
        )

    @classmethod
    def from_json(cls, document: str | Path) -> "ExperimentResult":
        """Load a result from a JSON string or file path."""
        path = Path(document) if not str(document).lstrip().startswith("{") else None
        text = path.read_text(encoding="utf-8") if path is not None else str(document)
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Tabular view
    # ------------------------------------------------------------------
    def rows(self) -> list[dict[str, float]]:
        """Flatten the figure into one row per x value with one column per curve."""
        x_values: list[float] = sorted({x for series in self.series for x in series.x})
        table: list[dict[str, float]] = []
        for x in x_values:
            row: dict[str, float] = {"x": x}
            for series in self.series:
                try:
                    row[series.label] = series.y_at(x)
                except KeyError:
                    row[series.label] = float("nan")
            table.append(row)
        return table

    def column_names(self) -> Sequence[str]:
        """Column names of :meth:`rows` (``x`` followed by the curve labels)."""
        return ["x"] + self.labels()
