"""Core DAG task model and transformation (the paper's Sections 2 and 3).

This subpackage contains everything that is independent of a particular
analysis or scheduler:

* :mod:`repro.core.graph` -- the weighted DAG substrate;
* :mod:`repro.core.compiled` -- the public dense-index ``CompiledTask`` view;
* :mod:`repro.core.task` -- the sporadic heterogeneous DAG task model;
* :mod:`repro.core.validation` -- system-model assumption checks;
* :mod:`repro.core.transformation` -- Algorithm 1 (the ``v_sync`` insertion);
* :mod:`repro.core.examples` -- the worked examples of the paper.
"""

from .exceptions import (
    AnalysisError,
    CycleError,
    DuplicateNodeError,
    EdgeError,
    GenerationError,
    GraphError,
    NodeNotFoundError,
    ReproError,
    SerializationError,
    SimulationError,
    SolverError,
    TransformationError,
    ValidationError,
)
from .compiled import CompiledTask, compile_task
from .examples import figure1_task, figure2_expected_edges, figure3_task
from .graph import DirectedAcyclicGraph, NodeId
from .task import OFFLOADED_NODE_DEFAULT_ID, DagTask, TaskSet
from .transformation import SYNC_NODE_DEFAULT_ID, TransformedTask, transform
from .validation import ValidationReport, normalise_task, validate_graph, validate_task

__all__ = [
    # graph / task model
    "DirectedAcyclicGraph",
    "NodeId",
    "CompiledTask",
    "compile_task",
    "DagTask",
    "TaskSet",
    "OFFLOADED_NODE_DEFAULT_ID",
    # transformation
    "transform",
    "TransformedTask",
    "SYNC_NODE_DEFAULT_ID",
    # validation
    "validate_graph",
    "validate_task",
    "normalise_task",
    "ValidationReport",
    # worked examples
    "figure1_task",
    "figure2_expected_edges",
    "figure3_task",
    # exceptions
    "ReproError",
    "GraphError",
    "CycleError",
    "NodeNotFoundError",
    "DuplicateNodeError",
    "EdgeError",
    "ValidationError",
    "TransformationError",
    "AnalysisError",
    "GenerationError",
    "SimulationError",
    "SolverError",
    "SerializationError",
]
