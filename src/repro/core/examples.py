"""Hand-built DAG tasks reproducing the worked examples of the paper.

Two example tasks are provided:

* :func:`figure1_task` -- the six-node motivating example of Figures 1 and 2.
  The paper reports, for a host with ``m = 2`` cores:

  - ``len(G) = 8`` and ``vol(G) = 18``, hence ``R_hom = 13`` (Eq. 1);
  - naively subtracting ``C_off / m`` yields the *unsafe* bound ``11``;
  - a work-conserving schedule exists whose makespan is ``12`` (Figure 1(c)),
    proving the naive bound unsafe;
  - after the transformation, ``len(G') = 10`` (Figure 2(a)) and the schedule
    of the transformed task finishes at ``10`` (Figure 2(b)).

  The paper only gives the WCETs implicitly through those aggregate values;
  the WCET assignment below is the unique integer assignment consistent with
  every number quoted in the text (see ``tests/test_worked_examples.py``).

* :func:`figure3_task` -- a twelve-node task with the same *structure class*
  as the transformation example of Figure 3: the offloaded node has two
  direct predecessors, two further indirect predecessors whose outgoing edges
  must be rerouted, a non-trivial ``G_par`` and a non-empty successor set.
  It exercises every branch of Algorithm 1.
"""

from __future__ import annotations

from .task import DagTask

__all__ = ["figure1_task", "figure2_expected_edges", "figure3_task"]


def figure1_task(period: float | None = None, deadline: float | None = None) -> DagTask:
    """Return the motivating example task of Figure 1 of the paper.

    Structure::

                 +--> v2(4) --+
        v1(1) ---+--> v3(6) --+--> v5(1)
                 +--> v4(2) --> v_off(4) --^

    * ``vol(G) = 18``; the critical path is ``{v1, v3, v5}`` with
      ``len(G) = 8``.
    * With ``m = 2``: ``R_hom = 8 + (18 - 8)/2 = 13``.
    * The worst-case work-conserving schedule of the *original* task has a
      makespan of ``12`` (host runs ``{v2, v3}`` first and then idles while
      ``v_off`` executes), which exceeds the naive bound ``11``.
    * After Algorithm 1, ``len(G') = 10`` and the transformed schedule
      finishes at ``10``.
    """
    wcets = {"v1": 1, "v2": 4, "v3": 6, "v4": 2, "v5": 1, "v_off": 4}
    edges = [
        ("v1", "v2"),
        ("v1", "v3"),
        ("v1", "v4"),
        ("v4", "v_off"),
        ("v2", "v5"),
        ("v3", "v5"),
        ("v_off", "v5"),
    ]
    return DagTask.from_wcets(
        wcets,
        edges,
        offloaded_node="v_off",
        period=period,
        deadline=deadline,
        name="figure1",
    )


def figure2_expected_edges() -> list[tuple[str, str]]:
    """Edge set of the transformed Figure 1 task (Figure 2(a) of the paper).

    The synchronisation node is inserted after ``v4`` (the only direct
    predecessor of ``v_off``) and before ``v_off`` and the parallel nodes
    ``{v2, v3}``.
    """
    return [
        ("v1", "v4"),
        ("v4", "v_sync"),
        ("v_sync", "v_off"),
        ("v_sync", "v2"),
        ("v_sync", "v3"),
        ("v2", "v5"),
        ("v3", "v5"),
        ("v_off", "v5"),
    ]


def figure3_task(period: float | None = None, deadline: float | None = None) -> DagTask:
    """Return a task exercising every branch of Algorithm 1 (cf. Figure 3).

    Structure (WCETs in parentheses)::

        v1(2) --> v2(3)  -------------------> v4(5) ---+
        v1    --> v3(4)  --> v7(2) ---------> v5(3) ---+--> v10(2)
                  v3     --> v8(3) --> v11(4) -> v6(1)-+
                  v3     --> v9(2) ----+               |
                  v8 ------------------+--> v_off(6) --+

    * direct predecessors of ``v_off``: ``{v8, v9}``;
    * indirect predecessors: ``{v1, v3}`` whose edges ``(v1, v2)`` and
      ``(v3, v7)`` must be rerouted to ``v_sync``;
    * the edge ``(v8, v11)`` from a direct predecessor towards a parallel
      node must be rerouted as well;
    * ``G_par = {v2, v4, v5, v6, v7, v11}``;
    * ``Succ(v_off) = {v10}``.
    """
    wcets = {
        "v1": 2,
        "v2": 3,
        "v3": 4,
        "v4": 5,
        "v5": 3,
        "v6": 1,
        "v7": 2,
        "v8": 3,
        "v9": 2,
        "v10": 2,
        "v11": 4,
        "v_off": 6,
    }
    edges = [
        ("v1", "v2"),
        ("v1", "v3"),
        ("v3", "v7"),
        ("v3", "v8"),
        ("v3", "v9"),
        ("v2", "v4"),
        ("v7", "v5"),
        ("v8", "v11"),
        ("v8", "v_off"),
        ("v9", "v_off"),
        ("v11", "v6"),
        ("v4", "v10"),
        ("v5", "v10"),
        ("v6", "v10"),
        ("v_off", "v10"),
    ]
    return DagTask.from_wcets(
        wcets,
        edges,
        offloaded_node="v_off",
        period=period,
        deadline=deadline,
        name="figure3",
    )
