"""Exception hierarchy used across the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every error raised by the package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "NodeNotFoundError",
    "DuplicateNodeError",
    "EdgeError",
    "ValidationError",
    "TransformationError",
    "AnalysisError",
    "GenerationError",
    "SimulationError",
    "SolverError",
    "SerializationError",
    "ServiceError",
    "ServiceClosedError",
    "ServiceTimeoutError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "FaultInjectedError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Base class for errors related to DAG construction and manipulation."""


class CycleError(GraphError):
    """Raised when an operation requires an acyclic graph but a cycle exists.

    The offending cycle (a list of node identifiers) is stored in
    :attr:`cycle` when it is known, which makes debugging generated task sets
    considerably easier.
    """

    def __init__(self, message: str, cycle: list | None = None) -> None:
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node identifier is not present in the graph."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} is not part of the graph")
        self.node_id = node_id


class DuplicateNodeError(GraphError, ValueError):
    """Raised when adding a node whose identifier already exists."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} already exists in the graph")
        self.node_id = node_id


class EdgeError(GraphError, ValueError):
    """Raised for invalid edge operations (self loops, duplicates, ...)."""


class ValidationError(ReproError, ValueError):
    """Raised when a task or graph violates a model assumption.

    The system model of the paper makes several structural assumptions
    (single source, single sink, no transitive edges, a single offloaded
    node).  :class:`ValidationError` carries a list of human readable
    problems so all violations can be reported at once.
    """

    def __init__(self, problems: list[str] | str) -> None:
        if isinstance(problems, str):
            problems = [problems]
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


class TransformationError(ReproError):
    """Raised when the DAG transformation (Algorithm 1) cannot be applied."""


class AnalysisError(ReproError):
    """Raised when a response-time analysis receives an unsupported input."""


class GenerationError(ReproError):
    """Raised when the random DAG generator cannot satisfy its constraints."""


class SimulationError(ReproError):
    """Raised when the scheduling simulator reaches an inconsistent state."""


class SolverError(ReproError):
    """Raised when the ILP / branch-and-bound makespan solvers fail."""


class SerializationError(ReproError):
    """Raised when (de)serialising tasks to/from JSON or DOT fails."""


class ServiceError(ReproError):
    """Raised when the long-lived evaluation service cannot serve a request.

    ``retryable`` is a class-level hint for clients: ``True`` on the
    subclasses whose failure is transient by construction (overload, drain,
    deadline expiry) -- every service endpoint is idempotent (results are
    keyed on content fingerprints), so retrying those is always safe.

    ``trace_id`` names the request trace the failure belongs to, when one
    exists: the HTTP client copies it off the error envelope so a caller
    can pull the failing request's span tree from ``GET /traces/<id>``.
    It stays ``None`` for errors raised outside a traced request.
    """

    retryable = False
    trace_id: str | None = None


class ServiceClosedError(ServiceError):
    """Raised when a request reaches a service that has been closed.

    Retryable from a remote client's point of view: a closed service is
    usually one mid-drain or mid-restart.
    """

    retryable = True


class ServiceTimeoutError(ServiceError):
    """Raised when a request's deadline expired before it was served.

    Covers both sides of the queue: a caller whose ``wait`` ran out, and a
    parked request whose deadline expired before its batch was executed.
    """

    retryable = True


class ServiceOverloadedError(ServiceError):
    """Raised when admission control sheds a request (queue bounds hit).

    ``retry_after`` is the suggested back-off in seconds (the HTTP
    transport forwards it as a ``Retry-After`` header).
    """

    retryable = True

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """Raised by :meth:`repro.resilience.Deadline.check` on expiry."""


class CircuitOpenError(ReproError):
    """Raised by :meth:`repro.resilience.CircuitBreaker.call` while open."""


class FaultInjectedError(ReproError):
    """Raised by an armed :class:`repro.resilience.FaultInjector` point."""


class WorkerCrashError(ReproError):
    """Raised when the parallel runner exhausted its pool-respawn budget."""
