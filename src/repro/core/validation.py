"""Validation of the structural assumptions of the paper's system model.

The DAC'18 system model (Section 2 of the paper) makes the following
assumptions about a task ``tau = <G, T, D>``:

1. ``G`` is a directed *acyclic* graph.
2. ``G`` has exactly one source and one sink node (a dummy zero-WCET node can
   always be added to enforce this).
3. Transitive edges do not exist: if ``(v1, v2)`` and ``(v2, v3)`` are edges
   then ``(v1, v3)`` is not.  Algorithm 1 explicitly relies on this.
4. There is at most one offloaded node, and its WCET is non-negative.
5. The relative deadline is constrained: ``D <= T``.

:func:`validate_task` checks every assumption and either returns the list of
violations or raises :class:`~repro.core.exceptions.ValidationError`.
:func:`normalise_task` repairs the repairable violations (missing dummy
source/sink, transitive edges) and returns a compliant copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .exceptions import ValidationError
from .graph import DirectedAcyclicGraph
from .task import DagTask

__all__ = ["ValidationReport", "validate_graph", "validate_task", "normalise_task"]


@dataclass
class ValidationReport:
    """Outcome of a validation pass.

    Attributes
    ----------
    problems:
        Human-readable descriptions of every violated assumption.  The report
        is truthy when the model is valid (no problems).
    """

    problems: list[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """``True`` when no assumption is violated."""
        return not self.problems

    def __bool__(self) -> bool:
        return self.is_valid

    def add(self, problem: str) -> None:
        """Record one violation."""
        self.problems.append(problem)

    def raise_if_invalid(self) -> None:
        """Raise :class:`ValidationError` when at least one problem exists."""
        if self.problems:
            raise ValidationError(self.problems)


def validate_graph(
    graph: DirectedAcyclicGraph,
    require_single_source: bool = True,
    require_single_sink: bool = True,
    forbid_transitive_edges: bool = True,
) -> ValidationReport:
    """Check the structural assumptions on a DAG.

    Parameters
    ----------
    graph:
        The graph to check.
    require_single_source, require_single_sink:
        Enforce the single source / single sink assumption of the system
        model.  Sub-DAGs such as ``G_par`` legitimately have several sources
        and sinks, hence the flags.
    forbid_transitive_edges:
        Enforce assumption (3) above.
    """
    report = ValidationReport()
    if graph.node_count == 0:
        report.add("graph has no nodes")
        return report
    if not graph.is_acyclic():
        cycle = graph.find_cycle()
        report.add(f"graph contains a cycle: {cycle}")
        return report
    if require_single_source:
        sources = graph.sources()
        if len(sources) != 1:
            report.add(f"graph must have exactly one source, found {sources!r}")
    if require_single_sink:
        sinks = graph.sinks()
        if len(sinks) != 1:
            report.add(f"graph must have exactly one sink, found {sinks!r}")
    if forbid_transitive_edges:
        redundant = graph.transitive_edges()
        if redundant:
            report.add(f"graph contains transitive edges: {sorted(map(repr, redundant))}")
    for node in graph.nodes():
        if graph.wcet(node) < 0:
            report.add(f"node {node!r} has a negative WCET")
    return report


def validate_task(task: DagTask, strict: bool = False) -> ValidationReport:
    """Check that a task complies with the system model of the paper.

    Parameters
    ----------
    task:
        The task to check.
    strict:
        When ``True`` the function raises
        :class:`~repro.core.exceptions.ValidationError` instead of returning
        a report with problems.
    """
    report = validate_graph(task.graph)
    if task.offloaded_node is not None:
        if task.offloaded_node not in task.graph:
            report.add(
                f"offloaded node {task.offloaded_node!r} is not part of the graph"
            )
        elif task.graph.wcet(task.offloaded_node) < 0:
            report.add("offloaded node has a negative WCET")
    if task.period is not None and task.period <= 0:
        report.add(f"period must be positive, got {task.period}")
    if task.deadline is not None and task.deadline <= 0:
        report.add(f"deadline must be positive, got {task.deadline}")
    if (
        task.period is not None
        and task.deadline is not None
        and task.deadline > task.period
    ):
        report.add(
            f"constrained deadline violated: D={task.deadline} > T={task.period}"
        )
    if strict:
        report.raise_if_invalid()
    return report


def normalise_task(task: DagTask) -> DagTask:
    """Return a copy of ``task`` that satisfies the repairable assumptions.

    Two classes of violations can be repaired automatically:

    * multiple sources or sinks -- a dummy zero-WCET source/sink is added,
      exactly as Section 2 of the paper describes;
    * transitive edges -- removed by transitive reduction (removing a
      transitive edge never changes ``vol``, ``len`` nor the reachability
      relation, hence it does not alter any analysis result).

    Violations that cannot be repaired (cycles, negative WCETs, unconstrained
    deadlines) still raise :class:`ValidationError`.
    """
    graph = task.graph.copy()
    if not graph.is_acyclic():
        raise ValidationError(f"cannot normalise cyclic graph: {graph.find_cycle()}")
    graph = graph.transitive_reduction()
    graph = graph.with_unique_source_and_sink()
    repaired = DagTask(
        graph=graph,
        offloaded_node=task.offloaded_node,
        period=task.period,
        deadline=task.deadline,
        name=task.name,
        metadata=dict(task.metadata),
    )
    validate_task(repaired, strict=True)
    return repaired
