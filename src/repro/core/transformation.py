"""DAG transformation guaranteeing host/accelerator parallelism (Algorithm 1).

The key insight of the paper is that the interference reduction enabled by
offloading ``v_off`` to the accelerator is only *safe* if the sub-DAG that can
potentially run in parallel with ``v_off`` (named ``G_par``) is guaranteed to
actually run in parallel with it.  Algorithm 1 enforces this by inserting a
zero-WCET synchronisation node ``v_sync`` immediately before both ``v_off``
and ``G_par``:

1. every direct predecessor of ``v_off`` now precedes ``v_sync`` instead;
2. every edge from a (direct or indirect) predecessor of ``v_off`` towards a
   node parallel to ``v_off`` is rerouted to originate from ``v_sync``;
3. ``v_sync`` precedes ``v_off``.

As a consequence, once ``v_sync`` completes, ``v_off`` and the whole of
``G_par`` become ready simultaneously, which is exactly the property the
response-time analysis of Theorem 1 builds upon.

This module implements the algorithm faithfully (the docstring of
:func:`transform` maps each step to the pseudo-code line numbers) and returns
a :class:`TransformedTask` carrying the transformed task ``tau'``, the
parallel sub-DAG ``G_par`` and all intermediate sets, so that analyses, tests
and experiments can introspect every aspect of the transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .exceptions import TransformationError
from .graph import DirectedAcyclicGraph, NodeId
from .task import DagTask

__all__ = ["SYNC_NODE_DEFAULT_ID", "TransformedTask", "transform"]

#: Identifier given to the synchronisation node inserted by Algorithm 1.
SYNC_NODE_DEFAULT_ID: str = "v_sync"


@dataclass
class TransformedTask:
    """Result of applying Algorithm 1 to a heterogeneous DAG task.

    Attributes
    ----------
    original:
        The untouched input task ``tau``.
    task:
        The transformed task ``tau'`` whose graph is ``G' = (V', E')``.  It
        contains the extra synchronisation node and keeps the same offloaded
        node, period and deadline as the original task.
    gpar:
        The parallel sub-DAG ``G_par = (V_par, E_par)``: the sub-graph induced
        (in the *original* edge set) by the nodes that may execute in parallel
        with ``v_off``.
    sync_node:
        Identifier of the inserted synchronisation node ``v_sync``.
    direct_predecessors:
        The direct predecessors of ``v_off`` in the original DAG; after the
        transformation they are exactly the direct predecessors of ``v_sync``.
    predecessors:
        ``Pred(v_off)`` in the original DAG.
    successors:
        ``Succ(v_off)`` in the original DAG.
    rerouted_edges:
        Every original edge ``(v_i, v_j)`` that was replaced by
        ``(v_sync, v_j)``; useful for debugging and for the DOT exporter.
    metrics_cache:
        Scratch memoisation space for the analyses (e.g. ``R_hom(G_par)``
        per core count, which :func:`repro.analysis.heterogeneous.classify_scenario`
        and :func:`~repro.analysis.heterogeneous.response_time` would
        otherwise both re-derive).  A transformed task is never mutated after
        construction, so entries stay valid for the object's lifetime.
    """

    original: DagTask
    task: DagTask
    gpar: DirectedAcyclicGraph
    sync_node: NodeId
    direct_predecessors: set[NodeId] = field(default_factory=set)
    predecessors: set[NodeId] = field(default_factory=set)
    successors: set[NodeId] = field(default_factory=set)
    rerouted_edges: list[tuple[NodeId, NodeId]] = field(default_factory=list)
    metrics_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Convenience accessors used by the response-time analysis
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DirectedAcyclicGraph:
        """The transformed graph ``G'``."""
        return self.task.graph

    @property
    def offloaded_node(self) -> NodeId:
        """Identifier of the offloaded node ``v_off``."""
        assert self.task.offloaded_node is not None
        return self.task.offloaded_node

    @property
    def offloaded_wcet(self) -> float:
        """``C_off``."""
        return self.task.offloaded_wcet

    @property
    def gpar_nodes(self) -> set[NodeId]:
        """``V_par``: the nodes of the parallel sub-DAG."""
        return set(self.gpar.nodes())

    def gpar_volume(self) -> float:
        """``vol(G_par)``."""
        return self.gpar.volume()

    def gpar_length(self) -> float:
        """``len(G_par)``."""
        return self.gpar.critical_path_length()

    def transformed_volume(self) -> float:
        """``vol(G')`` -- identical to ``vol(G)`` because ``C_sync = 0``."""
        return self.graph.volume()

    def transformed_length(self) -> float:
        """``len(G')`` -- may exceed ``len(G)`` because of the added sync."""
        return self.graph.critical_path_length()

    def offloaded_on_critical_path(self) -> bool:
        """Whether ``v_off`` lies on some critical path of ``G'``.

        This is the condition distinguishing Scenario 1 from Scenarios 2.x in
        Theorem 1 of the paper.
        """
        cached = self.metrics_cache.get("offloaded_on_critical_path")
        if cached is None:
            cached = self.graph.lies_on_critical_path(self.offloaded_node)
            self.metrics_cache["offloaded_on_critical_path"] = cached
        return cached

    def critical_path_elongation(self) -> float:
        """``len(G') - len(G)``: how much the sync point stretched the task."""
        return self.transformed_length() - self.original.critical_path_length


def transform(
    task: DagTask,
    sync_node: NodeId = SYNC_NODE_DEFAULT_ID,
    reduce_transitive: bool = True,
) -> TransformedTask:
    """Apply Algorithm 1 of the paper to a heterogeneous DAG task.

    Parameters
    ----------
    task:
        The heterogeneous task ``tau``.  It must designate an offloaded node.
    sync_node:
        Identifier to use for the inserted synchronisation node.  It must not
        collide with an existing node.
    reduce_transitive:
        The rerouting step can occasionally introduce transitive edges in
        ``G'`` (e.g. ``v_sync -> v_j`` together with ``v_sync -> v_i -> v_j``
        when two parallel nodes that are themselves ordered both lose all
        their predecessors).  Transitive edges are harmless for the analysis
        -- they change neither ``vol`` nor ``len`` nor reachability -- but the
        system model forbids them, so they are removed by default.

    Returns
    -------
    TransformedTask
        The transformed task ``tau'`` together with ``G_par`` and provenance
        information.

    Raises
    ------
    TransformationError
        If the task has no offloaded node or the sync identifier collides.
    """
    if task.offloaded_node is None:
        raise TransformationError(
            f"task {task.name!r} has no offloaded node; nothing to transform"
        )
    if sync_node in task.graph:
        raise TransformationError(
            f"synchronisation node id {sync_node!r} collides with an existing node"
        )

    graph = task.graph
    v_off = task.offloaded_node

    # Line 1: compute Pred(v_off) and Succ(v_off).
    predecessors = graph.ancestors(v_off)
    successors = graph.descendants(v_off)

    # Line 2: V' = V u {v_sync}; E' = E; directPred = empty set.
    transformed = graph.copy()
    transformed.add_node(sync_node, 0)
    direct_predecessors: set[NodeId] = set()
    rerouted: list[tuple[NodeId, NodeId]] = []

    def reroute(src: NodeId, dst: NodeId) -> None:
        """Replace edge ``(src, dst)`` by ``(v_sync, dst)`` in ``E'``."""
        transformed.remove_edge(src, dst)
        if not transformed.has_edge(sync_node, dst):
            transformed.add_edge(sync_node, dst)
        rerouted.append((src, dst))

    # Lines 3-8: loop over the direct predecessors of v_off.
    for v_i in sorted(graph.predecessors(v_off), key=repr):
        # Line 4: record v_i as a direct predecessor.
        direct_predecessors.add(v_i)
        # Line 5: E' = E' u {(v_i, v_sync)} \ {(v_i, v_off)}.
        transformed.remove_edge(v_i, v_off)
        if not transformed.has_edge(v_i, sync_node):
            transformed.add_edge(v_i, sync_node)
        # Lines 6-8: v_i's remaining successors become successors of v_sync.
        # Because transitive edges do not exist, those successors are
        # necessarily parallel to v_off (see Section 3.4.2 of the paper).
        for v_j in sorted(transformed.successors(v_i), key=repr):
            if v_j != sync_node:
                reroute(v_i, v_j)

    # Line 9: E' = E' u {(v_sync, v_off)}.
    transformed.add_edge(sync_node, v_off)

    # Lines 10-13: loop over the indirect predecessors of v_off.  Edges from
    # an indirect predecessor towards a node that is *not* itself a
    # predecessor of v_off point to a parallel node (again thanks to the
    # absence of transitive edges) and are rerouted to v_sync.
    for v_i in sorted(predecessors - direct_predecessors, key=repr):
        for v_j in sorted(transformed.successors(v_i), key=repr):
            if v_j not in predecessors:
                reroute(v_i, v_j)

    if reduce_transitive:
        # Remove the redundant edges in place rather than via
        # ``transitive_reduction()``, which would build a second full copy of
        # the graph for every transformation of an experiment sweep.
        # ``transitive_edges()`` lists each redundant edge exactly once.
        for src, dst in transformed.transitive_edges():
            transformed.remove_edge(src, dst)

    # Lines 14-17: build G_par from the *original* node and edge sets.
    parallel_nodes = set(graph.nodes()) - predecessors - successors - {v_off}
    gpar = graph.subgraph(parallel_nodes)

    transformed_task = DagTask(
        graph=transformed,
        offloaded_node=v_off,
        period=task.period,
        deadline=task.deadline,
        name=f"{task.name}'",
        metadata={**task.metadata, "sync_node": sync_node, "transformed_from": task.name},
    )

    return TransformedTask(
        original=task,
        task=transformed_task,
        gpar=gpar,
        sync_node=sync_node,
        direct_predecessors=direct_predecessors,
        predecessors=predecessors,
        successors=successors,
        rerouted_edges=rerouted,
    )
