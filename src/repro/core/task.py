"""Sporadic DAG task model with optional heterogeneous (offloaded) node.

A parallel real-time task is represented, following the paper, by
``tau = <G, T, D>`` where

* ``G = (V, E)`` is a DAG whose nodes carry WCETs.  Nodes run on the host
  processor except for a single *offloaded node* ``v_off`` that executes on
  the accelerator device,
* ``T`` is the minimum inter-arrival time (period), and
* ``D`` is the constrained relative deadline (``D <= T``).

:class:`DagTask` wraps a :class:`~repro.core.graph.DirectedAcyclicGraph`
together with the offloaded-node designation and the timing parameters, and
exposes the DAG metrics (`volume`, `critical path length`, utilisation, ...)
that the response-time analyses consume.  :class:`TaskSet` groups several
tasks for system-level schedulability experiments.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Optional

from .exceptions import ValidationError
from .graph import DirectedAcyclicGraph, NodeId

__all__ = ["OFFLOADED_NODE_DEFAULT_ID", "DagTask", "TaskSet"]

#: Conventional identifier used for the offloaded node by generators and
#: worked examples.  Any identifier can be designated as offloaded, this is
#: merely the library-wide default name.
OFFLOADED_NODE_DEFAULT_ID: str = "v_off"


@dataclass
class DagTask:
    """A sporadic DAG task, optionally with one offloaded node.

    Parameters
    ----------
    graph:
        The DAG ``G = (V, E)``.  Node weights are WCETs: ``C_i`` for host
        nodes and ``C_off`` for the offloaded node.
    offloaded_node:
        Identifier of the node executed on the accelerator device, or
        ``None`` for a fully homogeneous task.
    period:
        Minimum inter-arrival time ``T``.  ``None`` means "not specified",
        which is convenient for experiments that only look at response
        times.
    deadline:
        Constrained relative deadline ``D``; defaults to the period.
    name:
        Optional human-readable task name used in reports.
    """

    graph: DirectedAcyclicGraph
    offloaded_node: Optional[NodeId] = None
    period: Optional[float] = None
    deadline: Optional[float] = None
    name: str = "tau"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.offloaded_node is not None and self.offloaded_node not in self.graph:
            raise ValidationError(
                f"offloaded node {self.offloaded_node!r} is not a node of the graph"
            )
        if self.deadline is None:
            self.deadline = self.period
        if (
            self.period is not None
            and self.deadline is not None
            and self.deadline > self.period
        ):
            raise ValidationError(
                f"constrained deadline required: D={self.deadline} > T={self.period}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_wcets(
        cls,
        wcets: Mapping[NodeId, float],
        edges: Iterable[tuple[NodeId, NodeId]],
        offloaded_node: Optional[NodeId] = None,
        period: Optional[float] = None,
        deadline: Optional[float] = None,
        name: str = "tau",
    ) -> "DagTask":
        """Build a task directly from a WCET mapping and an edge list."""
        graph = DirectedAcyclicGraph.from_dict(wcets, edges)
        return cls(
            graph=graph,
            offloaded_node=offloaded_node,
            period=period,
            deadline=deadline,
            name=name,
        )

    def copy(self) -> "DagTask":
        """Return a deep copy of the task (the graph is copied as well)."""
        return DagTask(
            graph=self.graph.copy(),
            offloaded_node=self.offloaded_node,
            period=self.period,
            deadline=self.deadline,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def compiled(self):
        """The dense-index :class:`~repro.core.compiled.CompiledTask` view.

        Compiled once per ``(structure, weights)`` generation of the graph
        and cached; the dense simulation core and the batched
        ``simulate_many`` consume this view instead of the object-keyed
        graph.
        """
        return self.graph.compiled()

    # ------------------------------------------------------------------
    # Heterogeneity helpers
    # ------------------------------------------------------------------
    @property
    def is_heterogeneous(self) -> bool:
        """``True`` when the task designates an offloaded node."""
        return self.offloaded_node is not None

    @property
    def offloaded_wcet(self) -> float:
        """``C_off``: the WCET of the offloaded node (``0`` if homogeneous)."""
        if self.offloaded_node is None:
            return 0
        return self.graph.wcet(self.offloaded_node)

    def host_nodes(self) -> list[NodeId]:
        """Identifiers of the nodes executed on the host processor."""
        return [node for node in self.graph.nodes() if node != self.offloaded_node]

    def host_volume(self) -> float:
        """Total WCET of the nodes executed on the host."""
        return self.volume - self.offloaded_wcet

    def offloaded_fraction(self) -> float:
        """``C_off / vol(G)``: fraction of the workload that is offloaded."""
        volume = self.volume
        if volume == 0:
            return 0.0
        return self.offloaded_wcet / volume

    # ------------------------------------------------------------------
    # DAG metrics
    # ------------------------------------------------------------------
    @property
    def volume(self) -> float:
        """``vol(G)``: total WCET of the task."""
        return self.graph.volume()

    @property
    def critical_path_length(self) -> float:
        """``len(G)``: the length of the longest path of the task."""
        return self.graph.critical_path_length()

    def critical_path(self) -> list[NodeId]:
        """One longest path of the task, as a list of node identifiers."""
        return self.graph.critical_path()

    @property
    def node_count(self) -> int:
        """Number of nodes of the DAG (including the offloaded node)."""
        return self.graph.node_count

    def utilisation(self) -> float:
        """``vol(G) / T``; raises if the period is unspecified or zero."""
        if not self.period:
            raise ValidationError(
                f"task {self.name!r} has no period; utilisation is undefined"
            )
        return self.volume / self.period

    def density(self) -> float:
        """``vol(G) / D``; raises if the deadline is unspecified or zero."""
        if not self.deadline:
            raise ValidationError(
                f"task {self.name!r} has no deadline; density is undefined"
            )
        return self.volume / self.deadline

    def parallelism(self) -> float:
        """``vol(G) / len(G)``: the average degree of parallelism of the task."""
        length = self.critical_path_length
        if length == 0:
            return 0.0
        return self.volume / length

    def is_feasible_on_infinite_cores(self) -> bool:
        """``len(G) <= D``: necessary condition for schedulability."""
        if self.deadline is None:
            return True
        return self.critical_path_length <= self.deadline

    # ------------------------------------------------------------------
    # Structural shortcuts used by the analyses
    # ------------------------------------------------------------------
    def predecessors_of_offloaded(self) -> set[NodeId]:
        """``Pred(v_off)``: every node from which ``v_off`` is reachable."""
        if self.offloaded_node is None:
            return set()
        return self.graph.ancestors(self.offloaded_node)

    def successors_of_offloaded(self) -> set[NodeId]:
        """``Succ(v_off)``: every node reachable from ``v_off``."""
        if self.offloaded_node is None:
            return set()
        return self.graph.descendants(self.offloaded_node)

    def parallel_nodes_to_offloaded(self) -> set[NodeId]:
        """``V_par``: nodes that may execute in parallel with ``v_off``.

        Computed exactly as line 14 of Algorithm 1:
        ``V \\ Pred(v_off) \\ Succ(v_off)`` minus the offloaded node itself.
        """
        if self.offloaded_node is None:
            return set()
        others = set(self.graph.nodes())
        others -= self.predecessors_of_offloaded()
        others -= self.successors_of_offloaded()
        others.discard(self.offloaded_node)
        return others

    def offloaded_on_critical_path(self) -> bool:
        """``True`` when ``v_off`` lies on some critical path of ``G``."""
        if self.offloaded_node is None:
            return False
        return self.graph.lies_on_critical_path(self.offloaded_node)

    def with_offloaded_wcet(self, wcet: float) -> "DagTask":
        """Return a copy of the task with ``C_off`` replaced by ``wcet``."""
        if self.offloaded_node is None:
            raise ValidationError(
                f"task {self.name!r} has no offloaded node; cannot set C_off"
            )
        clone = self.copy()
        clone.graph.set_wcet(clone.offloaded_node, wcet)
        return clone

    def with_offloaded_node(self, node_id: Optional[NodeId]) -> "DagTask":
        """Return a copy of the task with a different offloaded designation."""
        clone = self.copy()
        clone.offloaded_node = node_id
        if node_id is not None and node_id not in clone.graph:
            raise ValidationError(
                f"offloaded node {node_id!r} is not a node of the graph"
            )
        return clone

    def as_homogeneous(self) -> "DagTask":
        """Return a copy with no offloaded node (all nodes run on the host)."""
        return self.with_offloaded_node(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        hetero = (
            f", v_off={self.offloaded_node!r} (C_off={self.offloaded_wcet})"
            if self.is_heterogeneous
            else ""
        )
        return (
            f"DagTask(name={self.name!r}, n={self.node_count}, "
            f"vol={self.volume}, len={self.critical_path_length}{hetero})"
        )


@dataclass
class TaskSet:
    """An ordered collection of :class:`DagTask` objects.

    Task sets are used by the schedulability layer
    (:mod:`repro.analysis.schedulability`) to answer system-level questions
    such as "does every task meet its deadline on ``m`` cores under federated
    scheduling?".
    """

    tasks: list[DagTask] = field(default_factory=list)
    name: str = "taskset"

    def add(self, task: DagTask) -> None:
        """Append a task to the set."""
        self.tasks.append(task)

    def __iter__(self) -> Iterator[DagTask]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __getitem__(self, index: int) -> DagTask:
        return self.tasks[index]

    def total_utilisation(self) -> float:
        """Sum of the utilisations of all tasks."""
        return sum(task.utilisation() for task in self.tasks)

    def total_density(self) -> float:
        """Sum of the densities of all tasks."""
        return sum(task.density() for task in self.tasks)

    def hyperperiod(self) -> float:
        """Least common multiple of the task periods (integer periods only)."""
        periods = []
        for task in self.tasks:
            if not task.period:
                raise ValidationError(
                    f"task {task.name!r} has no period; hyperperiod is undefined"
                )
            if task.period != int(task.period):
                raise ValidationError(
                    "hyperperiod is only defined for integer periods"
                )
            periods.append(int(task.period))
        if not periods:
            return 0
        lcm = periods[0]
        for period in periods[1:]:
            lcm = lcm * period // math.gcd(lcm, period)
        return lcm

    def heterogeneous_tasks(self) -> list[DagTask]:
        """Tasks that designate an offloaded node."""
        return [task for task in self.tasks if task.is_heterogeneous]

    def homogeneous_tasks(self) -> list[DagTask]:
        """Tasks without an offloaded node."""
        return [task for task in self.tasks if not task.is_heterogeneous]
