"""Directed acyclic graph substrate used by the whole library.

The paper models a parallel real-time task as a DAG ``G = (V, E)`` whose
nodes carry a worst-case execution time (WCET) and whose edges encode
precedence constraints.  This module provides a small, dependency-free DAG
implementation with exactly the operations required by the analysis:

* structural manipulation (add/remove nodes and edges, copies, subgraphs),
* reachability (``Pred``/``Succ`` sets of the paper),
* the two key DAG metrics ``vol(G)`` (total WCET) and ``len(G)`` (length of
  the critical path, i.e. the longest weighted path),
* helpers used by Algorithm 1 and by Theorem 1 (direct predecessors, longest
  path through a given node, transitive-edge detection and reduction).

The implementation intentionally avoids :mod:`networkx` so that every
algorithmic step of the reproduction is explicit; networkx is only used as an
independent oracle in the test-suite.

Performance architecture
------------------------
Every analysis and experiment of the reproduction bottoms out in the same
handful of structural queries, repeated thousands of times over large DAG
ensembles.  The graph therefore maintains a *dense-index kernel* and a
generation-stamped metric cache (see ``docs/performance.md``):

* node identifiers are interned into dense integer indices ``0..n-1`` (in
  insertion order) with CSR-style adjacency arrays, rebuilt lazily at most
  once per *structural generation*;
* reachability (``descendants``/``ancestors``/``has_path``/``are_parallel``)
  is answered from per-node bitmasks (Python integers used as bitsets)
  computed once per structural generation instead of one BFS per query;
* the derived metrics (``topological_order``, ``volume``,
  ``critical_path_length``, ``earliest_finish_times``,
  ``longest_tail_lengths``, ``transitive_closure``, ...) are cached and
  invalidated by two generation counters: one bumped by structural mutation
  (nodes/edges) and one bumped by weight mutation (:meth:`set_wcet`), so that
  re-weighting a node -- the hot path of the paired ``C_off`` sweeps --
  preserves the reachability tables.

All cached state is an implementation detail: mutating a returned container
never corrupts the cache (mutable results are copied on return), pickling
drops the caches, and cyclic graphs transparently fall back to the original
breadth-first algorithms.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

from .exceptions import (
    CycleError,
    DuplicateNodeError,
    EdgeError,
    NodeNotFoundError,
)

__all__ = ["NodeId", "DirectedAcyclicGraph"]

#: Type alias for node identifiers.  Any hashable value may be used; the
#: library itself uses short strings such as ``"v1"`` or ``"v_off"``.
NodeId = Hashable


class _DenseKernel:
    """Immutable dense-integer view of the graph at one structural generation.

    Node identifiers are interned into indices ``0..n-1`` in insertion order;
    adjacency is stored as CSR-style flat arrays (``ptr``/``idx`` pairs with
    neighbour indices sorted ascending, i.e. by insertion order).  The
    reachability bitmask tables are built lazily because not every workload
    needs them.
    """

    __slots__ = (
        "nodes",
        "index",
        "succ_ptr",
        "succ_idx",
        "pred_ptr",
        "pred_idx",
        "topo",
        "_desc_masks",
        "_anc_masks",
    )

    def __init__(
        self,
        nodes: list[NodeId],
        index: dict[NodeId, int],
        succ_ptr: list[int],
        succ_idx: list[int],
        pred_ptr: list[int],
        pred_idx: list[int],
        topo: list[int],
    ) -> None:
        self.nodes = nodes
        self.index = index
        self.succ_ptr = succ_ptr
        self.succ_idx = succ_idx
        self.pred_ptr = pred_ptr
        self.pred_idx = pred_idx
        self.topo = topo
        self._desc_masks: Optional[list[int]] = None
        self._anc_masks: Optional[list[int]] = None

    def successors_of(self, i: int) -> list[int]:
        return self.succ_idx[self.succ_ptr[i] : self.succ_ptr[i + 1]]

    def predecessors_of(self, i: int) -> list[int]:
        return self.pred_idx[self.pred_ptr[i] : self.pred_ptr[i + 1]]

    def descendant_masks(self) -> list[int]:
        """Bitmask of (strict) descendants per dense index, built once."""
        if self._desc_masks is None:
            masks = [0] * len(self.nodes)
            ptr, idx = self.succ_ptr, self.succ_idx
            for i in reversed(self.topo):
                acc = 0
                for s in idx[ptr[i] : ptr[i + 1]]:
                    acc |= masks[s] | (1 << s)
                masks[i] = acc
            self._desc_masks = masks
        return self._desc_masks

    def ancestor_masks(self) -> list[int]:
        """Bitmask of (strict) ancestors per dense index, built once."""
        if self._anc_masks is None:
            masks = [0] * len(self.nodes)
            ptr, idx = self.pred_ptr, self.pred_idx
            for i in self.topo:
                acc = 0
                for p in idx[ptr[i] : ptr[i + 1]]:
                    acc |= masks[p] | (1 << p)
                masks[i] = acc
            self._anc_masks = masks
        return self._anc_masks

    @staticmethod
    def bits(mask: int) -> Iterator[int]:
        """Indices of the set bits of ``mask``, ascending."""
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low


class DirectedAcyclicGraph:
    """A weighted directed acyclic graph.

    Nodes are identified by arbitrary hashable values and carry a
    non-negative weight, interpreted throughout the library as the node's
    WCET.  Edges are ordered pairs ``(src, dst)`` meaning that ``src`` must
    complete before ``dst`` may start.

    The class maintains adjacency in both directions so that predecessor and
    successor queries are O(out-degree)/O(in-degree), and a generation-stamped
    cache of the derived metrics (see the module docstring) so that repeated
    queries between mutations cost a dictionary lookup.  Acyclicity is *not*
    enforced on every mutation (generators build graphs incrementally); call
    :meth:`check_acyclic` or :meth:`topological_order` to verify it.

    Examples
    --------
    >>> g = DirectedAcyclicGraph()
    >>> g.add_node("a", wcet=2)
    >>> g.add_node("b", wcet=3)
    >>> g.add_edge("a", "b")
    >>> g.volume()
    5
    >>> g.critical_path_length()
    5
    """

    def __init__(self) -> None:
        self._wcet: dict[NodeId, float] = {}
        self._succ: dict[NodeId, set[NodeId]] = {}
        self._pred: dict[NodeId, set[NodeId]] = {}
        self._init_caches()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _init_caches(self) -> None:
        #: Bumped by every mutation of the node or edge sets.
        self._structure_generation: int = 0
        #: Bumped by every WCET update (and by node addition/removal).
        self._weights_generation: int = 0
        self._kernel_cache: Optional[_DenseKernel] = None
        self._kernel_generation: int = -1
        #: ``key -> (stamp, value)``; the stamp is the structure generation
        #: for purely structural results and the ``(structure, weights)``
        #: pair for weight-dependent ones.
        self._metric_cache: dict[str, tuple[object, object]] = {}

    def _touch_structure(self) -> None:
        self._structure_generation += 1

    def _touch_weights(self) -> None:
        self._weights_generation += 1

    @property
    def cache_generation(self) -> tuple[int, int]:
        """The ``(structure, weights)`` generation pair of the cache.

        Exposed for tests and benchmarks; two equal pairs on the same graph
        object guarantee that cached metrics were reused in between.
        """
        return (self._structure_generation, self._weights_generation)

    def invalidate_caches(self) -> None:
        """Drop every cached kernel and metric (results are unaffected).

        Normal code never needs this -- mutations invalidate automatically
        via the generation counters.  The micro-benchmarks call it to measure
        the uncached baseline.
        """
        self._structure_generation += 1
        self._weights_generation += 1
        self._kernel_cache = None
        self._metric_cache.clear()

    def _structural(self, key: str, compute):
        """Memoise ``compute()`` until the next structural mutation."""
        stamp = self._structure_generation
        entry = self._metric_cache.get(key)
        if entry is not None and entry[0] == stamp:
            return entry[1]
        value = compute()
        self._metric_cache[key] = (stamp, value)
        return value

    def _weighted(self, key: str, compute):
        """Memoise ``compute()`` until the next structural or WCET mutation."""
        stamp = (self._structure_generation, self._weights_generation)
        entry = self._metric_cache.get(key)
        if entry is not None and entry[0] == stamp:
            return entry[1]
        value = compute()
        self._metric_cache[key] = (stamp, value)
        return value

    def _kernel(self) -> _DenseKernel:
        """The dense-index kernel for the current structure.

        Raises
        ------
        CycleError
            If the graph contains a cycle (nothing is cached in that case).
        """
        if (
            self._kernel_cache is not None
            and self._kernel_generation == self._structure_generation
        ):
            return self._kernel_cache

        nodes = list(self._wcet)
        index = {node: i for i, node in enumerate(nodes)}
        succ_ptr = [0]
        succ_idx: list[int] = []
        pred_ptr = [0]
        pred_idx: list[int] = []
        for node in nodes:
            succ_idx.extend(sorted(index[s] for s in self._succ[node]))
            succ_ptr.append(len(succ_idx))
            pred_idx.extend(sorted(index[p] for p in self._pred[node]))
            pred_ptr.append(len(pred_idx))

        # Kahn's algorithm with insertion-order tie-breaking; dense indices
        # *are* insertion ranks, so sorting newly ready indices ascending
        # reproduces the historical (pre-kernel) ordering exactly.
        in_degree = [pred_ptr[i + 1] - pred_ptr[i] for i in range(len(nodes))]
        ready = deque(i for i in range(len(nodes)) if in_degree[i] == 0)
        topo: list[int] = []
        while ready:
            i = ready.popleft()
            topo.append(i)
            newly_ready = []
            for s in succ_idx[succ_ptr[i] : succ_ptr[i + 1]]:
                in_degree[s] -= 1
                if in_degree[s] == 0:
                    newly_ready.append(s)
            newly_ready.sort()
            ready.extend(newly_ready)
        if len(topo) != len(nodes):
            raise CycleError("graph contains a cycle", cycle=self.find_cycle())

        kernel = _DenseKernel(
            nodes, index, succ_ptr, succ_idx, pred_ptr, pred_idx, topo
        )
        self._kernel_cache = kernel
        self._kernel_generation = self._structure_generation
        return kernel

    def _acyclic_kernel(self) -> Optional[_DenseKernel]:
        """The kernel, or ``None`` when the graph currently has a cycle."""
        try:
            return self._kernel()
        except CycleError:
            return None

    def __getstate__(self) -> dict:
        # Caches are cheap to rebuild and may be large; never pickle them
        # (the parallel experiment runner ships graphs between processes).
        return {"_wcet": self._wcet, "_succ": self._succ, "_pred": self._pred}

    def __setstate__(self, state: dict) -> None:
        self._wcet = state["_wcet"]
        self._succ = state["_succ"]
        self._pred = state["_pred"]
        self._init_caches()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        wcets: Mapping[NodeId, float],
        edges: Iterable[tuple[NodeId, NodeId]] = (),
    ) -> "DirectedAcyclicGraph":
        """Build a graph from a mapping of WCETs and an iterable of edges.

        Parameters
        ----------
        wcets:
            Mapping from node identifier to WCET.
        edges:
            Iterable of ``(src, dst)`` pairs.  Both endpoints must appear in
            ``wcets``.
        """
        graph = cls()
        for node_id, wcet in wcets.items():
            graph.add_node(node_id, wcet)
        for src, dst in edges:
            graph.add_edge(src, dst)
        return graph

    def copy(self) -> "DirectedAcyclicGraph":
        """Return a deep (structural) copy of the graph.

        Valid cache entries are shared with the copy: cached values are never
        mutated in place (public accessors return fresh containers), so the
        clone can keep serving them until its first own mutation.
        """
        clone = DirectedAcyclicGraph()
        clone._wcet = dict(self._wcet)
        clone._succ = {node: set(nbrs) for node, nbrs in self._succ.items()}
        clone._pred = {node: set(nbrs) for node, nbrs in self._pred.items()}
        clone._structure_generation = self._structure_generation
        clone._weights_generation = self._weights_generation
        clone._kernel_cache = self._kernel_cache
        clone._kernel_generation = self._kernel_generation
        clone._metric_cache = dict(self._metric_cache)
        return clone

    # ------------------------------------------------------------------
    # Basic mutation
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, wcet: float = 0) -> None:
        """Add a node with the given WCET.

        Raises
        ------
        DuplicateNodeError
            If the node already exists.
        ValueError
            If the WCET is negative.
        """
        if node_id in self._wcet:
            raise DuplicateNodeError(node_id)
        if wcet < 0:
            raise ValueError(f"WCET of node {node_id!r} must be >= 0, got {wcet}")
        self._wcet[node_id] = wcet
        self._succ[node_id] = set()
        self._pred[node_id] = set()
        self._touch_structure()
        self._touch_weights()

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node together with all its incident edges."""
        self._require(node_id)
        for succ in list(self._succ[node_id]):
            self._pred[succ].discard(node_id)
        for pred in list(self._pred[node_id]):
            self._succ[pred].discard(node_id)
        del self._succ[node_id]
        del self._pred[node_id]
        del self._wcet[node_id]
        self._touch_structure()
        self._touch_weights()

    def add_edge(self, src: NodeId, dst: NodeId) -> None:
        """Add the precedence edge ``src -> dst``.

        Raises
        ------
        NodeNotFoundError
            If either endpoint does not exist.
        EdgeError
            If the edge is a self loop or already present.
        """
        self._require(src)
        self._require(dst)
        if src == dst:
            raise EdgeError(f"self loop on node {src!r} is not allowed")
        if dst in self._succ[src]:
            raise EdgeError(f"edge ({src!r}, {dst!r}) already exists")
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        self._touch_structure()

    def remove_edge(self, src: NodeId, dst: NodeId) -> None:
        """Remove the edge ``src -> dst``."""
        self._require(src)
        self._require(dst)
        if dst not in self._succ[src]:
            raise EdgeError(f"edge ({src!r}, {dst!r}) does not exist")
        self._succ[src].discard(dst)
        self._pred[dst].discard(src)
        self._touch_structure()

    def set_wcet(self, node_id: NodeId, wcet: float) -> None:
        """Update the WCET of an existing node.

        This invalidates only the weight-dependent caches; the dense kernel
        and the reachability tables survive (re-weighting is the hot path of
        the paired ``C_off`` sweeps).
        """
        self._require(node_id)
        if wcet < 0:
            raise ValueError(f"WCET of node {node_id!r} must be >= 0, got {wcet}")
        self._wcet[node_id] = wcet
        self._touch_weights()

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def _require(self, node_id: NodeId) -> None:
        if node_id not in self._wcet:
            raise NodeNotFoundError(node_id)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._wcet

    def __len__(self) -> int:
        return len(self._wcet)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._wcet)

    @property
    def node_count(self) -> int:
        """Number of nodes in the graph."""
        return len(self._wcet)

    @property
    def edge_count(self) -> int:
        """Number of edges in the graph."""
        return sum(len(nbrs) for nbrs in self._succ.values())

    def nodes(self) -> list[NodeId]:
        """Return the node identifiers in insertion order."""
        return list(self._wcet)

    def edges(self) -> list[tuple[NodeId, NodeId]]:
        """Return all edges as ``(src, dst)`` pairs."""
        return [
            (src, dst) for src in self._wcet for dst in sorted(self._succ[src], key=repr)
        ]

    def wcet(self, node_id: NodeId) -> float:
        """Return the WCET of a node."""
        self._require(node_id)
        return self._wcet[node_id]

    def wcets(self) -> dict[NodeId, float]:
        """Return a copy of the ``node -> WCET`` mapping."""
        return dict(self._wcet)

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        """Return ``True`` if the edge ``src -> dst`` exists."""
        return src in self._succ and dst in self._succ[src]

    def successors(self, node_id: NodeId) -> set[NodeId]:
        """Direct successors of a node (nodes ``v`` with an edge ``node -> v``)."""
        self._require(node_id)
        return set(self._succ[node_id])

    def predecessors(self, node_id: NodeId) -> set[NodeId]:
        """Direct predecessors of a node (nodes ``v`` with an edge ``v -> node``)."""
        self._require(node_id)
        return set(self._pred[node_id])

    def out_degree(self, node_id: NodeId) -> int:
        """Number of outgoing edges of a node."""
        self._require(node_id)
        return len(self._succ[node_id])

    def in_degree(self, node_id: NodeId) -> int:
        """Number of incoming edges of a node."""
        self._require(node_id)
        return len(self._pred[node_id])

    def sources(self) -> list[NodeId]:
        """Nodes without incoming edges, in insertion order."""
        return [node for node in self._wcet if not self._pred[node]]

    def sinks(self) -> list[NodeId]:
        """Nodes without outgoing edges, in insertion order."""
        return [node for node in self._wcet if not self._succ[node]]

    # ------------------------------------------------------------------
    # Ordering and reachability
    # ------------------------------------------------------------------
    def topological_order(self) -> list[NodeId]:
        """Return a topological ordering of the nodes (Kahn's algorithm).

        Ties are broken by node insertion order, which makes the ordering --
        and everything derived from it, such as the breadth-first scheduler --
        deterministic.  The ordering is cached until the next structural
        mutation.

        Raises
        ------
        CycleError
            If the graph contains a cycle.
        """
        kernel = self._kernel()
        return [kernel.nodes[i] for i in kernel.topo]

    def compiled(self):
        """The public dense-index view of the graph (weights included).

        Returns the cached :class:`~repro.core.compiled.CompiledTask` for the
        current ``(structure, weights)`` generation; see
        :mod:`repro.core.compiled`.

        Raises
        ------
        CycleError
            If the graph contains a cycle.
        """
        from .compiled import compile_graph

        return compile_graph(self)

    def is_acyclic(self) -> bool:
        """Return ``True`` if the graph contains no directed cycle."""
        return self._acyclic_kernel() is not None

    def check_acyclic(self) -> None:
        """Raise :class:`CycleError` if the graph contains a cycle."""
        self._kernel()

    def find_cycle(self) -> Optional[list[NodeId]]:
        """Return one directed cycle as a list of nodes, or ``None``.

        The returned list contains the nodes of the cycle in order; the edge
        from the last element back to the first closes the cycle.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self._wcet}
        parent: dict[NodeId, NodeId] = {}

        for start in self._wcet:
            if colour[start] != WHITE:
                continue
            stack: list[tuple[NodeId, Iterator[NodeId]]] = [
                (start, iter(sorted(self._succ[start], key=repr)))
            ]
            colour[start] = GREY
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for succ in neighbours:
                    if colour[succ] == WHITE:
                        colour[succ] = GREY
                        parent[succ] = node
                        stack.append((succ, iter(sorted(self._succ[succ], key=repr))))
                        advanced = True
                        break
                    if colour[succ] == GREY:
                        cycle = [succ]
                        cursor = node
                        while cursor != succ:
                            cycle.append(cursor)
                            cursor = parent[cursor]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def descendants(self, node_id: NodeId) -> set[NodeId]:
        """All nodes reachable from ``node_id`` (``Succ(v)`` in the paper).

        The node itself is *not* included.  Served from the cached bitmask
        reachability table on acyclic graphs.
        """
        self._require(node_id)
        kernel = self._acyclic_kernel()
        if kernel is None:
            return self._reach(node_id, self._succ)
        mask = kernel.descendant_masks()[kernel.index[node_id]]
        return {kernel.nodes[i] for i in _DenseKernel.bits(mask)}

    def ancestors(self, node_id: NodeId) -> set[NodeId]:
        """All nodes from which ``node_id`` is reachable (``Pred(v)``).

        The node itself is *not* included.
        """
        self._require(node_id)
        kernel = self._acyclic_kernel()
        if kernel is None:
            return self._reach(node_id, self._pred)
        mask = kernel.ancestor_masks()[kernel.index[node_id]]
        return {kernel.nodes[i] for i in _DenseKernel.bits(mask)}

    def _reach(
        self, start: NodeId, adjacency: Mapping[NodeId, set[NodeId]]
    ) -> set[NodeId]:
        """Breadth-first reachability; fallback for graphs with cycles."""
        seen: set[NodeId] = set()
        frontier = deque(adjacency[start])
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(adjacency[node] - seen)
        return seen

    def has_path(self, src: NodeId, dst: NodeId) -> bool:
        """Return ``True`` if there is a directed path from ``src`` to ``dst``."""
        self._require(src)
        self._require(dst)
        if src == dst:
            return True
        kernel = self._acyclic_kernel()
        if kernel is None:
            return dst in self._reach(src, self._succ)
        masks = kernel.descendant_masks()
        return bool(masks[kernel.index[src]] >> kernel.index[dst] & 1)

    def are_parallel(self, first: NodeId, second: NodeId) -> bool:
        """Return ``True`` when neither node can reach the other.

        Two parallel (a.k.a. independent or concurrent) nodes may execute at
        the same time; this is exactly the notion used to build ``G_par``.
        """
        if first == second:
            return False
        return not self.has_path(first, second) and not self.has_path(second, first)

    # ------------------------------------------------------------------
    # DAG metrics: volume and critical path
    # ------------------------------------------------------------------
    def volume(self) -> float:
        """``vol(G)``: the sum of the WCETs of all nodes.

        In the paper's system model the volume is the WCET of the task when
        executed entirely sequentially.
        """
        return self._weighted("volume", lambda: sum(self._wcet.values()))

    def critical_path_length(self) -> float:
        """``len(G)``: the length of the longest weighted path.

        Node weights (WCETs) are summed along the path; edge weights do not
        exist in this model.  For the empty graph the length is ``0``.
        """
        return self._weighted("critical_path_length", self._compute_length)

    def _compute_length(self) -> float:
        if not self._wcet:
            return 0
        return max(self._finish_map().values())

    def critical_path(self) -> list[NodeId]:
        """Return one critical (longest) path as an ordered list of nodes.

        Ties are broken deterministically by node insertion order so the
        returned path is stable across runs.
        """
        return list(self._weighted("critical_path", self._compute_critical_path))

    def _compute_critical_path(self) -> list[NodeId]:
        if not self._wcet:
            return []
        kernel = self._kernel()
        wcets = [self._wcet[node] for node in kernel.nodes]
        finish: list[float] = [0] * len(kernel.nodes)
        best_pred: list[Optional[int]] = [None] * len(kernel.nodes)
        for i in kernel.topo:
            best: Optional[int] = None
            best_finish = 0.0
            # Predecessor indices are sorted ascending (= insertion order)
            # and the comparison is strict, so ties resolve to the earliest
            # inserted predecessor, as they always have.
            for p in kernel.predecessors_of(i):
                if finish[p] > best_finish:
                    best_finish = finish[p]
                    best = p
            finish[i] = best_finish + wcets[i]
            best_pred[i] = best
        end = max(kernel.topo, key=lambda i: (finish[i], -i))
        path = [end]
        cursor = best_pred[end]
        while cursor is not None:
            path.append(cursor)
            cursor = best_pred[cursor]
        path.reverse()
        return [kernel.nodes[i] for i in path]

    def _finish_map(self) -> dict[NodeId, float]:
        """Cached ``earliest_finish_times`` mapping (do not mutate)."""
        return self._weighted("earliest_finish_times", self._compute_finish_map)

    def _compute_finish_map(self) -> dict[NodeId, float]:
        kernel = self._kernel()
        finish: dict[NodeId, float] = {}
        for i in kernel.topo:
            node = kernel.nodes[i]
            longest_pred = max(
                (finish[kernel.nodes[p]] for p in kernel.predecessors_of(i)),
                default=0,
            )
            finish[node] = longest_pred + self._wcet[node]
        return finish

    def earliest_finish_times(self) -> dict[NodeId, float]:
        """Length of the longest path *ending* at each node (inclusive).

        Equivalently, the earliest time each node can complete on an
        infinitely parallel machine.  Used both by the critical-path
        computation and by the simulator's sanity checks.
        """
        return dict(self._finish_map())

    def _tail_map(self) -> dict[NodeId, float]:
        """Cached ``longest_tail_lengths`` mapping (do not mutate)."""
        return self._weighted("longest_tail_lengths", self._compute_tail_map)

    def _compute_tail_map(self) -> dict[NodeId, float]:
        kernel = self._kernel()
        tail: dict[NodeId, float] = {}
        for i in reversed(kernel.topo):
            node = kernel.nodes[i]
            longest_succ = max(
                (tail[kernel.nodes[s]] for s in kernel.successors_of(i)),
                default=0,
            )
            tail[node] = longest_succ + self._wcet[node]
        return tail

    def longest_tail_lengths(self) -> dict[NodeId, float]:
        """Length of the longest path *starting* at each node (inclusive).

        This is the classical "bottom level" used by critical-path-first list
        scheduling heuristics.
        """
        return dict(self._tail_map())

    def longest_path_through(self, node_id: NodeId) -> float:
        """Length of the longest path constrained to pass through ``node_id``.

        Computed as ``top_level(node) + bottom_level(node) - C(node)`` so that
        the node's own WCET is only counted once.  Theorem 1 of the paper uses
        this quantity to decide whether the offloaded node belongs to a
        critical path of the transformed DAG.
        """
        self._require(node_id)
        finish = self._finish_map()
        tail = self._tail_map()
        return finish[node_id] + tail[node_id] - self._wcet[node_id]

    def lies_on_critical_path(self, node_id: NodeId, relative_tolerance: float = 1e-9) -> bool:
        """Return ``True`` when ``node_id`` belongs to *some* critical path.

        With floating-point WCETs the two longest-path computations can differ
        by a few ULPs even for mathematically equal values; ties are resolved
        *towards* the critical path (within ``relative_tolerance``), which is
        the conservative direction for the heterogeneous analysis (Scenario 1
        may only be used when the offloaded node is strictly off the critical
        path).
        """
        length = self.critical_path_length()
        tolerance = relative_tolerance * max(1.0, abs(length))
        return self.longest_path_through(node_id) >= length - tolerance

    # ------------------------------------------------------------------
    # Transitive edges
    # ------------------------------------------------------------------
    def transitive_edges(self) -> list[tuple[NodeId, NodeId]]:
        """Return every edge ``(u, v)`` that is implied by a longer path.

        The paper's system model assumes transitive edges do not exist; the
        transformation algorithm relies on this assumption.  This helper lets
        validators detect violations and :meth:`transitive_reduction` remove
        them.
        """
        kernel = self._acyclic_kernel()
        if kernel is None:
            return self._transitive_edges_bfs()
        masks = kernel.descendant_masks()
        redundant: list[tuple[NodeId, NodeId]] = []
        for i in range(len(kernel.nodes)):
            direct = kernel.successors_of(i)
            if len(direct) < 2:
                continue
            # A direct edge (src, dst) is transitive iff dst is reachable
            # from one of src's *other* direct successors.
            reachable_via_others = 0
            for mid in direct:
                reachable_via_others |= masks[mid]
            for dst in direct:
                if reachable_via_others >> dst & 1:
                    redundant.append((kernel.nodes[i], kernel.nodes[dst]))
        return redundant

    def _transitive_edges_bfs(self) -> list[tuple[NodeId, NodeId]]:
        redundant: list[tuple[NodeId, NodeId]] = []
        for src in self._wcet:
            direct = self._succ[src]
            if len(direct) < 2:
                continue
            reachable_via_others: set[NodeId] = set()
            for mid in direct:
                reachable_via_others |= self._reach(mid, self._succ)
            for dst in direct:
                if dst in reachable_via_others:
                    redundant.append((src, dst))
        return redundant

    def transitive_reduction(self) -> "DirectedAcyclicGraph":
        """Return a copy of the graph with all transitive edges removed."""
        reduced = self.copy()
        for src, dst in self.transitive_edges():
            if reduced.has_edge(src, dst):
                reduced.remove_edge(src, dst)
        return reduced

    def transitive_closure(self) -> dict[NodeId, set[NodeId]]:
        """Return the full reachability relation ``node -> descendants``.

        Derived from the cached bitmask tables in a single pass; the returned
        sets are fresh copies, safe to mutate.
        """
        closure = self._structural("transitive_closure", self._compute_closure)
        return {node: set(descendants) for node, descendants in closure.items()}

    def _compute_closure(self) -> dict[NodeId, frozenset[NodeId]]:
        kernel = self._acyclic_kernel()
        if kernel is None:
            return {
                node: frozenset(self._reach(node, self._succ))
                for node in self._wcet
            }
        masks = kernel.descendant_masks()
        return {
            node: frozenset(
                kernel.nodes[i] for i in _DenseKernel.bits(masks[kernel.index[node]])
            )
            for node in self._wcet
        }

    # ------------------------------------------------------------------
    # Subgraphs and structural edits used by Algorithm 1
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[NodeId]) -> "DirectedAcyclicGraph":
        """Return the subgraph induced by ``nodes`` (WCETs preserved)."""
        selected = set(nodes)
        for node in selected:
            self._require(node)
        sub = DirectedAcyclicGraph()
        for node in self._wcet:
            if node in selected:
                sub.add_node(node, self._wcet[node])
        for src in self._wcet:
            if src not in selected:
                continue
            for dst in self._succ[src]:
                if dst in selected:
                    sub.add_edge(src, dst)
        return sub

    def relabelled(self, mapping: Mapping[NodeId, NodeId]) -> "DirectedAcyclicGraph":
        """Return a copy with node identifiers renamed according to ``mapping``.

        Identifiers absent from ``mapping`` are kept unchanged.  The mapping
        must not merge two distinct nodes into one.
        """
        new_ids = [mapping.get(node, node) for node in self._wcet]
        if len(set(new_ids)) != len(new_ids):
            raise EdgeError("relabelling would merge distinct nodes")
        renamed = DirectedAcyclicGraph()
        for node in self._wcet:
            renamed.add_node(mapping.get(node, node), self._wcet[node])
        for src in self._wcet:
            for dst in self._succ[src]:
                renamed.add_edge(mapping.get(src, src), mapping.get(dst, dst))
        return renamed

    def with_unique_source_and_sink(
        self,
        source_id: NodeId = "__source__",
        sink_id: NodeId = "__sink__",
    ) -> "DirectedAcyclicGraph":
        """Return a copy that has exactly one source and one sink.

        If the graph already has a single source (resp. sink) nothing is
        added; otherwise a zero-WCET dummy node is inserted, exactly as the
        system model of the paper prescribes.
        """
        result = self.copy()
        sources = result.sources()
        if len(sources) != 1:
            result.add_node(source_id, 0)
            for node in sources:
                result.add_edge(source_id, node)
        sinks = [node for node in result.sinks() if node != source_id]
        if len(sinks) != 1:
            result.add_node(sink_id, 0)
            for node in sinks:
                result.add_edge(node, sink_id)
        return result

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedAcyclicGraph):
            return NotImplemented
        return self._wcet == other._wcet and self._succ == other._succ

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DirectedAcyclicGraph(nodes={self.node_count}, "
            f"edges={self.edge_count}, vol={self.volume()}, "
            f"len={self.critical_path_length()})"
        )
