"""Public, picklable dense-index view of a weighted DAG task.

The private ``_DenseKernel`` of :mod:`repro.core.graph` interns node
identifiers into dense integer indices with CSR adjacency, but it is
structure-only and deliberately internal.  The simulation stack (PR 3) needs
the same view *plus the weights*, shippable between processes: the dense
simulation core (:mod:`repro.simulation.dense`) and the batched
:func:`~repro.simulation.batch.simulate_many` operate purely on integer
indices and preallocated arrays, and the batch layer compiles each task once
and reuses the compiled view across every ``(cores, variant)`` cell of a
sweep point.

:class:`CompiledTask` is that view:

* ``nodes`` / ``index`` -- the dense index <-> :data:`NodeId` maps (indices
  are insertion ranks, so index order *is* node-creation order);
* ``succ_ptr``/``succ_idx`` and ``pred_ptr``/``pred_idx`` -- CSR successor
  and predecessor arrays shared with the graph's kernel (neighbour indices
  ascending, i.e. creation order);
* ``wcet`` -- the WCET vector as a ``numpy.float64`` array (``wcet_list`` is
  the same vector as plain Python floats, the faster representation for the
  pure-Python event loop);
* ``topo`` -- the cached topological order (dense indices);
* ``instant`` -- the zero-WCET ("instant node") mask;
* ``in_degree`` -- the initial in-degree of every node.

Compilation is cached on the owning graph's ``(structure, weights)``
generation stamp: re-compiling an unmutated task is a dictionary lookup, and
the paired ``C_off`` sweeps (which only call :meth:`set_wcet`) rebuild the
weight vector but share the kernel's structural arrays.

The view is immutable by convention -- mutate neither the lists nor the
arrays -- and picklable (unlike the graph's caches, which are dropped on
pickling); the arrays are shared, never copied, when shipped to worker
processes.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Union

import numpy as np

from .graph import DirectedAcyclicGraph, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .task import DagTask

__all__ = ["CompiledTask", "compile_graph", "compile_task"]


class CompiledTask:
    """Dense-index view of a weighted acyclic graph (see module docstring)."""

    __slots__ = (
        "nodes",
        "index",
        "succ_ptr",
        "succ_idx",
        "pred_ptr",
        "pred_idx",
        "topo",
        "wcet",
        "wcet_list",
        "instant",
        "in_degree",
        "generation",
        "_views",
        "_fingerprint",
    )

    def __init__(
        self,
        nodes: list[NodeId],
        index: dict[NodeId, int],
        succ_ptr: list[int],
        succ_idx: list[int],
        pred_ptr: list[int],
        pred_idx: list[int],
        topo: list[int],
        wcet: np.ndarray,
        generation: tuple[int, int],
    ) -> None:
        self.nodes = nodes
        self.index = index
        self.succ_ptr = succ_ptr
        self.succ_idx = succ_idx
        self.pred_ptr = pred_ptr
        self.pred_idx = pred_idx
        self.topo = topo
        self.wcet = wcet
        self.wcet_list = wcet.tolist()
        self.instant = wcet == 0.0
        self.in_degree = [
            pred_ptr[i + 1] - pred_ptr[i] for i in range(len(nodes))
        ]
        self.generation = generation
        self._views: dict[str, np.ndarray] = {}
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes of the compiled view."""
        return len(self.nodes)

    def successors_of(self, i: int) -> list[int]:
        """Direct successor indices of dense index ``i`` (creation order)."""
        return self.succ_idx[self.succ_ptr[i] : self.succ_ptr[i + 1]]

    def predecessors_of(self, i: int) -> list[int]:
        """Direct predecessor indices of dense index ``i`` (creation order)."""
        return self.pred_idx[self.pred_ptr[i] : self.pred_ptr[i + 1]]

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Batch (array) views
    # ------------------------------------------------------------------
    # The vectorised lockstep kernel (:mod:`repro.simulation.vectorized`)
    # stacks many simulations of compiled tasks into flat numpy state; it
    # needs the CSR and in-degree data as integer arrays rather than Python
    # lists.  The arrays are materialised once per view and cached (the view
    # is immutable); like the lists they must never be mutated.

    def _view(self, name: str, source: list[int]) -> np.ndarray:
        array = self._views.get(name)
        if array is None:
            array = np.asarray(source, dtype=np.int64)
            self._views[name] = array
        return array

    @property
    def succ_ptr_array(self) -> np.ndarray:
        """``succ_ptr`` as an ``int64`` array (cached)."""
        return self._view("succ_ptr", self.succ_ptr)

    @property
    def succ_idx_array(self) -> np.ndarray:
        """``succ_idx`` as an ``int64`` array (cached)."""
        return self._view("succ_idx", self.succ_idx)

    @property
    def in_degree_array(self) -> np.ndarray:
        """``in_degree`` as an ``int64`` array (cached)."""
        return self._view("in_degree", self.in_degree)

    # ------------------------------------------------------------------
    # Content fingerprint
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of the weighted graph (structure + WCETs).

        The hash is computed over the *sorted* ``(str(node), wcet)`` pairs
        and the sorted stringified edge list, so it depends only on the
        graph's content: two structurally identical DAGs built in different
        node-insertion orders hash equal, and the hash survives pickling
        (unlike the generation stamp, which is per-object).  The serving
        layer (:mod:`repro.service.fingerprint`) keys its memoised results
        on this value, which is why it lives on the compiled view: the
        stamp-cached compile and the result-cache key agree -- an unmutated
        task hashes exactly once.

        Node identifiers are stringified the same way as the JSON codec
        (:func:`repro.io.json_io.task_to_dict`); identifiers whose ``str``
        forms collide would alias, matching the on-disk format's own
        behaviour.
        """
        if self._fingerprint is None:
            names = [str(node) for node in self.nodes]
            nodes = sorted(zip(names, self.wcet_list))
            edges = sorted(
                (names[i], names[s])
                for i in range(len(names))
                for s in self.succ_idx[self.succ_ptr[i] : self.succ_ptr[i + 1]]
            )
            payload = json.dumps(
                {"edges": edges, "nodes": nodes}, separators=(",", ":")
            ).encode("utf-8")
            self._fingerprint = hashlib.sha256(payload).hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CompiledTask(nodes={len(self.nodes)}, "
            f"edges={len(self.succ_idx)}, generation={self.generation})"
        )

    # ------------------------------------------------------------------
    # Pickling (slots classes need explicit state)
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple:
        return (
            self.nodes,
            self.index,
            self.succ_ptr,
            self.succ_idx,
            self.pred_ptr,
            self.pred_idx,
            self.topo,
            self.wcet,
            self.generation,
        )

    def __setstate__(self, state: tuple) -> None:
        self.__init__(*state)


def compile_graph(graph: DirectedAcyclicGraph) -> CompiledTask:
    """Compile ``graph`` into a :class:`CompiledTask`, cached per generation.

    Raises
    ------
    CycleError
        If the graph contains a cycle (the dense view only exists for DAGs).
    """

    def build() -> CompiledTask:
        kernel = graph._kernel()
        wcet = np.array(
            [graph.wcet(node) for node in kernel.nodes], dtype=np.float64
        )
        return CompiledTask(
            kernel.nodes,
            kernel.index,
            kernel.succ_ptr,
            kernel.succ_idx,
            kernel.pred_ptr,
            kernel.pred_idx,
            kernel.topo,
            wcet,
            graph.cache_generation,
        )

    return graph._weighted("compiled_task", build)


def compile_task(source: Union["DagTask", DirectedAcyclicGraph]) -> CompiledTask:
    """Compile a :class:`~repro.core.task.DagTask` (or a bare graph).

    The result is cached on the underlying graph's generation stamp, so
    repeated calls between mutations are free and one compile serves every
    platform / policy / offload combination the task is simulated under.
    """
    graph = getattr(source, "graph", source)
    return compile_graph(graph)
