"""Thin Python client of the HTTP evaluation service.

Stdlib-only (:mod:`urllib.request`); tasks are shipped in the on-disk JSON
form of :mod:`repro.io.json_io`, so a :class:`~repro.core.task.DagTask`
built locally and a task document loaded from a file are interchangeable.

Every endpoint call carries the client's default socket ``timeout`` and
accepts a per-call override.  Transient failures -- connection errors and
any response whose error envelope says ``retryable`` (429 overloaded,
503 draining, 504 deadline expired) -- are retried with exponential
backoff; a server-supplied ``Retry-After`` floors the delay.  Retrying is
safe by construction: every service request is idempotent (results are
keyed on content fingerprints).

Typical use::

    from repro.service import ServiceClient

    client = ServiceClient(port=8181)
    client.health()
    makespan = client.simulate(task, cores=4)
    bounds = client.analyse(task, cores=[2, 4, 8], timeout=10.0)

Every POST carries a client-generated ``X-Repro-Trace-Id`` so the server's
request trace is correlatable from this side: the id of the last completed
call is kept in :attr:`ServiceClient.last_trace_id`, failures carry it as
``ServiceError.trace_id``, and :meth:`ServiceClient.trace` pulls the span
tree back down.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from typing import Iterable, Optional, Union

from ..core.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from ..core.task import DagTask
from ..io.json_io import task_to_dict
from ..resilience import retry_call
from .tracing import TRACE_HEADER, new_trace_id

__all__ = ["ServiceClient"]


def _error_from_response(error: urllib.error.HTTPError, path: str) -> ServiceError:
    """Map an HTTP error response onto the service exception hierarchy.

    Understands both the structured envelope (``{"error": {"code",
    "message", "retryable", ...}}``) and a bare string ``error`` field, so
    the client keeps working against older servers.
    """
    message: Optional[str] = None
    retryable: Optional[bool] = None
    retry_after: Optional[float] = None
    trace_id: Optional[str] = None
    try:
        envelope = json.loads(error.read().decode("utf-8")).get("error")
    except Exception:  # noqa: BLE001 - no JSON body on the error
        envelope = None
    if isinstance(envelope, dict):
        message = envelope.get("message")
        retryable = envelope.get("retryable")
        retry_after = envelope.get("retry_after")
        trace_id = envelope.get("trace_id")
    elif isinstance(envelope, str):
        message = envelope
    if trace_id is None and error.headers is not None:
        trace_id = error.headers.get(TRACE_HEADER)
    if retry_after is None:
        header = error.headers.get("Retry-After") if error.headers else None
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
    message = message or f"service returned HTTP {error.code} for {path}"
    if error.code == 429:
        mapped: ServiceError = ServiceOverloadedError(
            message, retry_after=retry_after
        )
    elif error.code == 503:
        mapped = ServiceClosedError(message)
    elif error.code == 504:
        mapped = ServiceTimeoutError(message)
    else:
        mapped = ServiceError(message)
    if retryable is not None:
        mapped.retryable = bool(retryable)  # instance attr shadows the class hint
    if retry_after is not None:
        mapped.retry_after = retry_after  # type: ignore[attr-defined]
    if trace_id:
        mapped.trace_id = str(trace_id)
    return mapped


def _transport_error(base_url: str, error: Exception) -> ServiceError:
    """Map a connection-level failure onto a retryable :class:`ServiceError`.

    ``urllib`` only wraps errors raised while *opening* the connection into
    :class:`~urllib.error.URLError`; a reset or disconnect while reading
    the response (``ECONNRESET``, :class:`http.client.RemoteDisconnected`,
    a socket read timeout) escapes as a raw :class:`OSError` /
    :class:`http.client.HTTPException`.  Callers should never have to
    catch platform socket exceptions to talk to the service, and every
    request is idempotent by fingerprint -- so all of these collapse into
    the same structured, retryable "cannot reach" error.
    """
    reason = getattr(error, "reason", error)
    unreachable = ServiceError(
        f"cannot reach evaluation service at {base_url}: {reason}"
    )
    unreachable.retryable = True  # connection-level: safe to retry
    return unreachable


def _wire_priorities(
    task: Union[DagTask, dict], document: dict, priorities: dict
) -> dict:
    """Serialise a fixed-priority table with in-process binding semantics.

    :class:`~repro.simulation.schedulers.FixedPriorityPolicy` looks nodes
    up with plain ``==``/``hash`` (``priorities.get(node)``), while the
    wire form stringifies every node id -- so a naive
    ``{str(k): v for k, v in priorities.items()}`` changes which keys
    *bind*: an int-keyed table stops matching a task whose nodes are the
    same ints on a server that parsed them back as strings, and a key that
    merely *prints* like some node name (int ``3`` vs node ``"3"``) starts
    matching where it never did in process.

    Binding is therefore resolved *client-side*, against the actual task
    nodes, and only bound entries are shipped -- keyed by the node's wire
    name, which is exactly the name the server-side task carries.  Unbound
    keys are dropped: in process they are never looked up, so dropping
    them is the only serialisation that cannot change the policy.
    """
    nodes = (
        list(task.graph.nodes())
        if isinstance(task, DagTask)
        else list(document.get("nodes", {}))
    )
    wire: dict = {}
    for node in nodes:
        if node in priorities:
            wire[str(node)] = priorities[node]
    return wire


class ServiceClient:
    """Synchronous JSON client of :mod:`repro.service.http`.

    Parameters
    ----------
    host, port:
        Where the service listens; alternatively pass a full ``base_url``.
    timeout:
        Default per-request socket timeout in seconds, used by every call
        unless it passes its own.  Exact-makespan requests can
        legitimately run long -- size the timeout to the hardest instance
        you intend to submit.
    retries:
        Retries per request *after* the first attempt (``0`` disables).
        Only transient failures are retried: connection errors, and HTTP
        errors whose envelope marks them retryable.
    backoff, backoff_max:
        Exponential backoff schedule of those retries (seconds); a
        ``Retry-After`` from the server floors each delay.
    retry_seed:
        Seed of the backoff jitter stream; ``None`` (default) disables
        jitter entirely so retry timing is deterministic.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8181,
        *,
        timeout: float = 60.0,
        base_url: Optional[str] = None,
        retries: int = 2,
        backoff: float = 0.1,
        backoff_max: float = 5.0,
        retry_seed: Optional[int] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = (base_url or f"http://{host}:{port}").rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.retry_seed = retry_seed
        #: Trace id echoed by the server on the most recent completed
        #: request (``None`` before the first call or when the server runs
        #: with tracing disabled).  Feed it to :meth:`trace` to pull the
        #: span tree of the call that just returned.
        self.last_trace_id: Optional[str] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request_once(
        self,
        path: str,
        document: Optional[dict],
        timeout: float,
        trace_id: Optional[str] = None,
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if document is not None:
            data = json.dumps(document).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                echoed = response.headers.get(TRACE_HEADER)
                if document is not None:
                    self.last_trace_id = echoed
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            mapped = _error_from_response(error, path)
            if document is not None:
                self.last_trace_id = mapped.trace_id
            raise mapped from error
        except (
            urllib.error.URLError,  # must precede OSError (it is one)
            http.client.HTTPException,
            OSError,
        ) as error:
            raise _transport_error(self.base_url, error) from error

    def _request(
        self,
        path: str,
        document: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        effective = self.timeout if timeout is None else timeout
        # One trace id for the whole logical request: retries reuse it, so
        # server-side all attempts of one call share a correlatable id
        # (the ring keeps the last attempt -- id reuse is last-write-wins).
        trace_id = new_trace_id() if document is not None else None
        return retry_call(
            lambda: self._request_once(path, document, effective, trace_id),
            attempts=self.retries + 1,
            base_delay=self.backoff,
            max_delay=self.backoff_max,
            seed=self.retry_seed,
            retry_on=(ServiceError,),
            should_retry=lambda error: bool(getattr(error, "retryable", False)),
            retry_after=lambda error: getattr(error, "retry_after", None),
        )

    @staticmethod
    def _task_document(task: Union[DagTask, dict]) -> dict:
        return task_to_dict(task) if isinstance(task, DagTask) else dict(task)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self, *, timeout: Optional[float] = None) -> dict:
        """Readiness probe (``GET /health``), single attempt.

        Returns the probe document -- ``{"status": "ok" | "draining" |
        "closed", ...}`` -- even when the server answers 503 for the
        draining/closed phases: a probe *reports* state, it does not fail
        on it.  No retries either; a health check is a point-in-time
        question, and retrying would mask exactly the transient states it
        exists to surface.  Connection-level failures still raise.
        """
        effective = self.timeout if timeout is None else timeout
        request = urllib.request.Request(
            f"{self.base_url}/health", headers={"Accept": "application/json"}
        )
        try:
            with urllib.request.urlopen(request, timeout=effective) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            if error.code == 503:
                try:
                    document = json.loads(error.read().decode("utf-8"))
                except Exception:  # noqa: BLE001 - no JSON body
                    document = None
                if isinstance(document, dict) and "status" in document:
                    return document
            raise _error_from_response(error, "/health") from error
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            OSError,
        ) as error:
            raise _transport_error(self.base_url, error) from error

    def stats(self, *, timeout: Optional[float] = None) -> dict:
        """Service counters (``GET /stats``)."""
        return self._request("/stats", timeout=timeout)

    def metrics(
        self, *, timeout: Optional[float] = None, format: str = "json"
    ) -> Union[dict, str]:  # noqa: A002 - mirrors the wire concept
        """Metrics registry (``GET /metrics``).

        ``format="json"`` (default) returns the JSON rendering;
        ``format="text"`` returns the Prometheus text exposition as a
        string -- the same bytes a scraper sees.
        """
        if format == "json":
            return self._request("/metrics", timeout=timeout)
        if format != "text":
            raise ValueError(f"format must be 'json' or 'text', got {format!r}")
        effective = self.timeout if timeout is None else timeout
        request = urllib.request.Request(
            f"{self.base_url}/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(request, timeout=effective) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise _error_from_response(error, "/metrics") from error
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            OSError,
        ) as error:
            raise _transport_error(self.base_url, error) from error

    def traces(
        self,
        *,
        limit: int = 50,
        slow: bool = False,
        errors: bool = False,
        timeout: Optional[float] = None,
    ) -> dict:
        """Recent request traces kept by the server (``GET /traces``).

        Returns ``{"traces": [summaries...], "ring": ring-stats}``,
        newest first.  ``slow=True`` keeps only traces at or above the
        server's rolling slow-percentile threshold; ``errors=True`` keeps
        only error/degraded traces.
        """
        query = [f"limit={int(limit)}"]
        if slow:
            query.append("slow=1")
        if errors:
            query.append("errors=1")
        return self._request("/traces?" + "&".join(query), timeout=timeout)

    def trace(
        self,
        trace_id: str,
        *,
        format: str = "tree",  # noqa: A002 - mirrors the wire concept
        timeout: Optional[float] = None,
    ) -> dict:
        """One trace's span tree (``GET /traces/<id>``).

        ``format="chrome"`` returns Chrome trace-event JSON instead --
        save it to a file and load it in Perfetto (ui.perfetto.dev).
        Raises a :class:`ServiceError` with code ``trace-not-found`` when
        the id was sampled out of or evicted from the ring.
        """
        if format not in ("tree", "chrome"):
            raise ValueError(
                f"format must be 'tree' or 'chrome', got {format!r}"
            )
        path = f"/traces/{trace_id}"
        if format == "chrome":
            path += "?format=chrome"
        return self._request(path, timeout=timeout)

    def simulate(
        self,
        task: Union[DagTask, dict],
        cores: int = 2,
        accelerators: int = 1,
        *,
        policy: str = "breadth-first",
        policy_seed: Optional[int] = None,
        priorities: Optional[dict] = None,
        offload_enabled: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> float:
        """Makespan of one simulated execution (``POST /simulate``).

        ``timeout`` bounds this call's socket wait; ``deadline`` is
        forwarded to the server as the request's service-side deadline
        (the request fails with HTTP 504 once it expires, even while
        queued).
        """
        document = {
            "task": self._task_document(task),
            "cores": cores,
            "accelerators": accelerators,
            "policy": policy,
            "offload_enabled": offload_enabled,
        }
        if policy_seed is not None:
            document["policy_seed"] = policy_seed
        if priorities is not None:
            document["priorities"] = _wire_priorities(
                task, document["task"], priorities
            )
        if deadline is not None:
            document["timeout"] = deadline
        return float(
            self._request("/simulate", document, timeout=timeout)["makespan"]
        )

    def analyse(
        self,
        task: Union[DagTask, dict],
        cores: Union[int, Iterable[int]] = 2,
        *,
        include_naive: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Response-time bounds per core count (``POST /analyse``)."""
        document = {
            "task": self._task_document(task),
            "cores": cores if isinstance(cores, int) else list(cores),
            "include_naive": include_naive,
        }
        if deadline is not None:
            document["timeout"] = deadline
        return self._request("/analyse", document, timeout=timeout)

    def makespan(
        self,
        task: Union[DagTask, dict],
        cores: int = 2,
        accelerators: int = 1,
        *,
        method: str = "auto",
        time_limit: Optional[float] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Exact minimum makespan + witness schedule (``POST /makespan``)."""
        document = {
            "task": self._task_document(task),
            "cores": cores,
            "accelerators": accelerators,
            "method": method,
        }
        if time_limit is not None:
            document["time_limit"] = time_limit
        if deadline is not None:
            document["timeout"] = deadline
        return self._request("/makespan", document, timeout=timeout)

    def workload(
        self,
        streams: Iterable[dict],
        horizon: float,
        cores: int = 2,
        accelerators: int = 1,
        *,
        policy: str = "breadth-first",
        policy_seed: Optional[int] = None,
        offload_enabled: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Online multi-instance workload metrics (``POST /workload``).

        Each stream is a dict with a ``"task"`` (a :class:`DagTask` or a
        task document), an ``"arrivals"`` spec (an
        :class:`~repro.generator.arrivals.ArrivalProcess` or its dict
        form), and optional ``"deadline"`` / ``"name"`` fields.  Returns
        the schedulability summary plus per-instance response times.
        """
        wire_streams = []
        for spec in streams:
            spec = dict(spec)
            if "task" not in spec or "arrivals" not in spec:
                raise ValueError(
                    "each stream needs 'task' and 'arrivals' entries"
                )
            arrivals = spec["arrivals"]
            entry = {
                "task": self._task_document(spec["task"]),
                "arrivals": (
                    arrivals
                    if isinstance(arrivals, dict)
                    else arrivals.to_dict()
                ),
            }
            if spec.get("deadline") is not None:
                entry["deadline"] = spec["deadline"]
            if spec.get("name") is not None:
                entry["name"] = spec["name"]
            wire_streams.append(entry)
        document = {
            "streams": wire_streams,
            "horizon": horizon,
            "cores": cores,
            "accelerators": accelerators,
            "policy": policy,
            "offload_enabled": offload_enabled,
        }
        if policy_seed is not None:
            document["policy_seed"] = policy_seed
        if deadline is not None:
            document["timeout"] = deadline
        return self._request("/workload", document, timeout=timeout)
