"""Thin Python client of the HTTP evaluation service.

Stdlib-only (:mod:`urllib.request`); tasks are shipped in the on-disk JSON
form of :mod:`repro.io.json_io`, so a :class:`~repro.core.task.DagTask`
built locally and a task document loaded from a file are interchangeable.

Typical use::

    from repro.service import ServiceClient

    client = ServiceClient(port=8181)
    client.health()
    makespan = client.simulate(task, cores=4)
    bounds = client.analyse(task, cores=[2, 4, 8])
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Iterable, Optional, Union

from ..core.exceptions import ServiceError
from ..core.task import DagTask
from ..io.json_io import task_to_dict

__all__ = ["ServiceClient"]


class ServiceClient:
    """Synchronous JSON client of :mod:`repro.service.http`.

    Parameters
    ----------
    host, port:
        Where the service listens; alternatively pass a full ``base_url``.
    timeout:
        Per-request socket timeout in seconds.  Exact-makespan requests can
        legitimately run long -- size the timeout to the hardest instance
        you intend to submit.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8181,
        *,
        timeout: float = 60.0,
        base_url: Optional[str] = None,
    ) -> None:
        self.base_url = (base_url or f"http://{host}:{port}").rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, path: str, document: Optional[dict] = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if document is not None:
            data = json.dumps(document).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get("error")
            except Exception:  # noqa: BLE001 - no JSON body on the error
                message = None
            raise ServiceError(
                message or f"service returned HTTP {error.code} for {path}"
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach evaluation service at {self.base_url}: {error.reason}"
            ) from error

    @staticmethod
    def _task_document(task: Union[DagTask, dict]) -> dict:
        return task_to_dict(task) if isinstance(task, DagTask) else dict(task)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness probe (``GET /health``)."""
        return self._request("/health")

    def stats(self) -> dict:
        """Service counters (``GET /stats``)."""
        return self._request("/stats")

    def simulate(
        self,
        task: Union[DagTask, dict],
        cores: int = 2,
        accelerators: int = 1,
        *,
        policy: str = "breadth-first",
        policy_seed: Optional[int] = None,
        priorities: Optional[dict] = None,
        offload_enabled: bool = True,
    ) -> float:
        """Makespan of one simulated execution (``POST /simulate``)."""
        document = {
            "task": self._task_document(task),
            "cores": cores,
            "accelerators": accelerators,
            "policy": policy,
            "offload_enabled": offload_enabled,
        }
        if policy_seed is not None:
            document["policy_seed"] = policy_seed
        if priorities is not None:
            document["priorities"] = {
                str(node): value for node, value in priorities.items()
            }
        return float(self._request("/simulate", document)["makespan"])

    def analyse(
        self,
        task: Union[DagTask, dict],
        cores: Union[int, Iterable[int]] = 2,
        *,
        include_naive: bool = True,
    ) -> dict:
        """Response-time bounds per core count (``POST /analyse``)."""
        document = {
            "task": self._task_document(task),
            "cores": cores if isinstance(cores, int) else list(cores),
            "include_naive": include_naive,
        }
        return self._request("/analyse", document)

    def makespan(
        self,
        task: Union[DagTask, dict],
        cores: int = 2,
        accelerators: int = 1,
        *,
        method: str = "auto",
        time_limit: Optional[float] = None,
    ) -> dict:
        """Exact minimum makespan + witness schedule (``POST /makespan``)."""
        document = {
            "task": self._task_document(task),
            "cores": cores,
            "accelerators": accelerators,
            "method": method,
        }
        if time_limit is not None:
            document["time_limit"] = time_limit
        return self._request("/makespan", document)
