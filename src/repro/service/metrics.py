"""Thread-safe, dependency-free metrics registry of the serving layer.

The paper this repository reproduces is about *bounding response times*;
the serving tier that evaluates those bounds should itself publish its
response-time distribution.  This module is the substrate: monotonic
:class:`Counter` s, :class:`Gauge` s (set directly or computed by callback
at scrape time) and fixed-bucket :class:`Histogram` s with p50/p95/p99
estimation, collected in a :class:`MetricsRegistry` that renders both a
JSON document (for the harnesses and ``ServiceClient.metrics()``) and the
Prometheus text exposition format (``GET /metrics``), so the service is
scrapeable by standard tooling with zero new dependencies.

Design constraints, in the order they were traded against each other:

* **Hot-path cost.**  ``observe``/``inc`` sit on every request the HTTP
  transport and the facade serve, so a series update is one lock plus a
  couple of arithmetic operations.  Label resolution (kwargs -> series
  tuple) is a dictionary lookup; the common case of an unlabelled metric
  skips it entirely.
* **Fixed buckets, never samples.**  Histograms hold one count per bucket
  (plus sum/min/max), so memory is constant no matter how many requests
  pass through -- the property that makes a "millions of users" metric
  endpoint safe.  Percentiles are therefore *estimates*: linear
  interpolation inside the bucket containing the rank, exact at bucket
  boundaries, clamped to the observed min/max at the tails.  The
  estimation error is bounded by the containing bucket's width
  (``tests/test_metrics.py`` enforces this against exact percentiles).
* **Single source of truth.**  The facade's ``stats()`` document reads the
  same counter objects ``/metrics`` renders, so the two endpoints cannot
  drift apart -- the reconciliation the load harness and CI assert.

Label values are always rendered as strings; keep label cardinality small
and bounded (the HTTP layer maps unknown paths to one ``"other"`` label
for exactly this reason).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Mapping, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "OCCUPANCY_BUCKETS",
]

#: Default latency buckets in seconds: log-spaced from 0.5 ms to 30 s, the
#: span between a cache hit served over loopback and a budgeted exact solve.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Batch-size buckets (requests per flush), powers of two up to the default
#: ``max_batch``.
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)

#: Occupancy-ratio buckets (batch size / ``max_batch``), linear-ish in the
#: interesting low range.
OCCUPANCY_BUCKETS: tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0,
)

_Number = Union[int, float]


def _series_key(
    label_names: tuple[str, ...], labels: Mapping[str, object]
) -> tuple[str, ...]:
    """Canonical series key: label values as strings, declared order."""
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: _Number) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _render_labels(
    label_names: Sequence[str], key: Sequence[str], extra: str = ""
) -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, key)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared base: name, help text, label plumbing, per-metric lock."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, label_names: Sequence[str] = ()
    ) -> None:  # noqa: A002 - mirrors the Prometheus field name
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if not self.label_names and not labels:
            return ()
        return _series_key(self.label_names, labels)


class Counter(_Metric):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, label_names: Sequence[str] = ()
    ) -> None:  # noqa: A002
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], _Number] = {}

    def inc(self, amount: _Number = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> _Number:
        """Current value of one series (``0`` if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def total(self) -> _Number:
        """Sum over every series (e.g. all statuses of one endpoint)."""
        with self._lock:
            return sum(self._values.values())

    def collect(self) -> list[tuple[tuple[str, ...], _Number]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """Point-in-time value: set/add directly, or computed at scrape time.

    A callback gauge (``callback=...``) is evaluated on every ``collect``
    -- the idiom for values that already live elsewhere (cache occupancy,
    queue depth, hit ratio) and must never be maintained twice.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002
        label_names: Sequence[str] = (),
        callback: Optional[Callable[[], _Number]] = None,
    ) -> None:
        super().__init__(name, help, label_names)
        if callback is not None and label_names:
            raise ValueError("callback gauges are unlabelled")
        self._callback = callback
        self._values: dict[tuple[str, ...], _Number] = {}

    def set(self, value: _Number, **labels: object) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name} is callback-driven")
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def add(self, amount: _Number, **labels: object) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name} is callback-driven")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> _Number:
        if self._callback is not None:
            return self._callback()
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def collect(self) -> list[tuple[tuple[str, ...], _Number]]:
        if self._callback is not None:
            return [((), self._callback())]
        with self._lock:
            return sorted(self._values.items())


class _HistogramSeries:
    """Bucket counts + sum/min/max of one labelled series."""

    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * (bucket_count + 1)  # trailing +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Metric):
    """Fixed-bucket histogram with percentile estimation.

    ``buckets`` are *upper* bounds, strictly increasing; an implicit
    ``+Inf`` bucket catches everything beyond the last bound.  A value
    ``v`` lands in the first bucket with ``v <= bound`` (Prometheus ``le``
    semantics).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002
        buckets: Sequence[float] = LATENCY_BUCKETS,
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: _Number, **labels: object) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.counts[index] += 1
            series.sum += value
            series.count += 1
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _snapshot(self, key: tuple[str, ...]) -> Optional[_HistogramSeries]:
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return None
            copy = _HistogramSeries(len(self.buckets))
            copy.counts = list(series.counts)
            copy.sum, copy.count = series.sum, series.count
            copy.min, copy.max = series.min, series.max
            return copy

    def _estimate(self, series: _HistogramSeries, quantile: float) -> float:
        """Rank-interpolated quantile from the bucket counts.

        The returned value always lies inside the bucket that contains the
        exact rank, so the estimation error is bounded by that bucket's
        width; the open-ended ``+Inf`` bucket is clamped to the observed
        maximum (and the first bucket's floor to the observed minimum).
        """
        rank = quantile * series.count
        cumulative = 0.0
        for index, count in enumerate(series.counts):
            if count == 0:
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= rank:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else max(series.max, lower)
                )
                lower = max(lower, series.min if series.min <= upper else lower)
                upper = min(upper, series.max) if series.max >= lower else upper
                if upper <= lower:
                    return lower
                fraction = (rank - previous) / count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return series.max if series.count else float("nan")

    def percentile(self, quantile: float, **labels: object) -> float:
        """Estimated ``quantile`` (in ``[0, 1]``) of one series.

        ``nan`` when the series has no observations.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        series = self._snapshot(self._key(labels))
        if series is None or series.count == 0:
            return float("nan")
        return self._estimate(series, quantile)

    def count(self, **labels: object) -> int:
        series = self._snapshot(self._key(labels))
        return 0 if series is None else series.count

    def total_count(self) -> int:
        with self._lock:
            return sum(series.count for series in self._series.values())

    def collect(self) -> list[tuple[tuple[str, ...], _HistogramSeries]]:
        with self._lock:
            keys = sorted(self._series)
        return [(key, self._snapshot(key)) for key in keys]


class MetricsRegistry:
    """Create-or-get metric store with JSON and Prometheus rendering.

    Re-registering a name returns the existing metric (so independent
    components can share a registry without coordination) but raises if
    the kind or label names disagree -- a silent mismatch would corrupt
    both exposition formats.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is None:
                self._metrics[metric.name] = metric
                return metric
            if (
                existing.kind != metric.kind
                or existing.label_names != metric.label_names
            ):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}{existing.label_names}, cannot "
                    f"re-register as {metric.kind}{metric.label_names}"
                )
            return existing

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Counter:  # noqa: A002
        metric = self._register(Counter(name, help, labels))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help: str,  # noqa: A002
        labels: Sequence[str] = (),
        callback: Optional[Callable[[], _Number]] = None,
    ) -> Gauge:
        metric = self._register(Gauge(name, help, labels, callback=callback))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,  # noqa: A002
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labels: Sequence[str] = (),
    ) -> Histogram:
        metric = self._register(Histogram(name, help, buckets, labels))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _sorted_metrics(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render_json(self) -> dict:
        """JSON document: one entry per metric, percentiles precomputed."""
        counters: dict[str, dict] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for metric in self._sorted_metrics():
            if isinstance(metric, Counter):
                counters[metric.name] = {
                    "help": metric.help,
                    "series": [
                        {
                            "labels": dict(zip(metric.label_names, key)),
                            "value": value,
                        }
                        for key, value in metric.collect()
                    ],
                }
            elif isinstance(metric, Gauge):
                gauges[metric.name] = {
                    "help": metric.help,
                    "series": [
                        {
                            "labels": dict(zip(metric.label_names, key)),
                            "value": value,
                        }
                        for key, value in metric.collect()
                    ],
                }
            elif isinstance(metric, Histogram):
                histograms[metric.name] = {
                    "help": metric.help,
                    "buckets": list(metric.buckets),
                    "series": [
                        {
                            "labels": dict(zip(metric.label_names, key)),
                            "counts": list(series.counts),
                            "sum": series.sum,
                            "count": series.count,
                            "min": series.min if series.count else None,
                            "max": series.max if series.count else None,
                            "p50": metric._estimate(series, 0.50),
                            "p95": metric._estimate(series, 0.95),
                            "p99": metric._estimate(series, 0.99),
                        }
                        for key, series in metric.collect()
                        if series is not None
                    ],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """Prometheus/OpenMetrics text exposition (version 0.0.4)."""
        lines: list[str] = []
        for metric in self._sorted_metrics():
            help_text = metric.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                for key, value in metric.collect():
                    labels = _render_labels(metric.label_names, key)
                    lines.append(f"{metric.name}{labels} {_format_value(value)}")
            elif isinstance(metric, Histogram):
                for key, series in metric.collect():
                    if series is None:  # pragma: no cover - defensive
                        continue
                    cumulative = 0
                    for bound, count in zip(metric.buckets, series.counts):
                        cumulative += count
                        labels = _render_labels(
                            metric.label_names,
                            key,
                            extra=f'le="{_format_value(bound)}"',
                        )
                        lines.append(
                            f"{metric.name}_bucket{labels} {cumulative}"
                        )
                    cumulative += series.counts[-1]
                    labels = _render_labels(
                        metric.label_names, key, extra='le="+Inf"'
                    )
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                    plain = _render_labels(metric.label_names, key)
                    lines.append(
                        f"{metric.name}_sum{plain} {_format_value(series.sum)}"
                    )
                    lines.append(f"{metric.name}_count{plain} {series.count}")
        return "\n".join(lines) + "\n"
