"""Thread-safe, byte-capped LRU result store of the evaluation service.

The serving layer memoises finished request payloads keyed on the request
fingerprints of :mod:`repro.service.fingerprint`.  The store follows the
pattern proven by the branch-and-bound scheduled-prefix memo of PR 2 --
bound the *bytes* held, not the entry count, because entry sizes vary by
orders of magnitude (a simulation payload is one float, a makespan payload
carries a witness schedule) -- but adds genuine LRU ordering and eviction
instead of the memo's clear-wholesale policy: a long-lived service must
keep its hot set warm across bursts, not restart from scratch whenever the
cap is reached.

Entries are stored by reference; payloads are JSON-style trees (dicts,
lists, strings, numbers) that callers must treat as immutable.  The facade
hands copies to its callers so external mutation cannot poison the store.

Hit/miss/eviction counters are maintained for tests, the ``/stats``
endpoint and capacity tuning (see ``docs/service.md``).
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Iterator, Optional

__all__ = ["estimate_size", "ResultCache"]

#: Fallback size (bytes) for objects ``sys.getsizeof`` cannot measure.
_DEFAULT_SIZE = 64

#: Per-entry bookkeeping overhead charged on top of the key/value sizes
#: (OrderedDict link, dict slot, the stored tuple).
_ENTRY_OVERHEAD = 128


def estimate_size(value: object) -> int:
    """Recursive best-effort byte estimate of a JSON-style payload tree.

    Containers are charged their own ``sys.getsizeof`` plus the deep size
    of their items; shared sub-objects are counted once (cycle-safe).
    numpy arrays report their buffer via ``nbytes``.  The estimate is used
    for cache accounting only -- it need not be exact, just monotone in the
    actual footprint.
    """
    seen: set[int] = set()

    def sized(obj: object) -> int:
        identity = id(obj)
        if identity in seen:
            return 0
        seen.add(identity)
        nbytes = getattr(obj, "nbytes", None)
        if nbytes is not None:  # numpy arrays and scalars
            return int(nbytes) + _DEFAULT_SIZE
        try:
            total = sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic objects
            total = _DEFAULT_SIZE
        if isinstance(obj, dict):
            total += sum(sized(key) + sized(item) for key, item in obj.items())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            total += sum(sized(item) for item in obj)
        return total

    return sized(value)


class ResultCache:
    """Byte-capped LRU mapping request fingerprints to result payloads.

    Parameters
    ----------
    max_bytes:
        Upper bound on the estimated bytes held (keys + values + per-entry
        overhead).  Inserting beyond the bound evicts least-recently-used
        entries; a single entry larger than the whole cap is rejected
        outright (counted in ``rejected``) rather than flushing the store.

    All operations are thread-safe; reads refresh recency.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0

    # ------------------------------------------------------------------
    # Lookup / insertion
    # ------------------------------------------------------------------
    def get(self, key: str, default: Optional[object] = None) -> Optional[object]:
        """Return the payload stored under ``key`` (refreshing recency)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def peek(self, key: str, default: Optional[object] = None) -> Optional[object]:
        """Like :meth:`get` but without touching recency or counters.

        Used by the batch executor to resolve requests that raced with a
        concurrent insertion -- those shortcuts must not skew the hit/miss
        statistics the tests and the ``/stats`` endpoint report.
        """
        with self._lock:
            entry = self._entries.get(key)
            return default if entry is None else entry[0]

    def put(self, key: str, value: object) -> bool:
        """Store ``value`` under ``key``; return ``False`` when rejected.

        Re-inserting an existing key replaces the payload and refreshes
        recency.  Entries whose estimated size alone exceeds ``max_bytes``
        are rejected (the store keeps its current contents).
        """
        size = estimate_size(key) + estimate_size(value) + _ENTRY_OVERHEAD
        with self._lock:
            if size > self.max_bytes:
                self._rejected += 1
                return False
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous[1]
            while self._bytes + size > self.max_bytes and self._entries:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self._evictions += 1
            self._entries[key] = (value, size)
            self._bytes += size
            return True

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._entries))

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        """Estimated bytes currently held."""
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        """Counters and occupancy for tests, metrics and ``/stats``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "rejected": self._rejected,
            }
