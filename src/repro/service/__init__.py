"""Long-lived evaluation service over the batched engines (PR 5-7).

The serving layer of the reproduction: a cache-backed, micro-batching
facade that amortises compilation, analysis and simulation across requests
the way the one-shot CLI/driver entry points cannot.  PR 6 added the
failure semantics: per-request deadlines, bounded admission with load
shedding, a circuit-broken degraded oracle mode and a drain that resolves
every accepted request.  PR 7 made it observable: a dependency-free
metrics registry threaded through every layer and exposed on
``GET /metrics`` (Prometheus text or JSON), with a sustained-load SLO
harness gating regressions in CI.  PR 10 added request tracing: span
trees across facade, batcher and engines with kernel step profiles,
tail-sampled into a byte-capped ring served on ``GET /traces``, plus
trace-carrying structured JSON logs.  See ``docs/service.md`` for the
architecture, capacity-tuning notes, the metric catalogue and the
failure-mode runbook.

Modules
-------
:mod:`~repro.service.fingerprint`
    Stable content hashes for tasks, platforms, policies and requests.
:mod:`~repro.service.cache`
    Thread-safe byte-capped LRU result store with hit/miss/eviction
    counters.
:mod:`~repro.service.metrics`
    Counters, gauges and fixed-bucket latency histograms with p50/p95/p99
    estimation; JSON + Prometheus text rendering.
:mod:`~repro.service.batching`
    Deadline/size-triggered micro-batching request queue.
:mod:`~repro.service.facade`
    :class:`EvaluationService` -- the synchronous in-process API.
:mod:`~repro.service.tracing`
    Request traces (span trees, tail-sampled ring, Chrome export) and
    the trace-carrying JSON log formatter.
:mod:`~repro.service.http`
    Stdlib HTTP/JSON transport (``repro serve`` / ``repro-serve``).
:mod:`~repro.service.client`
    Thin Python client of the HTTP transport.
"""

from ..core.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from .batching import BatchRequest, MicroBatcher
from .cache import ResultCache
from .client import ServiceClient
from .facade import (
    EvaluationService,
    analysis_payload,
    build_policy,
    makespan_payload,
    simulation_payload,
)
from .fingerprint import (
    graph_fingerprint,
    platform_fingerprint,
    policy_fingerprint,
    request_fingerprint,
    task_fingerprint,
)
from .http import ServiceHTTPServer, start_server
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import (
    TRACE_HEADER,
    JsonLogFormatter,
    Tracer,
    chrome_trace,
    configure_logging,
    current_trace_id,
    new_trace_id,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EvaluationService",
    "ServiceError",
    "ServiceClosedError",
    "ServiceTimeoutError",
    "ServiceOverloadedError",
    "ResultCache",
    "MicroBatcher",
    "BatchRequest",
    "ServiceClient",
    "ServiceHTTPServer",
    "start_server",
    "build_policy",
    "simulation_payload",
    "analysis_payload",
    "makespan_payload",
    "graph_fingerprint",
    "task_fingerprint",
    "platform_fingerprint",
    "policy_fingerprint",
    "request_fingerprint",
    "Tracer",
    "TRACE_HEADER",
    "JsonLogFormatter",
    "chrome_trace",
    "configure_logging",
    "current_trace_id",
    "new_trace_id",
]
