"""Stdlib-only HTTP/JSON transport of the evaluation service.

A thin :mod:`http.server` facade over
:class:`~repro.service.facade.EvaluationService` -- no third-party web
framework, matching the repository's no-new-dependencies rule.  Tasks cross
the wire in the exact on-disk JSON form of :mod:`repro.io.json_io`
(``task_to_dict`` / ``task_from_dict``), so anything that can author a task
file can talk to the service.

Endpoints
---------
``GET  /health``    readiness probe: ``ok`` (200) while serving,
                    ``draining``/``closed`` (503) once shutdown has begun
``GET  /stats``     the service's :meth:`~EvaluationService.stats` document
``GET  /metrics``   the metrics registry -- Prometheus text exposition by
                    default, the JSON document when the ``Accept`` header
                    asks for ``application/json``
``GET  /traces``    recent request traces kept by the tail-sampling ring
                    (``?limit=N&slow=1&errors=1`` filter the summaries)
``GET  /traces/<id>``  one trace's full span tree; ``?format=chrome``
                    renders Chrome trace-event JSON loadable in Perfetto
``POST /simulate``  ``{"task": <task>, "cores": m, "accelerators": a,
                    "policy": name, "policy_seed": s, "priorities": {...},
                    "offload_enabled": true}`` -> ``{"makespan": ...}``
``POST /analyse``   ``{"task": <task>, "cores": m | [m...],
                    "include_naive": true}`` -> bounds payload
``POST /makespan``  ``{"task": <task>, "cores": m, "accelerators": a,
                    "method": "auto"|"ilp"|"bnb", "time_limit": t}``
                    -> makespan payload with the witness schedule

Requests are served by :class:`http.server.ThreadingHTTPServer` -- one
thread per connection, all funnelling into the shared service, which is
exactly the concurrency shape the micro-batcher coalesces.

``python -m repro serve`` (and the ``repro-serve`` console script, both
routed through :func:`main`) run this transport as a long-lived process.
"""

from __future__ import annotations

import argparse
import json
import logging
import math
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Sequence
from urllib.parse import parse_qs

from ..core.exceptions import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from ..generator.arrivals import arrival_from_dict
from ..io.json_io import task_from_dict
from ..resilience import FAULTS
from ..simulation.platform import Platform
from ..simulation.workload import JobStream
from .facade import EvaluationService
from .tracing import TRACE_HEADER, chrome_trace, configure_logging

_LOG = logging.getLogger("repro.service.http")

#: Paths instrumented under their own metric label; anything else is folded
#: into one ``"other"`` label so unknown paths cannot blow up cardinality.
_ENDPOINTS = frozenset(
    {
        "/health",
        "/stats",
        "/metrics",
        "/simulate",
        "/analyse",
        "/makespan",
        "/workload",
        "/traces",
    }
)

#: Decoded chunked bodies larger than this are refused (same spirit as the
#: admission bounds: a request must not be able to exhaust server memory).
_MAX_CHUNKED_BODY = 64 * 1024 * 1024


class _HTTPRequestError(Exception):
    """Transport-level request failure with a pre-chosen status + code.

    Raised by the body-reading plumbing *before* the request reaches the
    service, so ``do_POST`` can map it straight onto the error envelope.
    ``close`` marks requests whose body was not (fully) drained from the
    socket -- the connection cannot be reused and must be closed.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retryable: bool = False,
        close: bool = False,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retryable = retryable
        self.close = close

__all__ = [
    "ServiceHTTPServer",
    "start_server",
    "add_serve_arguments",
    "serve_from_args",
    "main",
]


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the shared :class:`EvaluationService`."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Route http.server's own chatter into logging instead of stderr.

        The per-request access log lives in :meth:`_instrumented` (which
        has the timing and byte counts and is opt-in via ``--access-log``);
        protocol-level messages from :mod:`http.server` itself land at
        DEBUG so they surface under ``--log-level debug`` and stay silent
        otherwise.
        """
        _LOG.debug(format, *args)

    def _instrumented(self, handler) -> None:
        """Run ``handler`` and record the per-endpoint HTTP metrics.

        Latency covers the whole handler (body read, service wait,
        response write) -- the figure a client actually experiences minus
        the network.  Unknown paths share one ``"other"`` endpoint label;
        ``/traces/<id>`` folds into ``/traces`` for the same reason.
        """
        started = time.perf_counter()
        self._status = 0
        self._response_bytes = 0
        self._request_bytes = 0
        self._trace_id = None
        try:
            handler()
        finally:
            elapsed = time.perf_counter() - started
            path = self.path.partition("?")[0]
            if path in _ENDPOINTS:
                endpoint = path
            elif path.startswith("/traces/"):
                endpoint = "/traces"
            else:
                endpoint = "other"
            server = self.server
            server.metric_latency.observe(elapsed, endpoint=endpoint)
            server.metric_responses.inc(endpoint=endpoint, status=self._status)
            if self._request_bytes:
                server.metric_request_bytes.inc(
                    self._request_bytes, endpoint=endpoint
                )
            if self._response_bytes:
                server.metric_response_bytes.inc(
                    self._response_bytes, endpoint=endpoint
                )
            if server.access_log:
                _LOG.info(
                    "%s %s %d %.1fms",
                    self.command,
                    self.path,
                    self._status,
                    elapsed * 1e3,
                    extra={
                        "trace_id": self._trace_id,
                        "data": {
                            "method": self.command,
                            "path": self.path,
                            "status": self._status,
                            "duration_ms": round(elapsed * 1e3, 3),
                            "request_bytes": self._request_bytes,
                            "response_bytes": self._response_bytes,
                            "client": self.client_address[0],
                        },
                    },
                )

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        self._response_bytes = len(body)

    def _send_json(
        self, status: int, document: dict, retry_after: Optional[float] = None
    ) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_trace_id", None):
            self.send_header(TRACE_HEADER, self._trace_id)
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        self._response_bytes = len(body)

    def _send_error(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retryable: bool,
        retry_after: Optional[float] = None,
        extra: Optional[dict] = None,
    ) -> None:
        """Send the stable error envelope every failure path shares.

        ``code`` is a machine-readable slug (clients dispatch on it, not on
        the message text), ``retryable`` tells clients whether re-sending
        the identical request can ever succeed, and ``retry_after`` -- when
        present -- is mirrored as a ``Retry-After`` header (whole seconds,
        rounded up, as HTTP requires).  Traced requests carry their
        ``trace_id`` in the envelope so a failure report names the exact
        trace to pull from ``GET /traces/<id>``.
        """
        envelope: dict = {
            "code": code,
            "message": message,
            "retryable": bool(retryable),
        }
        if getattr(self, "_trace_id", None):
            envelope["trace_id"] = self._trace_id
        if retry_after is not None:
            envelope["retry_after"] = float(retry_after)
        document = {"error": envelope}
        if extra:
            document.update(extra)
        self._send_json(status, document, retry_after=retry_after)

    def _read_chunked_body(self) -> bytes:
        """Decode a ``Transfer-Encoding: chunked`` request body.

        Hex-sized chunks each followed by CRLF, terminated by a zero-size
        chunk and optional trailers up to a blank line (RFC 9112 §7.1).
        Any framing violation closes the connection -- the unread rest of
        the body would otherwise be parsed as the next request.
        """
        chunks: list[bytes] = []
        total = 0
        while True:
            size_line = self.rfile.readline(1026)
            if not size_line:
                raise _HTTPRequestError(
                    400, "bad-request", "truncated chunked body", close=True
                )
            try:
                size = int(size_line.split(b";", 1)[0].strip(), 16)
            except ValueError:
                raise _HTTPRequestError(
                    400,
                    "bad-request",
                    f"malformed chunk size line {size_line!r}",
                    close=True,
                ) from None
            if size == 0:
                break
            total += size
            if total > _MAX_CHUNKED_BODY:
                raise _HTTPRequestError(
                    413,
                    "payload-too-large",
                    f"chunked body exceeds {_MAX_CHUNKED_BODY} bytes",
                    close=True,
                )
            data = self.rfile.read(size)
            if len(data) < size:
                raise _HTTPRequestError(
                    400, "bad-request", "truncated chunked body", close=True
                )
            chunks.append(data)
            self.rfile.read(2)  # the CRLF terminating the chunk data
        while True:  # drain optional trailers up to the blank line
            line = self.rfile.readline(1026)
            if line in (b"\r\n", b"\n", b""):
                break
        return b"".join(chunks)

    def _read_document(self) -> dict:
        encoding = self.headers.get("Transfer-Encoding", "")
        codings = [
            token.strip().lower()
            for token in encoding.split(",")
            if token.strip()
        ]
        if codings == ["chunked"]:
            body = self._read_chunked_body()
        elif codings:
            # The body is framed in an encoding this server cannot read;
            # nothing was drained from the socket, so it cannot be reused.
            raise _HTTPRequestError(
                501,
                "unsupported-transfer-encoding",
                f"transfer-encoding {encoding!r} is not supported; "
                f"send the body with Content-Length or chunked",
                close=True,
            )
        else:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length) if length else b""
        self._request_bytes = len(body)
        if not body:
            raise ValueError(
                "request body is empty; send a JSON document with a "
                "Content-Length header or chunked transfer-encoding"
            )
        try:
            document = json.loads(body)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid JSON body: {error}") from error
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    def _task_of(self, document: dict):
        if "task" not in document:
            raise ValueError("request document is missing the 'task' object")
        return task_from_dict(document["task"])

    def _streams_of(self, document: dict) -> list:
        specs = document.get("streams")
        if not isinstance(specs, list) or not specs:
            raise ValueError(
                "request document needs a non-empty 'streams' array"
            )
        streams = []
        for position, spec in enumerate(specs):
            if not isinstance(spec, dict):
                raise ValueError(f"streams[{position}] must be a JSON object")
            if "task" not in spec:
                raise ValueError(f"streams[{position}] is missing 'task'")
            if "arrivals" not in spec:
                raise ValueError(f"streams[{position}] is missing 'arrivals'")
            streams.append(
                JobStream(
                    task=task_from_dict(spec["task"]),
                    arrivals=arrival_from_dict(spec["arrivals"]),
                    deadline=spec.get("deadline"),
                    name=spec.get("name"),
                )
            )
        return streams

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._instrumented(self._handle_get)

    def _handle_get(self) -> None:
        path, _, raw_query = self.path.partition("?")
        if path == "/health":
            # A readiness probe, not a liveness one: a draining instance is
            # alive but must stop receiving traffic, so anything other than
            # "ok" is reported with a non-200 status a load balancer acts on.
            phase = self.server.service.lifecycle()
            self._send_json(
                200 if phase == "ok" else 503,
                {
                    "status": phase,
                    "service": "repro-evaluation-service",
                    "uptime_s": time.monotonic() - self.server.started_at,
                },
                retry_after=1.0 if phase == "draining" else None,
            )
        elif path == "/stats":
            self._send_json(200, self.server.service.stats())
        elif path == "/metrics":
            registry = self.server.service.metrics
            accept = self.headers.get("Accept", "")
            if "application/json" in accept:
                self._send_json(200, registry.render_json())
            else:
                self._send_body(
                    200,
                    registry.render_prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
        elif path == "/traces" or path.startswith("/traces/"):
            self._handle_traces(path, raw_query)
        else:
            self._send_error(
                404,
                "not-found",
                f"unknown path {self.path!r}",
                retryable=False,
                extra={
                    "endpoints": [
                        "GET /health",
                        "GET /stats",
                        "GET /metrics",
                        "GET /traces",
                        "GET /traces/<id>",
                        "POST /simulate",
                        "POST /analyse",
                        "POST /makespan",
                        "POST /workload",
                    ]
                },
            )

    def _handle_traces(self, path: str, raw_query: str) -> None:
        """Serve the trace ring: summaries on ``/traces``, one tree below it."""
        tracer = self.server.service.tracer
        query = parse_qs(raw_query)
        if path == "/traces":
            try:
                limit = int(query.get("limit", ["50"])[0])
            except ValueError:
                self._send_error(
                    400,
                    "bad-request",
                    f"limit must be an integer, got {query['limit'][0]!r}",
                    retryable=False,
                )
                return
            self._send_json(
                200,
                {
                    "traces": tracer.list_traces(
                        limit=max(limit, 0),
                        slow=_query_flag(query, "slow"),
                        errors=_query_flag(query, "errors"),
                    ),
                    "ring": tracer.ring_stats(),
                },
            )
            return
        trace_id = path[len("/traces/"):]
        payload = tracer.get_trace(trace_id)
        if payload is None:
            self._send_error(
                404,
                "trace-not-found",
                f"no trace {trace_id!r} in the ring (never sampled in, "
                f"evicted, or tracing is disabled)",
                retryable=False,
            )
            return
        if query.get("format", [""])[0] == "chrome":
            self._send_json(200, chrome_trace(payload))
        else:
            self._send_json(200, payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._instrumented(self._traced_post)

    def _traced_post(self) -> None:
        """Run the POST handler under a request trace (no-op when disabled).

        The trace id is taken from the caller's ``X-Repro-Trace-Id`` header
        when well-formed (so a client can stamp its own id and correlate
        retries), else freshly generated; either way it is echoed on the
        response and embedded in the error envelope.  The trace finishes --
        and is tail-sampled into the ring -- after the response bytes are
        written, so the ``http.request`` root span covers the handling a
        client actually observed.  Responses with status >= 400 mark the
        trace as an error, which exempts it from probabilistic sampling.
        """
        tracer = self.server.service.tracer
        trace = tracer.start_trace(
            "http.request",
            trace_id=self.headers.get(TRACE_HEADER),
            attributes={
                "method": self.command,
                "path": self.path.partition("?")[0],
            },
        )
        if trace is None:
            self._handle_post()
            return
        self._trace_id = trace.trace_id
        try:
            with tracer.activate(trace):
                self._handle_post()
        finally:
            trace.root.set("status", self._status)
            tracer.finish_trace(trace, error=self._status >= 400)

    def _handle_post(self) -> None:
        service = self.server.service
        try:
            document = self._read_document()
            timeout = document.get("timeout")
            if self.path == "/simulate":
                makespan = service.submit_simulation(
                    self._task_of(document),
                    _platform_of(document),
                    policy=document.get("policy", "breadth-first"),
                    policy_seed=document.get("policy_seed"),
                    priorities=document.get("priorities"),
                    offload_enabled=document.get("offload_enabled", True),
                    timeout=timeout,
                )
                self._send_json(200, {"makespan": makespan})
            elif self.path == "/analyse":
                payload = service.submit_analysis(
                    self._task_of(document),
                    document.get("cores", 2),
                    include_naive=document.get("include_naive", True),
                    timeout=timeout,
                )
                self._send_json(200, payload)
            elif self.path == "/makespan":
                payload = service.submit_makespan(
                    self._task_of(document),
                    document.get("cores", 2),
                    accelerators=document.get("accelerators", 1),
                    method=document.get("method", "auto"),
                    time_limit=document.get("time_limit"),
                    timeout=timeout,
                )
                self._send_json(200, payload)
            elif self.path == "/workload":
                if "horizon" not in document:
                    raise ValueError(
                        "request document is missing the 'horizon' number"
                    )
                payload = service.submit_workload(
                    self._streams_of(document),
                    document["horizon"],
                    _platform_of(document),
                    policy=document.get("policy", "breadth-first"),
                    policy_seed=document.get("policy_seed"),
                    offload_enabled=document.get("offload_enabled", True),
                    timeout=timeout,
                )
                self._send_json(200, payload)
            else:
                self._send_error(
                    404, "not-found", f"unknown path {self.path!r}", retryable=False
                )
        except _HTTPRequestError as error:
            if error.close:
                self.close_connection = True
            self._send_error(
                error.status, error.code, str(error), retryable=error.retryable
            )
        except ServiceOverloadedError as error:
            self._send_error(
                429,
                "overloaded",
                str(error),
                retryable=True,
                retry_after=error.retry_after,
            )
        except ServiceClosedError as error:
            # Usually a drain in progress; a restarted service will serve
            # the retry (requests are idempotent by fingerprint).
            self._send_error(
                503, "closed", str(error), retryable=True, retry_after=1.0
            )
        except ServiceTimeoutError as error:
            self._send_error(504, "timeout", str(error), retryable=True)
        except ServiceError as error:
            # Server-side faults (executor exceptions, the batcher's
            # defensive unresolved-request net): not the client's doing.
            self._send_error(
                500,
                "server-error",
                str(error),
                retryable=bool(getattr(error, "retryable", False)),
            )
        except (ReproError, ValueError, KeyError, TypeError) as error:
            message = error.args[0] if error.args else error
            self._send_error(400, "bad-request", str(message), retryable=False)
        except Exception:  # noqa: BLE001 - report, don't kill the thread
            # The traceback belongs in the server log; leaking repr(error)
            # to remote callers exposes internals and is useless to them.
            _LOG.exception("unhandled error while serving POST %s", self.path)
            self._send_error(
                500, "internal", "internal server error", retryable=False
            )


def _platform_of(document: dict) -> Platform:
    return Platform(
        host_cores=document.get("cores", 2),
        accelerators=document.get("accelerators", 1),
    )


def _query_flag(query: dict, name: str) -> bool:
    """True when a query parameter is present and not an explicit ``0``."""
    values = query.get(name)
    if not values:
        return False
    return values[-1].strip().lower() not in ("0", "false", "no")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
    )


class ServiceHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one evaluation service.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  The server does **not** own the service -- callers close
    the service themselves (see :func:`serve_from_args` for the standard
    shutdown order: stop accepting connections, then drain the service).
    ``access_log=True`` emits one structured JSON log line per request on
    the ``repro.service.http`` logger (see
    :func:`repro.service.tracing.configure_logging`).
    """

    daemon_threads = True
    allow_reuse_address = True
    #: Listen backlog.  socketserver's default of 5 is far too small for a
    #: burst-shaped load: a few dozen simultaneous connects overflow the
    #: kernel accept queue, the excess handshakes are left half-open and
    #: eventually reset -- the client sees ECONNRESET on requests the
    #: application never saw, *instead of* the deliberate 429 the admission
    #: bound would have sent.  Size it above any plausible client fan-out so
    #: overload is always handled by the service's own shedding.
    request_queue_size = 128

    def __init__(
        self,
        service: EvaluationService,
        host: str = "127.0.0.1",
        port: int = 0,
        access_log: bool = False,
    ) -> None:
        self.service = service
        self.access_log = bool(access_log)
        self.started_at = time.monotonic()
        registry = service.metrics
        self.metric_latency = registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock time serving one HTTP request, by endpoint.",
            labels=("endpoint",),
        )
        self.metric_responses = registry.counter(
            "repro_http_responses_total",
            "HTTP responses by endpoint and status code.",
            labels=("endpoint", "status"),
        )
        self.metric_request_bytes = registry.counter(
            "repro_http_request_bytes_total",
            "Request body bytes received, by endpoint.",
            labels=("endpoint",),
        )
        self.metric_response_bytes = registry.counter(
            "repro_http_response_bytes_total",
            "Response body bytes sent, by endpoint.",
            labels=("endpoint",),
        )
        super().__init__((host, port), _RequestHandler)

    @property
    def port(self) -> int:
        """The actually bound TCP port (useful with ``port=0``)."""
        return self.server_address[1]


def start_server(
    service: EvaluationService,
    host: str = "127.0.0.1",
    port: int = 0,
    access_log: bool = False,
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Start a server thread for in-process use (tests, examples).

    Returns the bound server and its (daemon) serving thread; call
    ``server.shutdown(); server.server_close()`` to stop it.
    """
    server = ServiceHTTPServer(service, host=host, port=port, access_log=access_log)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread


# ----------------------------------------------------------------------
# Command-line entry point (``repro serve`` / ``repro-serve``)
# ----------------------------------------------------------------------
def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the serving flags shared by ``repro serve`` and ``repro-serve``."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8181, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes forwarded to the batched engines "
        "(default: serial; -1 = all cores)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="byte cap of the fingerprint-keyed result cache (0 disables)",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=0.05,
        help="micro-batching hard deadline in seconds",
    )
    parser.add_argument(
        "--quiet-interval",
        type=float,
        default=0.002,
        help="flush as soon as no new request arrived for this many seconds",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=512,
        help="pending-request count that triggers an immediate flush",
    )
    parser.add_argument(
        "--default-timeout",
        type=float,
        default=None,
        help="per-request deadline in seconds applied when a request does "
        "not carry its own 'timeout' field (default: wait forever)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="shed requests (HTTP 429) once this many are parked in the "
        "micro-batching queue (default: unbounded)",
    )
    parser.add_argument(
        "--max-pending-cost",
        type=int,
        default=None,
        help="shed requests (HTTP 429) once the parked queue holds this "
        "many task nodes in total (default: unbounded)",
    )
    parser.add_argument(
        "--oracle-budget",
        type=float,
        default=None,
        help="wall-clock seconds per exact-makespan batch before the rest "
        "of the batch degrades to verified bounds (default: unbudgeted)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive failed/degraded oracle batches that open the "
        "circuit breaker",
    )
    parser.add_argument(
        "--breaker-reset",
        type=float,
        default=30.0,
        help="seconds the oracle circuit breaker stays open before probing "
        "the exact engines again",
    )
    parser.add_argument(
        "--vector-threshold",
        type=int,
        default=None,
        help="lane count (tasks x platforms) from which simulation grids "
        "run on the batched lockstep kernel instead of the dense engine "
        "(default: the measured calibration table for this host's backend; "
        "env REPRO_VECTOR_THRESHOLD also overrides)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening "
        "(for scripts using --port 0)",
    )
    parser.add_argument(
        "--access-log",
        action="store_true",
        default=_env_flag("REPRO_ACCESS_LOG"),
        help="emit one JSON log line per HTTP request (method, path, "
        "status, duration, bytes, trace id); env REPRO_ACCESS_LOG=1 "
        "also enables it",
    )
    parser.add_argument(
        "--log-level",
        default=os.environ.get("REPRO_LOG_LEVEL", "warning"),
        help="level of the repro.service JSON loggers: debug, info, "
        "warning, error or critical (env REPRO_LOG_LEVEL; the access "
        "log needs at least info)",
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable request tracing entirely (no spans are recorded and "
        "GET /traces serves an empty ring)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        help="probability in [0, 1] of keeping an unremarkable trace in "
        "the ring; error, degraded and slow-percentile traces are always "
        "kept (default 1.0; env REPRO_TRACE_SAMPLE)",
    )
    parser.add_argument(
        "--trace-ring-bytes",
        type=int,
        default=None,
        help="byte cap of the completed-trace ring (default 4 MiB; "
        "env REPRO_TRACE_RING_BYTES)",
    )


def serve_from_args(args: argparse.Namespace) -> int:
    """Run the HTTP service until interrupted; returns the exit code."""
    try:
        configure_logging(args.log_level)
        trace_sample = (
            args.trace_sample
            if args.trace_sample is not None
            else float(os.environ.get("REPRO_TRACE_SAMPLE") or 1.0)
        )
        trace_ring_bytes = (
            args.trace_ring_bytes
            if args.trace_ring_bytes is not None
            else int(os.environ.get("REPRO_TRACE_RING_BYTES") or (4 << 20))
        )
        service = EvaluationService(
            cache_bytes=args.cache_bytes,
            flush_interval=args.flush_interval,
            quiet_interval=args.quiet_interval,
            max_batch=args.max_batch,
            jobs=args.jobs,
            default_timeout=args.default_timeout,
            max_pending=args.max_pending,
            max_pending_cost=args.max_pending_cost,
            oracle_budget=args.oracle_budget,
            breaker_threshold=args.breaker_threshold,
            breaker_reset=args.breaker_reset,
            vector_threshold=args.vector_threshold,
            tracing=not args.no_tracing,
            trace_sample=trace_sample,
            trace_ring_bytes=trace_ring_bytes,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        server = ServiceHTTPServer(
            service, host=args.host, port=args.port, access_log=args.access_log
        )
    except OSError as error:
        service.close()
        print(
            f"error: cannot bind {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 1
    # A backgrounded child of a non-interactive shell inherits SIGINT as
    # ignored (POSIX async-list rule) and CPython then never installs the
    # KeyboardInterrupt handler -- ``kill -INT`` would be silently dropped.
    # Install explicit handlers so SIGINT/SIGTERM always trigger the
    # graceful drain below (signal.signal only works in the main thread;
    # embedded callers use start_server/shutdown instead).
    stop = threading.Event()

    def _interrupt(signum: int, frame: object) -> None:
        stop.set()

    try:
        signal.signal(signal.SIGINT, _interrupt)
        signal.signal(signal.SIGTERM, _interrupt)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    if args.port_file:
        Path(args.port_file).write_text(f"{server.port}\n", encoding="utf-8")
    tracing_state = (
        "off" if args.no_tracing else f"on (sample {trace_sample:g})"
    )
    print(
        f"repro evaluation service listening on http://{args.host}:{server.port} "
        f"(cache {args.cache_bytes} bytes, flush {args.flush_interval * 1000:g} ms, "
        f"max batch {args.max_batch}, tracing {tracing_state})",
        flush=True,
    )
    if FAULTS.enabled:
        armed = ", ".join(sorted(FAULTS.stats()["points"]))
        print(f"fault injection ARMED via REPRO_FAULTS: {armed}", flush=True)
    # The acceptor runs in a daemon thread so the drain below happens with
    # the listener still up: during close() the service answers /health
    # with 503 "draining" and new POSTs with 503 "closed" -- the drain is
    # *observable* over HTTP instead of the socket simply going away.
    acceptor = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    acceptor.start()
    try:
        # Poll rather than block indefinitely: the kernel may deliver the
        # signal on *any* thread, but CPython only runs the Python-level
        # handler when the main thread reaches a bytecode boundary -- an
        # untimed Event.wait() parks the main thread in sem_wait forever
        # and the handler (hence the drain) would never run.
        while not stop.wait(0.1):
            pass
    except KeyboardInterrupt:  # pragma: no cover - embedded Ctrl-C race
        pass
    print("shutting down (draining in-flight requests)...", flush=True)
    try:
        # Two-phase drain, in this order: close the *service* first so
        # every accepted request is resolved while the handler threads can
        # still write their responses (requests arriving during the drain
        # are answered 503), then tear the listening socket down.  The
        # short grace lets the (daemon) handler threads flush the last
        # already-resolved responses onto the wire.
        service.close()
        time.sleep(0.2)
    finally:
        server.shutdown()
        acceptor.join(timeout=5.0)
        server.server_close()
    stats = service.stats()
    print(
        f"served {stats['requests']['total']} requests in "
        f"{stats['batching']['batches']} batches "
        f"({stats['cache']['hits']} cache hits, "
        f"{stats['resilience']['timeouts']} timeouts, "
        f"{stats['resilience']['shed']} shed, "
        f"{stats['resilience']['degraded']} degraded)",
        flush=True,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone console entry point (``repro-serve``)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-lived HTTP evaluation service over the batched "
        "simulation / analysis / exact-makespan engines",
    )
    add_serve_arguments(parser)
    return serve_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
