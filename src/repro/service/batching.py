"""Micro-batching request queue of the evaluation service.

A long-lived service receives requests one at a time, but the engines
underneath it (:func:`~repro.simulation.batch.simulate_many`,
:func:`~repro.analysis.batch.analyse_many`,
:func:`~repro.ilp.batch.minimum_makespans_many`) amortise best over
*batches*: one compile per distinct task, one vectorised lockstep batch per
policy column, one deduplicated oracle dispatch.  :class:`MicroBatcher`
bridges the two shapes the way a model-inference server does: concurrent
in-flight requests are parked in a pending list and flushed to an executor
callback as one batch when either

* the queue goes **quiet** -- no new request arrived for ``quiet_interval``
  seconds (a burst keeps arriving back-to-back, so this trigger lets the
  whole burst accumulate while adding at most one quiet window of latency
  to a lone request), or
* the **deadline** expires -- ``flush_interval`` seconds after the oldest
  pending request arrived (bounds the latency a steady trickle of arrivals
  could otherwise add by endlessly postponing the quiet trigger), or
* the **size trigger** fires -- ``max_batch`` requests are pending (bounded
  batch memory), or
* the batcher is **closed** -- the queue drains every parked request before
  the worker exits, so ``close()`` never abandons a caller.

Admission is bounded: ``max_pending`` caps the parked-request count and
``max_pending_cost`` caps their summed ``cost`` (the facade uses node
counts as a memory proxy); a request arriving past either bound is **shed**
with :class:`~repro.core.exceptions.ServiceOverloadedError` instead of
being accepted into a queue that cannot keep up.  Shedding at admission is
the only honest failure mode under overload -- every *accepted* request is
still guaranteed a resolution.

That guarantee has three layers: the executor must resolve every request in
a flush; any request it leaves unresolved is failed defensively; and if the
worker thread itself dies, its exit handler marks the batcher closed and
fails everything still parked.  Abandonment (executor exception, worker
death, injected drain fault) is routed through the ``on_abandon`` hook so
the owning facade can clean its in-flight table before callers see the
error.

The batcher is engine-agnostic: requests carry an opaque ``group_key`` the
executor uses to split a flush into engine-compatible groups, plus a
``fingerprint`` identifying the computation for caching/deduplication.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from ..core.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from ..resilience import Deadline, fault_point
from .metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    OCCUPANCY_BUCKETS,
    MetricsRegistry,
)

__all__ = ["BatchRequest", "MicroBatcher"]


@dataclass
class BatchRequest:
    """One in-flight request parked in (or flushed from) the queue.

    Attributes
    ----------
    kind:
        Request kind tag (``"simulate"``, ``"analyse"``, ``"makespan"``).
    fingerprint:
        The request fingerprint (cache key) from
        :func:`repro.service.fingerprint.request_fingerprint`.
    group_key:
        Hashable key describing which batched-engine call can serve the
        request; the executor groups a flush by ``(kind, group_key)``.
    task:
        The task object of the request (kept as-is; the engines compile it).
    params:
        Remaining request parameters, as built by the facade.
    deadline:
        Optional per-request deadline.  The executor checks it before
        doing work: a request whose deadline expired while parked is
        failed with :class:`ServiceTimeoutError` instead of being served.
    cost:
        Admission-control weight (the facade uses the task's node count);
        counted against ``max_pending_cost``.
    enqueued_at:
        ``time.monotonic()`` stamp set at admission; the flush observes
        ``now - enqueued_at`` as the request's queue-wait time.
    trace:
        Optional trace context carried across the thread hop: the
        submitter's :class:`~repro.service.tracing.Trace` plus its open
        ``batcher.queue`` span, which the flush (on the batcher thread)
        finishes and links its shared ``batcher.flush`` span under.
    """

    kind: str
    fingerprint: str
    group_key: Hashable
    task: object
    params: dict
    deadline: Optional[Deadline] = None
    cost: int = 1
    enqueued_at: float = 0.0
    trace: object = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    result: object = None
    error: Optional[BaseException] = None

    def resolve(self, result: object) -> None:
        """Deliver ``result`` to the waiting submitter."""
        self.result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        """Deliver ``error`` to the waiting submitter."""
        self.error = error
        self._done.set()

    @property
    def resolved(self) -> bool:
        """``True`` once :meth:`resolve` or :meth:`fail` ran."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> object:
        """Block until the request is served; return or raise its outcome."""
        if not self._done.wait(timeout):
            raise ServiceTimeoutError(
                f"{self.kind} request {self.fingerprint[:12]} timed out "
                f"after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.result


class MicroBatcher:
    """Deadline/size-triggered request coalescer (see module docstring).

    Parameters
    ----------
    execute:
        Callback receiving each flushed batch (a list of
        :class:`BatchRequest`); it must resolve or fail every request.
    flush_interval:
        Hard deadline in seconds: a pending request never waits longer than
        this for companions (the latency cap of the coalescing trade).
    quiet_interval:
        Quiescence window in seconds: flush as soon as no new request
        arrived for this long.  Must not exceed ``flush_interval``.
    max_batch:
        Pending-request count that triggers an immediate flush.
    max_pending, max_pending_cost:
        Admission bounds (``None`` = unbounded).  A request that would push
        the parked queue past either bound is shed with
        :class:`ServiceOverloadedError`.  A single request whose own cost
        exceeds ``max_pending_cost`` is still admitted when the queue is
        empty -- bounding admission must not make a request unservable.
    on_abandon:
        Hook called as ``on_abandon(request, error)`` whenever the batcher
        (not the executor) must fail a request: executor exception fan-out,
        unresolved-request back-stop, worker death.  The owning facade uses
        it to clean its in-flight table; the batcher still guarantees the
        request ends up failed even if the hook itself misbehaves.
    name:
        Worker-thread name (visible in diagnostics).
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`.  When
        given, the batcher publishes its queue-wait histogram, batch-size
        and occupancy histograms, flush-trigger breakdown and shed count
        there, updated in the same locked sections as the ``stats()``
        counters so the two views cannot drift apart.
    """

    def __init__(
        self,
        execute: Callable[[list[BatchRequest]], None],
        *,
        flush_interval: float = 0.05,
        quiet_interval: float = 0.002,
        max_batch: int = 512,
        max_pending: Optional[int] = None,
        max_pending_cost: Optional[int] = None,
        on_abandon: Optional[Callable[[BatchRequest, BaseException], None]] = None,
        name: str = "repro-service-batcher",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if flush_interval < 0:
            raise ValueError(f"flush_interval must be >= 0, got {flush_interval}")
        if not 0 <= quiet_interval <= flush_interval:
            raise ValueError(
                f"quiet_interval must be in [0, flush_interval], got "
                f"{quiet_interval} (flush_interval {flush_interval})"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None, got {max_pending}")
        if max_pending_cost is not None and max_pending_cost < 1:
            raise ValueError(
                f"max_pending_cost must be >= 1 or None, got {max_pending_cost}"
            )
        self._execute = execute
        self.flush_interval = flush_interval
        self.quiet_interval = quiet_interval
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.max_pending_cost = max_pending_cost
        self._on_abandon = on_abandon
        self._condition = threading.Condition()
        self._pending: list[BatchRequest] = []
        self._pending_cost = 0
        self._oldest: float = 0.0
        self._latest: float = 0.0
        self._closed = False
        self._submitted = 0
        self._shed = 0
        self._batches = 0
        self._largest_batch = 0
        self._flushes = {"quiet": 0, "deadline": 0, "size": 0, "close": 0}
        if metrics is not None:
            self._metric_queue_wait = metrics.histogram(
                "repro_service_queue_wait_seconds",
                "Time a request spent parked in the micro-batch queue "
                "before its flush started.",
                buckets=LATENCY_BUCKETS,
            )
            self._metric_batch_size = metrics.histogram(
                "repro_service_batch_size",
                "Requests per flushed batch.",
                buckets=BATCH_SIZE_BUCKETS,
            )
            self._metric_occupancy = metrics.histogram(
                "repro_service_batch_occupancy_ratio",
                "Flushed batch size as a fraction of max_batch.",
                buckets=OCCUPANCY_BUCKETS,
            )
            self._metric_flushes = metrics.counter(
                "repro_service_batch_flushes_total",
                "Flushed batches by trigger (quiet/deadline/size/close).",
                labels=("trigger",),
            )
            self._metric_shed = metrics.counter(
                "repro_service_batch_shed_total",
                "Requests refused at admission because a queue bound "
                "(max_pending / max_pending_cost) would be exceeded.",
            )
        else:
            self._metric_queue_wait = None
            self._metric_batch_size = None
            self._metric_occupancy = None
            self._metric_flushes = None
            self._metric_shed = None
        self._worker = threading.Thread(target=self._run, name=name, daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Submission / shutdown
    # ------------------------------------------------------------------
    def submit(self, request: BatchRequest) -> BatchRequest:
        """Park ``request`` for the next flush (non-blocking).

        Admission (closed check, queue bounds, parking) is a single atomic
        step under the batcher lock: a request is either rejected here, or
        it is in the pending list where the drain guarantee covers it --
        there is no window in which ``close()`` can observe it half-way.
        The caller collects the outcome via :meth:`BatchRequest.wait`.

        Raises
        ------
        ServiceClosedError
            When the batcher has been closed.
        ServiceOverloadedError
            When an admission bound would be exceeded (the request was
            shed; ``retry_after`` suggests when the queue may have space).
        """
        with self._condition:
            if self._closed:
                raise ServiceClosedError(
                    "evaluation service is closed; no further requests accepted"
                )
            retry_after = max(self.flush_interval, 0.05)
            if (
                self.max_pending is not None
                and len(self._pending) >= self.max_pending
            ):
                self._shed += 1
                if self._metric_shed is not None:
                    self._metric_shed.inc()
                raise ServiceOverloadedError(
                    f"evaluation service overloaded: {len(self._pending)} "
                    f"requests pending (max_pending={self.max_pending})",
                    retry_after=retry_after,
                )
            if (
                self.max_pending_cost is not None
                and self._pending
                and self._pending_cost + request.cost > self.max_pending_cost
            ):
                self._shed += 1
                if self._metric_shed is not None:
                    self._metric_shed.inc()
                raise ServiceOverloadedError(
                    f"evaluation service overloaded: pending cost "
                    f"{self._pending_cost} + {request.cost} exceeds "
                    f"max_pending_cost={self.max_pending_cost}",
                    retry_after=retry_after,
                )
            now = time.monotonic()
            if not self._pending:
                self._oldest = now
            self._latest = now
            request.enqueued_at = now
            self._pending.append(request)
            self._pending_cost += request.cost
            self._submitted += 1
            self._condition.notify_all()
        return request

    def close(self, timeout: Optional[float] = None) -> None:
        """Refuse new requests, drain the queue, and join the worker."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._worker.join(timeout)
        if self._worker.is_alive():  # pragma: no cover - defensive
            raise ServiceError("batcher worker did not drain within the timeout")

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    @property
    def drained(self) -> bool:
        """``True`` once the worker has flushed every parked request.

        ``closed and not drained`` is the *draining* window ``/health``
        reports: shutdown has begun but accepted work is still in flight.
        """
        with self._condition:
            return self._closed and not self._worker.is_alive()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _fail(self, request: BatchRequest, error: BaseException) -> None:
        """Abandon ``request``: notify the owner, then guarantee failure."""
        if self._on_abandon is not None:
            try:
                self._on_abandon(request, error)
            except BaseException:  # noqa: BLE001 - the guarantee comes first
                pass
        if not request.resolved:
            request.fail(error)

    def _take_batch(self) -> tuple[list[BatchRequest], Optional[str]]:
        """Wait for a flush trigger; return ``(batch, reason)``.

        Returns ``([], None)`` when the batcher is closed and drained.
        """
        with self._condition:
            while True:
                if self._pending:
                    now = time.monotonic()
                    until_deadline = self._oldest + self.flush_interval - now
                    until_quiet = self._latest + self.quiet_interval - now
                    if self._closed:
                        reason = "close"
                    elif len(self._pending) >= self.max_batch:
                        reason = "size"
                    elif until_quiet <= 0:
                        reason = "quiet"
                    elif until_deadline <= 0:
                        reason = "deadline"
                    else:
                        self._condition.wait(min(until_deadline, until_quiet))
                        continue
                    batch = self._pending
                    self._pending = []
                    self._pending_cost = 0
                    return batch, reason
                if self._closed:
                    return [], None
                self._condition.wait()

    def _run(self) -> None:
        try:
            while True:
                batch, reason = self._take_batch()
                if not batch:
                    # Fire here too: when the queue happens to be empty at
                    # close there is no close-reason flush, and the drain
                    # fault would otherwise silently never trigger.  The
                    # worker thread is still alive during the fault, so the
                    # batcher stays in the observable *draining* state.
                    # A raise-style fault has no parked callers to fan out
                    # to at this point; contain it so the worker exits
                    # through the finally below instead of dying noisily.
                    try:
                        fault_point("service.drain")
                    except BaseException:  # noqa: BLE001
                        pass
                    return
                with self._condition:
                    self._batches += 1
                    self._largest_batch = max(self._largest_batch, len(batch))
                    self._flushes[reason] += 1
                    if self._metric_flushes is not None:
                        now = time.monotonic()
                        self._metric_flushes.inc(trigger=reason)
                        self._metric_batch_size.observe(len(batch))
                        self._metric_occupancy.observe(
                            len(batch) / self.max_batch
                        )
                        for request in batch:
                            self._metric_queue_wait.observe(
                                max(0.0, now - request.enqueued_at)
                            )
                try:
                    if reason == "close":
                        fault_point("service.drain")
                    self._execute(batch)
                except BaseException as error:  # noqa: BLE001 - fan out to callers
                    for request in batch:
                        if not request.resolved:
                            self._fail(request, error)
                finally:
                    for request in batch:
                        if not request.resolved:  # pragma: no cover - defensive
                            self._fail(
                                request,
                                ServiceError(
                                    f"executor left {request.kind} request "
                                    f"{request.fingerprint[:12]} unresolved"
                                ),
                            )
        finally:
            # The worker is exiting -- cleanly after a drain, or because
            # something above threw.  Either way, no flush will ever run
            # again: refuse new submissions and fail anything still parked
            # so no accepted caller blocks forever on a dead queue.
            with self._condition:
                self._closed = True
                leftovers = self._pending
                self._pending = []
                self._pending_cost = 0
                self._condition.notify_all()
            for request in leftovers:
                if not request.resolved:  # pragma: no cover - defensive
                    self._fail(
                        request,
                        ServiceError(
                            "batcher worker exited with parked requests; "
                            f"{request.kind} request "
                            f"{request.fingerprint[:12]} abandoned"
                        ),
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Coalescing counters (requests vs batches) for ``stats()``."""
        with self._condition:
            return {
                "submitted": self._submitted,
                "shed": self._shed,
                "batches": self._batches,
                "largest_batch": self._largest_batch,
                "pending": len(self._pending),
                "pending_cost": self._pending_cost,
                "flushes": dict(self._flushes),
                "flush_interval": self.flush_interval,
                "quiet_interval": self.quiet_interval,
                "max_batch": self.max_batch,
                "max_pending": self.max_pending,
                "max_pending_cost": self.max_pending_cost,
            }
