"""Stable content fingerprints for tasks, platforms, policies and requests.

The evaluation service (:mod:`repro.service.facade`) memoises results in a
byte-capped LRU keyed on *what the engines actually read*, so that two
requests asking the same question -- regardless of how their task objects
were constructed -- share one cache entry.  Every fingerprint is a SHA-256
hex digest over a canonical JSON document:

* **graph** -- sorted ``(node, wcet)`` pairs plus the sorted edge list,
  computed (and cached) by :meth:`repro.core.compiled.CompiledTask.fingerprint`.
  Because the compile itself is stamp-cached on the graph's ``(structure,
  weights)`` generation, an unmutated task is hashed exactly once, and two
  structurally identical DAGs built in different node-insertion orders hash
  equal;
* **task** -- the graph fingerprint together with the behavioural fields of
  the :func:`~repro.io.json_io.task_to_dict` form (``offloaded_node``,
  ``period``, ``deadline``).  The task *name* and free-form ``metadata``
  are deliberately excluded: no engine reads them, and excluding them lets
  e.g. a sweep of generated tasks that only differ in their labels share
  results;
* **platform** -- host-core and accelerator counts;
* **policy** -- the declarative policy spec the service accepts (name +
  seed + explicit priority table), *not* a policy instance: live instances
  may carry consumed RNG state that no stable hash can capture;
* **request** -- the kind tag plus every part above and the remaining
  request parameters.

All fingerprints go through :func:`canonical_bytes`, which serialises with
sorted keys and no whitespace so that semantically equal documents produce
identical bytes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Union

from ..core.compiled import CompiledTask, compile_task
from ..core.graph import DirectedAcyclicGraph
from ..core.task import DagTask
from ..simulation.platform import Platform

__all__ = [
    "canonical_bytes",
    "fingerprint_document",
    "graph_fingerprint",
    "task_fingerprint",
    "platform_fingerprint",
    "policy_fingerprint",
    "request_fingerprint",
]


def canonical_bytes(document: object) -> bytes:
    """Serialise ``document`` to canonical JSON bytes.

    Keys are sorted and separators minimal, so two dictionaries with the
    same content produce identical bytes regardless of insertion order.
    Values that JSON cannot represent fall back to ``repr`` (node
    identifiers are stringified before they reach this point, so the
    fallback only fires for exotic metadata).
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), default=repr
    ).encode("utf-8")


def fingerprint_document(document: object) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``document``."""
    return hashlib.sha256(canonical_bytes(document)).hexdigest()


def graph_fingerprint(
    source: Union[DagTask, DirectedAcyclicGraph, CompiledTask]
) -> str:
    """Content hash of a weighted graph (structure + WCETs).

    Accepts a task, a bare graph or an already-compiled view; the hash is
    computed (and cached) on the :class:`~repro.core.compiled.CompiledTask`
    view, so repeated calls between mutations cost a dictionary lookup.
    """
    compiled = source if isinstance(source, CompiledTask) else compile_task(source)
    return compiled.fingerprint()


def task_fingerprint(task: DagTask) -> str:
    """Content hash of a task: graph content + behavioural timing fields.

    Derived from the :func:`~repro.io.json_io.task_to_dict` JSON form minus
    the purely descriptive fields (``name``, ``metadata``), which no engine
    reads -- see the module docstring.
    """
    offloaded = task.offloaded_node
    return fingerprint_document(
        [
            "task",
            graph_fingerprint(task),
            None if offloaded is None else str(offloaded),
            task.period,
            task.deadline,
        ]
    )


def platform_fingerprint(platform: Union[Platform, int]) -> str:
    """Content hash of a platform (host cores + accelerator count)."""
    if isinstance(platform, int):
        platform = Platform(host_cores=platform)
    return fingerprint_document(
        ["platform", platform.host_cores, platform.accelerators]
    )


def policy_fingerprint(
    name: str,
    seed: Optional[int] = None,
    priorities: Optional[dict] = None,
) -> str:
    """Content hash of a declarative policy spec (name + params + seed).

    ``priorities`` (the explicit table of a ``fixed-priority`` policy) is
    canonicalised by sorting, so two tables with different insertion
    orders hash equal.  Keys are rendered with ``repr`` -- *not* ``str``
    -- because the policy looks nodes up by their raw identity
    (``priorities.get(node)``): a table keyed ``{3: 0.0}`` and one keyed
    ``{"3": 0.0}`` behave differently on an int-noded graph and must not
    share a cache entry (mirroring the ``repr``-keyed oracle memo of
    :mod:`repro.ilp.batch`).
    """
    table = (
        None
        if priorities is None
        else sorted((repr(node), float(value)) for node, value in priorities.items())
    )
    return fingerprint_document(["policy", name, seed, table])


def request_fingerprint(kind: str, *parts: object) -> str:
    """Content hash of a full service request (kind tag + ordered parts)."""
    return fingerprint_document([kind, *parts])
