"""Synchronous in-process facade of the long-lived evaluation service.

:class:`EvaluationService` turns the batched engines into a server-shaped
API: callers submit one request at a time (typically from many threads --
the HTTP transport of :mod:`repro.service.http` does exactly that) and the
service amortises the work across them:

``submit -> fingerprint -> cache -> in-flight dedupe -> micro-batch -> engine``

1. the request is **fingerprinted** (:mod:`repro.service.fingerprint`);
2. the **result cache** (:class:`~repro.service.cache.ResultCache`) is
   consulted -- a hit returns a copy of the memoised payload without
   touching any engine;
3. an identical request already **in flight** is joined instead of being
   recomputed (one evaluation serves every concurrent duplicate);
4. otherwise the request is parked in the **micro-batching queue**
   (:class:`~repro.service.batching.MicroBatcher`); a flush groups parked
   requests by engine compatibility and serves each group with *one*
   batched-engine call -- :func:`~repro.simulation.batch.simulate_many`,
   :func:`~repro.analysis.batch.analyse_many` or
   :func:`~repro.ilp.batch.minimum_makespans_many` -- so a burst of N
   single-cell requests costs one vectorised-kernel batch, not N Python
   event loops.

Correctness contract
--------------------
Batched == sequential, bit for bit.  Every payload the service returns is
exactly what a one-shot evaluation of the same request produces:

* deterministic policies ride the PR-4 lockstep kernel, whose per-lane
  results are independent of batch composition (hypothesis-enforced by
  ``tests/test_vectorized_engine.py``), so coalescing cannot change them;
* the stochastic ``random`` policy is the one family whose draws *would*
  depend on batch composition -- the service therefore evaluates those
  requests solo (one fresh seeded instance per request, dense engine), so
  their answers equal the one-shot
  :func:`~repro.simulation.engine.simulate_makespan` with the same seed;
* analyses and exact-makespan oracles are deterministic per task.

``tests/test_service.py`` locks the contract down end to end (threaded
bursts vs sequential evaluation, cached vs uncached).

Policies are accepted *declaratively* (name + optional seed + optional
fixed-priority table), never as live instances: a live instance can carry
consumed RNG state that no stable cache key could describe.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Union

from ..analysis.batch import TaskAnalysis, analyse_many
from ..analysis.results import ResponseTimeResult
from ..core.exceptions import (
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from ..core.task import DagTask
from ..generator.arrivals import arrival_to_dict
from ..ilp.batch import minimum_makespans_many
from ..ilp.makespan import MakespanMethod, MakespanResult
from ..parallel import worker_respawn_count
from ..resilience import FAULTS, CircuitBreaker, Deadline, fault_point
from ..simulation.batch import resolve_engine, simulate_many
from ..simulation.calibration import vector_threshold as _calibrated_threshold
from ..simulation.engine import simulate_makespan
from ..simulation.kernel_stats import collect_kernel_stats
from ..simulation.platform import Platform
from ..simulation.workload import (
    JobStream,
    WorkloadResult,
    build_workload,
    simulate_workload,
)
from ..simulation.schedulers import (
    _POLICIES,
    FixedPriorityPolicy,
    RandomPolicy,
    SchedulingPolicy,
    policy_by_name,
)
from .batching import BatchRequest, MicroBatcher
from .cache import ResultCache
from .metrics import OCCUPANCY_BUCKETS, MetricsRegistry
from .tracing import NULL_SPAN, RequestTraceContext, Tracer, current_trace
from .fingerprint import (
    platform_fingerprint,
    policy_fingerprint,
    request_fingerprint,
    task_fingerprint,
)

__all__ = [
    "EvaluationService",
    "build_policy",
    "simulation_payload",
    "analysis_payload",
    "makespan_payload",
    "workload_payload",
]


# ----------------------------------------------------------------------
# Declarative policy specs
# ----------------------------------------------------------------------
def build_policy(
    name: str,
    seed: Optional[int] = None,
    priorities: Optional[dict] = None,
) -> SchedulingPolicy:
    """Instantiate a fresh policy from a declarative spec.

    ``priorities`` is only meaningful for ``fixed-priority`` (an explicit
    node -> priority table); ``seed`` only for ``random``.  Every request
    evaluation builds a *fresh* instance, so stochastic policies replay the
    same stream for the same spec -- the property that makes their results
    cacheable at all.
    """
    if priorities is not None:
        if name != FixedPriorityPolicy.name:
            raise ValueError(
                f"priorities are only supported by "
                f"{FixedPriorityPolicy.name!r} policies, not {name!r}"
            )
        return FixedPriorityPolicy(priorities)
    return policy_by_name(name, rng=seed)


def _validate_policy_spec(
    name: str, priorities: Optional[dict]
) -> None:
    """Reject malformed policy specs without instantiating a policy.

    Runs on every submission -- including cache hits, whose per-request
    cost bounds the service's warm throughput -- so it must stay a pair
    of dictionary checks, not a :func:`build_policy` call (which would
    build and discard a numpy ``Generator`` per ``random`` request).
    """
    if name not in _POLICIES:
        valid = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown policy {name!r}; valid policies: {valid}")
    if priorities is not None and name != FixedPriorityPolicy.name:
        raise ValueError(
            f"priorities are only supported by "
            f"{FixedPriorityPolicy.name!r} policies, not {name!r}"
        )


def _as_platform(platform: Union[Platform, int]) -> Platform:
    return platform if isinstance(platform, Platform) else Platform(platform)


def _copy_payload(value):
    """Structural copy of a JSON-style payload tree.

    Payloads hold only dicts, lists and immutable scalars, so this beats
    ``copy.deepcopy`` (which walks the generic dispatch machinery) on the
    cache-hit fast path -- the path whose per-request cost bounds the warm
    throughput of the whole service.
    """
    if isinstance(value, dict):
        return {key: _copy_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_copy_payload(item) for item in value]
    return value


def _normalise_cores(cores: Union[int, Iterable[int]]) -> tuple[int, ...]:
    if isinstance(cores, int):
        return (cores,)
    values = tuple(int(m) for m in cores)
    if not values:
        raise ValueError("at least one core count is required")
    return values


# ----------------------------------------------------------------------
# JSON-style result payloads
# ----------------------------------------------------------------------
# Payloads are plain JSON trees so that the in-process facade, the result
# cache and the HTTP transport all agree on one representation: a cached
# in-process answer is byte-for-byte the document a remote client receives.
def simulation_payload(makespan: float) -> dict:
    """Payload of a ``simulate`` request."""
    return {"makespan": float(makespan)}


def _response_time_payload(result: ResponseTimeResult) -> dict:
    return {
        "bound": float(result.bound),
        "method": result.method,
        "scenario": result.scenario.value,
        "terms": {str(key): float(value) for key, value in result.terms.items()},
    }


def analysis_payload(analysis: TaskAnalysis) -> dict:
    """Payload of an ``analyse`` request (bounds per core count per method).

    Task names are deliberately absent: the cache key excludes them (see
    :func:`repro.service.fingerprint.task_fingerprint`), so the payload
    must not depend on them either.
    """
    return {
        "heterogeneous": analysis.transformed is not None,
        "bounds": [
            {
                "cores": cores,
                "methods": {
                    method: _response_time_payload(result)
                    for method, result in entry.items()
                },
            }
            for cores, entry in analysis.results.items()
        ],
    }


def makespan_payload(result: MakespanResult) -> dict:
    """Payload of a ``makespan`` request (value + witness schedule).

    ``degraded`` marks a bound-sandwich fallback answer (budget exhausted
    or breaker open): a verified upper bound, never the claimed optimum,
    and never admitted to the result cache.
    """
    return {
        "makespan": float(result.makespan),
        "optimal": bool(result.optimal),
        "degraded": bool(result.degraded),
        "method": result.method.value,
        "cores": result.cores,
        "accelerators": result.accelerators,
        "start_times": {
            str(node): float(start) for node, start in result.start_times.items()
        },
        "engine_stats": {str(key): value for key, value in result.engine_stats.items()},
    }


def workload_payload(result: WorkloadResult) -> dict:
    """Payload of a ``workload`` request: aggregates + per-instance metrics.

    ``per_instance`` rows are in workload (release) order; ``deadline`` is
    the absolute deadline (``None`` when the stream carries none).
    """
    payload = result.summary()
    deadlines = result.deadlines
    payload["per_instance"] = [
        {
            "stream": int(result.streams[i]),
            "index": int(result.indices[i]),
            "release": float(result.releases[i]),
            "completion": float(result.completions[i]),
            "response": float(result.completions[i] - result.releases[i]),
            "deadline": (
                None if deadlines[i] == float("inf") else float(deadlines[i])
            ),
            "missed": bool(result.completions[i] > deadlines[i]),
        }
        for i in range(result.count)
    ]
    return payload


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class EvaluationService:
    """Long-lived, cache-backed evaluation service over the batched engines.

    Parameters
    ----------
    cache_bytes:
        Byte cap of the fingerprint-keyed result store (``0`` disables
        memoisation entirely -- every payload is rejected by the cap).
    flush_interval:
        Micro-batching hard deadline in seconds: the longest a request
        waits for companions before its batch is flushed.
    quiet_interval:
        Quiescence flush window in seconds: a batch is flushed as soon as
        no new request arrived for this long, so a back-to-back burst
        coalesces fully while a lone request only pays one quiet window of
        latency.
    max_batch:
        Pending-request count that triggers an immediate flush.
    jobs:
        Worker-process count forwarded to the batched engines (``None``
        keeps them serial; the lockstep kernel usually saturates a core per
        batch already).
    default_timeout:
        Per-request deadline in seconds applied when a submission does not
        pass its own ``timeout`` (``None`` = wait forever).  The deadline
        is absolute: queueing time counts against it, and a request whose
        deadline expires while parked is failed with
        :class:`~repro.core.exceptions.ServiceTimeoutError` before any
        engine is invoked on its behalf.
    max_pending, max_pending_cost:
        Admission bounds of the micro-batching queue (``None`` =
        unbounded); cost is measured in task nodes.  Requests past a bound
        are shed with
        :class:`~repro.core.exceptions.ServiceOverloadedError`.
    oracle_budget:
        Wall-clock seconds each exact-makespan batch may spend before the
        remaining instances degrade to the verified bound sandwich
        (``None`` = unbudgeted, the exact engines run to completion).
    breaker_threshold, breaker_reset:
        Circuit breaker over the exact-makespan engines: after
        ``breaker_threshold`` consecutive failed/degraded batches the
        breaker opens and makespan requests degrade immediately for
        ``breaker_reset`` seconds.
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry` to publish
        into (a fresh private registry is created when omitted).  The
        service's own counters *are* metrics-registry counters -- ``stats()``
        reads the exact objects ``GET /metrics`` renders, so the two
        endpoints reconcile by construction, not by double bookkeeping.
    tracing, trace_sample, trace_ring_bytes:
        Per-request tracing (:mod:`repro.service.tracing`): ``tracing=False``
        turns every span hook into a no-op; ``trace_sample`` is the
        tail-sampling keep probability for normal traces (errors, degraded
        and slow traces are always kept); ``trace_ring_bytes`` caps the
        finished-trace ring served on ``GET /traces``.

    Thread-safe: requests may be submitted from any number of threads;
    :meth:`close` drains the queue before returning -- every accepted
    request is resolved (served, failed or timed out), never abandoned.
    Usable as a context manager.
    """

    def __init__(
        self,
        *,
        cache_bytes: int = 64 * 1024 * 1024,
        flush_interval: float = 0.05,
        quiet_interval: float = 0.002,
        max_batch: int = 512,
        jobs: Optional[int] = None,
        default_timeout: Optional[float] = None,
        max_pending: Optional[int] = None,
        max_pending_cost: Optional[int] = None,
        oracle_budget: Optional[float] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
        vector_threshold: Optional[int] = None,
        tracing: bool = True,
        trace_sample: float = 1.0,
        trace_ring_bytes: int = 4 << 20,
    ) -> None:
        self.cache = ResultCache(max_bytes=cache_bytes)
        self._jobs = jobs
        # Per-request tracing substrate (span trees + tail-sampled ring).
        # Spans only materialise inside an active trace (the HTTP layer
        # starts one per request), so direct API callers pay one
        # context-var read per hook -- benchmarked like the disarmed
        # fault points in benchmarks/bench_tracing.py.
        self.tracer = Tracer(
            enabled=tracing,
            sample=trace_sample,
            ring_bytes=trace_ring_bytes,
        )
        # Lane count from which simulation grids run on the batched
        # lockstep kernel instead of the per-cell dense engine.  ``None``
        # consults the measured calibration table
        # (src/repro/simulation/calibration.json; env
        # ``REPRO_VECTOR_THRESHOLD`` overrides) for the backend available
        # on this host -- ~1 with the compiled kernel, a couple of hundred
        # lanes on the numpy fallback.
        self.vector_threshold = _calibrated_threshold(vector_threshold)
        self._default_timeout = default_timeout
        self._oracle_budget = oracle_budget
        self._oracle_breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset,
            name="oracle",
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, BatchRequest] = {}
        self._closed = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Lifetime counters live *in* the registry: stats() reads the same
        # objects /metrics renders, so the two views cannot drift apart.
        self._requests = self.metrics.counter(
            "repro_service_requests_total",
            "Requests admitted past the closed check, by kind.",
            labels=("kind",),
        )
        self._inflight_joins = self.metrics.counter(
            "repro_service_inflight_joins_total",
            "Requests served by joining an identical in-flight evaluation.",
        )
        self._engine_batches = self.metrics.counter(
            "repro_service_engine_batches_total",
            "Batched-engine invocations (grid, group or solo).",
        )
        self._sim_engines = self.metrics.counter(
            "repro_service_sim_engine_total",
            "Simulation grid/solo evaluations by the concrete engine that "
            "served them (dense, lockstep or compiled).",
            labels=("engine",),
        )
        self._evaluated_cells = self.metrics.counter(
            "repro_service_evaluated_cells_total",
            "Grid cells evaluated across all engine invocations.",
        )
        self._solo_evaluations = self.metrics.counter(
            "repro_service_solo_evaluations_total",
            "Requests evaluated individually (stochastic policies, "
            "per-request fallback after a failed group).",
        )
        self._timeouts = self.metrics.counter(
            "repro_service_timeouts_total",
            "Deadline expiries (parked past deadline, or caller wait "
            "ran out).",
        )
        self._shed = self.metrics.counter(
            "repro_service_shed_total",
            "Requests shed at admission with ServiceOverloadedError.",
        )
        self._degraded = self.metrics.counter(
            "repro_service_degraded_total",
            "Requests answered with a degraded (bound-sandwich) payload.",
        )
        # Kernel step profiles: the same per-batch counters the engine
        # spans carry (steps / events / lane occupancy), aggregated --
        # /metrics and /traces reconcile because both read the identical
        # KernelBatchStats records.
        self._kernel_steps = self.metrics.counter(
            "repro_kernel_steps_total",
            "Kernel step-loop iterations by engine (lockstep: synchronised "
            "steps; compiled: retire windows; workload: event batches).",
            labels=("engine",),
        )
        self._kernel_events = self.metrics.counter(
            "repro_kernel_events_total",
            "Node retirements processed by kernel batches, by engine.",
            labels=("engine",),
        )
        self._kernel_occupancy = self.metrics.histogram(
            "repro_kernel_lane_occupancy",
            "Mean lane occupancy of each kernel batch "
            "(lane-steps / (steps * lanes), in [0, 1]).",
            buckets=OCCUPANCY_BUCKETS,
            labels=("engine",),
        )
        self._batcher = MicroBatcher(
            self._execute_batch,
            flush_interval=flush_interval,
            quiet_interval=quiet_interval,
            max_batch=max_batch,
            max_pending=max_pending,
            max_pending_cost=max_pending_cost,
            on_abandon=self._abort,
            metrics=self.metrics,
        )
        self._register_gauges()

    def _register_gauges(self) -> None:
        """Callback gauges over state that already lives elsewhere.

        Evaluated at scrape time, so the cache / queue / in-flight numbers
        on ``/metrics`` are live reads of the same structures ``stats()``
        reports -- never a second copy that could go stale.
        """
        cache_stats = self.cache.stats
        self.metrics.gauge(
            "repro_service_cache_entries",
            "Entries currently held by the result cache.",
            callback=lambda: cache_stats()["entries"],
        )
        self.metrics.gauge(
            "repro_service_cache_bytes",
            "Bytes currently held by the result cache.",
            callback=lambda: cache_stats()["bytes"],
        )

        def hit_ratio() -> float:
            stats = cache_stats()
            lookups = stats["hits"] + stats["misses"]
            return stats["hits"] / lookups if lookups else 0.0

        self.metrics.gauge(
            "repro_service_cache_hit_ratio",
            "Lifetime cache hits / (hits + misses).",
            callback=hit_ratio,
        )
        self.metrics.gauge(
            "repro_service_pending_requests",
            "Requests currently parked in the micro-batch queue.",
            callback=lambda: self._batcher.stats()["pending"],
        )
        self.metrics.gauge(
            "repro_service_inflight_requests",
            "Distinct fingerprints currently being evaluated.",
            callback=self._inflight_size,
        )

        def ratio_of(counter) -> float:
            total = self._requests.total()
            return counter.total() / total if total else 0.0

        self.metrics.gauge(
            "repro_service_timeout_ratio",
            "Lifetime timeouts / requests.",
            callback=lambda: ratio_of(self._timeouts),
        )
        self.metrics.gauge(
            "repro_service_shed_ratio",
            "Lifetime shed / requests.",
            callback=lambda: ratio_of(self._shed),
        )
        self.metrics.gauge(
            "repro_service_degraded_ratio",
            "Lifetime degraded answers / requests.",
            callback=lambda: ratio_of(self._degraded),
        )

        def trace_stat(key: str):
            return lambda: self.tracer.ring_stats()[key]

        self.metrics.gauge(
            "repro_trace_ring_traces",
            "Traces currently held by the trace ring buffer.",
            callback=trace_stat("ring_traces"),
        )
        self.metrics.gauge(
            "repro_trace_ring_bytes",
            "Serialized bytes currently held by the trace ring buffer.",
            callback=trace_stat("ring_bytes"),
        )
        self.metrics.gauge(
            "repro_traces_started",
            "Traces started since boot.",
            callback=trace_stat("started"),
        )
        self.metrics.gauge(
            "repro_traces_kept",
            "Finished traces admitted to the ring by tail sampling.",
            callback=trace_stat("kept"),
        )

    def _inflight_size(self) -> int:
        with self._lock:
            return len(self._inflight)

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------
    def submit_simulation(
        self,
        task: DagTask,
        platform: Union[Platform, int] = 2,
        *,
        policy: str = "breadth-first",
        policy_seed: Optional[int] = None,
        priorities: Optional[dict] = None,
        offload_enabled: bool = True,
        timeout: Optional[float] = None,
    ) -> float:
        """Makespan of one simulated execution (batched behind the scenes).

        Returns exactly ``simulate_makespan(task, platform,
        build_policy(policy, policy_seed, priorities), offload_enabled)``
        -- see the module docstring for why coalescing cannot change it.
        """
        platform = _as_platform(platform)
        _validate_policy_spec(policy, priorities)
        if policy == RandomPolicy.name:
            if policy_seed is None:
                # An unseeded random policy draws fresh OS entropy per
                # evaluation; no stable fingerprint could describe it and a
                # cached answer would be a lie.
                raise ValueError(
                    "random-policy requests require an explicit policy_seed "
                    "(results are memoised and must be reproducible)"
                )
        else:
            # Deterministic policies ignore the seed; normalising it keeps
            # byte-identical computations on one cache entry / batch group.
            policy_seed = None
        policy_fp = policy_fingerprint(policy, policy_seed, priorities)
        task_fp = task_fingerprint(task)
        fingerprint = request_fingerprint(
            "simulate",
            task_fp,
            platform_fingerprint(platform),
            policy_fp,
            bool(offload_enabled),
        )
        # The stochastic family consumes an RNG stream across the cells of a
        # batch, so only a solo evaluation matches the one-shot semantics.
        # Deterministic policies group across *platforms and policies* too:
        # a flush covering an ablation-shaped burst (every task at every
        # host size under every policy) becomes one task x platform x
        # policy grid for the lockstep kernel.
        solo = policy == RandomPolicy.name
        payload = self._submit(
            kind="simulate",
            fingerprint=fingerprint,
            group_key=(bool(offload_enabled), solo),
            task=task,
            params={
                "platform": platform,
                "task_fp": task_fp,
                "policy": policy,
                "policy_fp": policy_fp,
                "policy_seed": policy_seed,
                "priorities": priorities,
                "offload_enabled": bool(offload_enabled),
                "solo": solo,
            },
            timeout=timeout,
        )
        return payload["makespan"]

    def submit_analysis(
        self,
        task: DagTask,
        cores: Union[int, Iterable[int]] = 2,
        *,
        include_naive: bool = True,
        timeout: Optional[float] = None,
    ) -> dict:
        """Response-time bounds of ``task`` for every requested core count."""
        core_counts = _normalise_cores(cores)
        fingerprint = request_fingerprint(
            "analyse", task_fingerprint(task), list(core_counts), bool(include_naive)
        )
        return self._submit(
            kind="analyse",
            fingerprint=fingerprint,
            group_key=(core_counts, bool(include_naive)),
            task=task,
            params={"cores": core_counts, "include_naive": bool(include_naive)},
            timeout=timeout,
        )

    def submit_makespan(
        self,
        task: DagTask,
        cores: int = 2,
        *,
        accelerators: int = 1,
        method: str = "auto",
        time_limit: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Exact minimum makespan via the batched, memoised oracle layer."""
        method_value = MakespanMethod(method).value  # validate early
        fingerprint = request_fingerprint(
            "makespan",
            task_fingerprint(task),
            int(cores),
            int(accelerators),
            method_value,
            time_limit,
        )
        return self._submit(
            kind="makespan",
            fingerprint=fingerprint,
            group_key=(int(cores), int(accelerators), method_value, time_limit),
            task=task,
            params={
                "cores": int(cores),
                "accelerators": int(accelerators),
                "method": method_value,
                "time_limit": time_limit,
            },
            timeout=timeout,
        )

    def submit_workload(
        self,
        streams: list[JobStream],
        horizon: float,
        platform: Union[Platform, int] = 2,
        *,
        policy: str = "breadth-first",
        policy_seed: Optional[int] = None,
        offload_enabled: bool = True,
        timeout: Optional[float] = None,
    ) -> dict:
        """Simulate an online multi-instance workload on one shared platform.

        The streams are unrolled over ``[0, horizon)`` and all released
        instances contend for the platform's core/accelerator pool under the
        shared-capacity coupled simulator
        (:func:`repro.simulation.workload.simulate_workload`).  The payload
        carries the aggregate schedulability metrics plus per-instance
        response times and deadline flags.

        Arrival processes are declarative and seeded, so the whole request
        is fingerprintable: identical workloads hit the result cache.
        """
        if not streams:
            raise ValueError("a workload request needs at least one job stream")
        platform = _as_platform(platform)
        horizon = float(horizon)
        if not horizon >= 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        _validate_policy_spec(policy, None)
        if policy == RandomPolicy.name:
            if policy_seed is None:
                raise ValueError(
                    "random-policy requests require an explicit policy_seed "
                    "(results are memoised and must be reproducible)"
                )
        else:
            policy_seed = None
        policy_fp = policy_fingerprint(policy, policy_seed, None)
        stream_specs = [
            [
                task_fingerprint(stream.task),
                arrival_to_dict(stream.arrivals),
                stream.relative_deadline(),
            ]
            for stream in streams
        ]
        fingerprint = request_fingerprint(
            "workload",
            stream_specs,
            horizon,
            platform_fingerprint(platform),
            policy_fp,
            bool(offload_enabled),
        )
        return self._submit(
            kind="workload",
            fingerprint=fingerprint,
            group_key=("workload",),
            task=streams[0].task,
            params={
                "streams": list(streams),
                "horizon": horizon,
                "platform": platform,
                "policy": policy,
                "policy_seed": policy_seed,
                "offload_enabled": bool(offload_enabled),
            },
            timeout=timeout,
            cost=sum(
                max(1, len(stream.task.graph.nodes())) for stream in streams
            ),
        )

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Refuse new requests and drain every in-flight one.

        Idempotent; after it returns, every previously submitted request
        has been resolved and further submissions raise
        :class:`~repro.core.exceptions.ServiceClosedError`.
        """
        with self._lock:
            self._closed = True
        self._batcher.close(timeout)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def lifecycle(self) -> str:
        """Lifecycle phase for ``/health``: ``ok``/``draining``/``closed``.

        ``draining`` is the window between the start of :meth:`close` (new
        submissions already refused) and the batcher worker flushing the
        last parked request -- a load balancer must stop routing here, but
        previously accepted requests are still being served.
        """
        if not self.closed:
            return "ok"
        return "closed" if self._batcher.drained else "draining"

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> dict:
        """Service-wide counters: requests, cache, batching, engine calls.

        ``batching.batches`` vs ``requests.total`` is the coalescing proof
        the acceptance tests assert on (batches << requests under a burst);
        ``cache`` carries the hit/miss/eviction counters of the result
        store.
        """
        requests = {
            kind: self._requests.value(kind=kind)
            for kind in ("simulate", "analyse", "makespan", "workload")
        }
        requests["total"] = self._requests.total()
        engine = {
            "batches": self._engine_batches.value(),
            "evaluated_cells": self._evaluated_cells.value(),
            "solo_evaluations": self._solo_evaluations.value(),
            "inflight_joins": self._inflight_joins.value(),
            "vector_threshold": self.vector_threshold,
            "by_engine": {
                name: self._sim_engines.value(engine=name)
                for name in ("dense", "lockstep", "compiled")
            },
        }
        resilience = {
            "timeouts": self._timeouts.value(),
            "shed": self._shed.value(),
            "degraded": self._degraded.value(),
        }
        resilience["breaker"] = self._oracle_breaker.stats()
        resilience["worker_respawns"] = worker_respawn_count()
        resilience["faults"] = FAULTS.stats()
        return {
            "requests": requests,
            "cache": self.cache.stats(),
            "batching": self._batcher.stats(),
            "engine": engine,
            "resilience": resilience,
            "tracing": self.tracer.ring_stats(),
            "jobs": self._jobs,
            "closed": self.closed,
            "lifecycle": self.lifecycle(),
        }

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _submit(
        self,
        kind: str,
        fingerprint: str,
        group_key: tuple,
        task: DagTask,
        params: dict,
        timeout: Optional[float],
        cost: Optional[int] = None,
    ) -> dict:
        with self.tracer.span(
            "facade.submit", attributes={"kind": kind}
        ) as submit_span:
            with self._lock:
                if self._closed:
                    raise ServiceClosedError(
                        "evaluation service is closed; no further requests "
                        "accepted"
                    )
            self._requests.inc(kind=kind)
            if timeout is None:
                timeout = self._default_timeout
            deadline = Deadline.after(timeout)
            with self.tracer.span("cache.lookup") as cache_span:
                cached = self.cache.get(fingerprint)
                cache_span.set("hit", cached is not None)
            if cached is not None:
                submit_span.set("cache_hit", True)
                return _copy_payload(cached)
            with self._lock:
                leader = self._inflight.get(fingerprint)
                if leader is None:
                    request = BatchRequest(
                        kind=kind,
                        fingerprint=fingerprint,
                        group_key=group_key,
                        task=task,
                        params=params,
                        deadline=deadline,
                        cost=(
                            max(1, len(task.graph.nodes()))
                            if cost is None
                            else cost
                        ),
                    )
                    self._inflight[fingerprint] = request
                else:
                    self._inflight_joins.inc()
            if leader is not None:
                # Dedupe join: this trace did no engine work of its own --
                # it waited on the leader's, so link the leader's trace.
                submit_span.set("inflight_join", True)
                trace = current_trace()
                leader_ctx = leader.trace
                if trace is not None and isinstance(
                    leader_ctx, RequestTraceContext
                ):
                    trace.link_trace(
                        leader_ctx.trace.trace_id, kind="dedupe-leader"
                    )
                return _copy_payload(self._wait(leader, deadline))
            queue_span = self.tracer.start_span("batcher.queue")
            if queue_span:
                request.trace = RequestTraceContext(current_trace(), queue_span)
            try:
                self._batcher.submit(request)
            except BaseException as error:
                if isinstance(error, ServiceOverloadedError):
                    self._shed.inc()
                    queue_span.set("shed", True)
                queue_span.set_error()
                queue_span.finish()
                # Fail the request before retiring it: concurrent duplicates
                # may already be parked on its event and would otherwise
                # wait forever.
                request.fail(error)
                with self._lock:
                    self._inflight.pop(fingerprint, None)
                raise
            return _copy_payload(self._wait(request, deadline))

    def _wait(self, request: BatchRequest, deadline: Deadline) -> object:
        """Await ``request`` under the caller's deadline, counting timeouts.

        A caller-side expiry (the wait ran out) is counted here; a
        batch-side expiry (the parked request's own deadline expired before
        its flush) was already counted when the executor aborted it -- the
        re-raise of that stored error must not count twice.
        """
        try:
            return request.wait(deadline.remaining())
        except ServiceTimeoutError as error:
            if error is not request.error:
                self._timeouts.inc()
            raise

    def _finish(self, request: BatchRequest, payload: dict) -> None:
        """Cache, resolve and retire one served request (in that order).

        Degraded payloads (bound sandwich instead of the exact optimum)
        are resolved to their callers but **never cached**: a later
        identical request must get a fresh chance at the exact answer.
        """
        if isinstance(payload, dict) and payload.get("degraded"):
            self._degraded.inc()
            if isinstance(request.trace, RequestTraceContext):
                request.trace.trace.degraded = True
        else:
            self.cache.put(request.fingerprint, payload)
        request.resolve(payload)
        with self._lock:
            self._inflight.pop(request.fingerprint, None)

    def _abort(self, request: BatchRequest, error: BaseException) -> None:
        request.fail(error)
        with self._lock:
            self._inflight.pop(request.fingerprint, None)

    # ------------------------------------------------------------------
    # Batch execution (runs on the batcher worker thread)
    # ------------------------------------------------------------------
    def _execute_batch(self, batch: list[BatchRequest]) -> None:
        # Every failure path must run through _abort: a request failed
        # without retiring its in-flight entry would poison its fingerprint
        # (later identical requests would join the stale failed leader
        # forever).  The batcher's own defensive net cannot do that -- it
        # has no access to the in-flight table -- so nothing may escape
        # this method with requests unresolved.
        #
        # Fan-in tracing: one shared ``batcher.flush`` span serves the whole
        # coalesced batch.  Each traced member's queue span ends here and
        # the flush span (with the engine spans attached beneath it) is
        # linked into every member's trace -- shared work is attributed
        # once, identically, to everyone who waited on it.
        members = [
            request.trace
            for request in batch
            if isinstance(request.trace, RequestTraceContext)
        ]
        flush_span = NULL_SPAN
        if members:
            flush_span = self.tracer.new_shared_span("batcher.flush")
            flush_span.set("batch_size", len(batch))
            flush_span.set("traced_members", len(members))
            for context in members:
                context.join_flush(flush_span)
        try:
            fault_point("service.batch")
            # Requests that raced with an insertion of the same fingerprint
            # (cache filled between the miss and the flush) resolve
            # instantly; requests whose deadline expired while parked are
            # timed out *before* any engine runs on their behalf.
            work: list[BatchRequest] = []
            for request in batch:
                cached = self.cache.peek(request.fingerprint)
                if cached is not None:
                    self._finish(request, cached)
                    continue
                if request.deadline is not None and request.deadline.expired:
                    self._timeouts.inc()
                    self._abort(
                        request,
                        ServiceTimeoutError(
                            f"{request.kind} request "
                            f"{request.fingerprint[:12]} expired in the "
                            f"queue before its batch was executed"
                        ),
                    )
                    continue
                work.append(request)
            groups: dict[tuple, list[BatchRequest]] = {}
            for request in work:
                groups.setdefault((request.kind, request.group_key), []).append(
                    request
                )
            for (kind, _), requests in groups.items():
                try:
                    if kind == "simulate":
                        self._run_simulation_group(requests, flush_span)
                    elif kind == "analyse":
                        self._run_analysis_group(requests, flush_span)
                    elif kind == "workload":
                        self._run_workload_group(requests, flush_span)
                    else:
                        self._run_makespan_group(requests, flush_span)
                except BaseException:  # noqa: BLE001 - isolate per request
                    # One bad request (or an infeasible *unrequested* grid
                    # cell) must not fail its coalesced group-mates: fall
                    # back to sequential per-request evaluation -- exactly
                    # the semantics the batch is contracted to reproduce --
                    # so only genuinely failing requests error.
                    self._run_group_solo(requests, flush_span)
        except BaseException as error:  # noqa: BLE001 - fan out whole batch
            flush_span.set_error()
            for request in batch:
                if not request.resolved:
                    self._abort(request, error)
        finally:
            flush_span.finish()

    def _run_group_solo(
        self, requests: list[BatchRequest], flush_span=NULL_SPAN
    ) -> None:
        """Serve each unresolved request of a failed group individually."""
        for request in requests:
            if request.resolved:
                continue
            params = request.params
            try:
                if request.kind == "workload":
                    with self.tracer.shared_child(
                        flush_span,
                        "workload.simulate",
                        attributes={"solo": True},
                    ) as engine_span:
                        with collect_kernel_stats() as kstats:
                            payload = self._evaluate_workload(params)
                        self._record_kernel_stats(kstats, engine_span)
                    self._count_engine_call(1, solo=True)
                    self._sim_engines.inc(engine="lockstep")
                    self._finish(request, payload)
                    continue
                span_name = (
                    "oracle.solve"
                    if request.kind == "makespan"
                    else f"engine.{request.kind}"
                )
                with self.tracer.shared_child(
                    flush_span, span_name, attributes={"solo": True}
                ):
                    if request.kind == "simulate":
                        policy = build_policy(
                            params["policy"],
                            params["policy_seed"],
                            params["priorities"],
                        )
                        payload = simulation_payload(
                            simulate_makespan(
                                request.task,
                                params["platform"],
                                policy,
                                params["offload_enabled"],
                            )
                        )
                    elif request.kind == "analyse":
                        payload = analysis_payload(
                            analyse_many(
                                [request.task],
                                cores=params["cores"],
                                include_naive=params["include_naive"],
                            )[0]
                        )
                    else:
                        payload = makespan_payload(
                            minimum_makespans_many(
                                [request.task],
                                cores=params["cores"],
                                accelerators=params["accelerators"],
                                method=MakespanMethod(params["method"]),
                                time_limit=params["time_limit"],
                                budget=self._oracle_budget,
                                breaker=self._oracle_breaker,
                            )[0]
                        )
                self._count_engine_call(1, solo=True)
                self._finish(request, payload)
            except BaseException as error:  # noqa: BLE001 - this request only
                self._abort(request, error)

    def _count_engine_call(self, cells: int, solo: bool = False) -> None:
        self._engine_batches.inc()
        self._evaluated_cells.inc(cells)
        if solo:
            self._solo_evaluations.inc()

    def _record_kernel_stats(self, collector, span) -> None:
        """Feed one engine call's kernel batches to /metrics and its span.

        Both views read the identical :class:`KernelBatchStats` records, so
        the ``repro_kernel_*`` rows and the engine-span ``kernel``
        attributes reconcile by construction.
        """
        for batch_stats in collector.batches:
            self._kernel_steps.inc(batch_stats.steps, engine=batch_stats.engine)
            self._kernel_events.inc(
                batch_stats.events, engine=batch_stats.engine
            )
            self._kernel_occupancy.observe(
                batch_stats.occupancy, engine=batch_stats.engine
            )
        merged = collector.merged()
        if merged is not None and span:
            span.set("kernel", merged)

    #: A grid call may evaluate at most this factor more cells than were
    #: actually requested before the group falls back to per-policy /
    #: per-platform sub-grids (which are dense by construction).
    _GRID_WASTE_LIMIT = 2.0

    def _run_simulation_group(
        self, requests: list[BatchRequest], flush_span=NULL_SPAN
    ) -> None:
        params = requests[0].params
        offload_enabled = params["offload_enabled"]
        if params["solo"]:
            # Stochastic policies: fresh instance per request, one cell per
            # evaluation -- batch composition must not influence the draws.
            with self.tracer.shared_child(
                flush_span,
                "engine.simulate",
                attributes={"engine": "dense", "solo": True,
                            "lanes": len(requests)},
            ):
                for request in requests:
                    spec = request.params
                    policy = build_policy(
                        spec["policy"], spec["policy_seed"], spec["priorities"]
                    )
                    value = simulate_makespan(
                        request.task, spec["platform"], policy, offload_enabled
                    )
                    self._count_engine_call(1, solo=True)
                    self._sim_engines.inc(engine="dense")
                    self._finish(request, simulation_payload(value))
            return
        # Try the full task x platform x policy grid of the flush first:
        # an ablation-shaped burst (every task at every host size under
        # every policy) forms an exactly dense 3-axis grid and becomes one
        # ``simulate_many`` call.  When the combined grid would waste more
        # cells than it coalesces, fall back to per-policy sub-groups
        # (each re-checked against the per-platform waste limit).
        by_policy: dict[str, list[BatchRequest]] = {}
        for request in requests:
            by_policy.setdefault(request.params["policy_fp"], []).append(
                request
            )
        if len(by_policy) > 1:
            tasks, platforms, policies, cells = self._assemble_grid(requests)
            total = len(tasks) * len(platforms) * len(policies)
            if total <= self._GRID_WASTE_LIMIT * len(requests):
                self._run_simulation_grid(
                    tasks, platforms, policies, requests, cells, flush_span
                )
                return
        for subset in by_policy.values():
            self._run_policy_group(subset, flush_span)

    @staticmethod
    def _assemble_grid(
        requests: list[BatchRequest],
    ) -> tuple[list, list, list, list]:
        """Dedupe the flush into task rows x platform cols x policy slabs.

        Requests are unique by fingerprint (in-flight dedupe), so every
        ``(task, platform, policy)`` cell appears at most once.
        """
        tasks: list[DagTask] = []
        task_rows: dict[str, int] = {}
        platforms: list[Platform] = []
        platform_cols: dict[Platform, int] = {}
        policies: list[SchedulingPolicy] = []
        policy_slabs: dict[str, int] = {}
        cells: list[tuple[BatchRequest, int, int, int]] = []
        for request in requests:
            spec = request.params
            row = task_rows.get(spec["task_fp"])
            if row is None:
                row = task_rows[spec["task_fp"]] = len(tasks)
                tasks.append(request.task)
            col = platform_cols.get(spec["platform"])
            if col is None:
                col = platform_cols[spec["platform"]] = len(platforms)
                platforms.append(spec["platform"])
            slab = policy_slabs.get(spec["policy_fp"])
            if slab is None:
                slab = policy_slabs[spec["policy_fp"]] = len(policies)
                policies.append(
                    build_policy(
                        spec["policy"], spec["policy_seed"], spec["priorities"]
                    )
                )
            cells.append((request, row, col, slab))
        return tasks, platforms, policies, cells

    def _run_policy_group(
        self, requests: list[BatchRequest], flush_span=NULL_SPAN
    ) -> None:
        """One policy's requests: task x platform grid, waste-checked."""
        tasks, platforms, policies, cells = self._assemble_grid(requests)
        if len(tasks) * len(platforms) > self._GRID_WASTE_LIMIT * len(requests):
            # Sparse grid: evaluating it would waste more cells than it
            # coalesces.  Split by platform and re-assemble each subset --
            # the per-platform sub-grids are dense by construction, and
            # reusing _assemble_grid keeps the task-row dedupe (a task
            # requested under two platforms lands in two subsets but must
            # never occupy two rows of one) instead of hand-building a
            # row-per-request mapping that silently assumed uniqueness.
            by_platform: dict[Platform, list[BatchRequest]] = {}
            for request, _, _, _ in cells:
                by_platform.setdefault(request.params["platform"], []).append(
                    request
                )
            for subset in by_platform.values():
                sub = self._assemble_grid(subset)
                self._run_simulation_grid(
                    sub[0], sub[1], sub[2], subset, sub[3], flush_span
                )
            return
        self._run_simulation_grid(
            tasks, platforms, policies, requests, cells, flush_span
        )

    def _run_simulation_grid(
        self,
        tasks: list[DagTask],
        platforms: list[Platform],
        policies: list[SchedulingPolicy],
        requests: list[BatchRequest],
        cells: list[tuple[BatchRequest, int, int, int]],
        flush_span=NULL_SPAN,
    ) -> None:
        params = requests[0].params
        # Every (task, platform, policy) cell is one lane of the batched
        # kernel (the grid executor grew the policy axis in PR 8), so the
        # dense-vs-lockstep crossover must count the policy axis too: an
        # ablation-shaped burst (1 task x 1 platform x 7 policies) is a
        # 7-lane batch, not a 1-lane one.
        lanes = len(tasks) * len(platforms) * len(policies)
        engine = "auto" if lanes >= self.vector_threshold else "dense"
        with self.tracer.shared_child(
            flush_span, "engine.simulate"
        ) as engine_span:
            with collect_kernel_stats() as kstats:
                grid = simulate_many(
                    tasks,
                    platforms,
                    policies,
                    offload_enabled=params["offload_enabled"],
                    jobs=self._jobs,
                    engine=engine,
                )
            engine_span.set("engine", resolve_engine(engine))
            engine_span.set("lanes", lanes)
            engine_span.set("requests", len(requests))
            self._record_kernel_stats(kstats, engine_span)
        self._count_engine_call(lanes)
        self._sim_engines.inc(engine=resolve_engine(engine))
        for request, row, col, slab in cells:
            self._finish(request, simulation_payload(grid[row, col, slab]))

    def _evaluate_workload(self, params: dict) -> dict:
        """One workload request end to end (build, couple, fold metrics)."""
        instances = build_workload(
            params["streams"], params["horizon"], jobs=self._jobs
        )
        policy = build_policy(params["policy"], params["policy_seed"], None)
        result = simulate_workload(
            instances,
            params["platform"],
            policy,
            offload_enabled=params["offload_enabled"],
            backend="auto",
        )
        return workload_payload(result)

    def _run_workload_group(
        self, requests: list[BatchRequest], flush_span=NULL_SPAN
    ) -> None:
        """Workload requests: one coupled simulation per request.

        Each request is already a whole multi-instance batch for the
        coupled engine -- its instances *are* the lanes -- so there is
        nothing further to coalesce across requests.
        """
        for request in requests:
            if request.resolved:
                continue
            with self.tracer.shared_child(
                flush_span, "workload.simulate"
            ) as engine_span:
                with collect_kernel_stats() as kstats:
                    payload = self._evaluate_workload(request.params)
                engine_span.set("engine", "lockstep")
                engine_span.set("instances", payload["instances"])
                self._record_kernel_stats(kstats, engine_span)
            self._count_engine_call(max(1, payload["instances"]))
            self._sim_engines.inc(engine="lockstep")
            self._finish(request, payload)

    def _run_analysis_group(
        self, requests: list[BatchRequest], flush_span=NULL_SPAN
    ) -> None:
        params = requests[0].params
        with self.tracer.shared_child(
            flush_span,
            "engine.analyse",
            attributes={"requests": len(requests)},
        ):
            analyses = analyse_many(
                [request.task for request in requests],
                cores=params["cores"],
                include_naive=params["include_naive"],
                jobs=self._jobs,
            )
        self._count_engine_call(len(requests))
        for request, analysis in zip(requests, analyses):
            self._finish(request, analysis_payload(analysis))

    def _run_makespan_group(
        self, requests: list[BatchRequest], flush_span=NULL_SPAN
    ) -> None:
        params = requests[0].params
        with self.tracer.shared_child(
            flush_span,
            "oracle.solve",
            attributes={
                "method": params["method"],
                "requests": len(requests),
            },
        ) as oracle_span:
            results = minimum_makespans_many(
                [request.task for request in requests],
                cores=params["cores"],
                accelerators=params["accelerators"],
                method=MakespanMethod(params["method"]),
                time_limit=params["time_limit"],
                jobs=self._jobs,
                budget=self._oracle_budget,
                breaker=self._oracle_breaker,
            )
            degraded = sum(1 for result in results if result.degraded)
            if degraded:
                oracle_span.set("degraded", degraded)
        self._count_engine_call(len(requests))
        for request, result in zip(requests, results):
            self._finish(request, makespan_payload(result))
