"""Request tracing: span trees, shared flush spans, tail-sampled ring.

The PR 7 metrics layer answers "how is the service doing" in aggregate;
this module answers "*why was this request slow*".  Every traced request
owns a trace id and a tree of monotonic-clock spans::

    http.request
      facade.submit
        cache.lookup
        batcher.queue          (enqueue -> flush pickup)
        batcher.flush          (shared: one span serves the whole batch)
          engine.simulate      (chosen engine, lanes, kernel step profile)
          oracle.solve
          workload.simulate

The structurally interesting part is **fan-in**: micro-batching coalesces
many requests into one flush, so a ``batcher.flush`` span (and the engine
spans beneath it) is *one shared node linked from every member trace* --
each member records the link with its own ``batcher.queue`` span as the
local parent, so every trace still renders as a tree while the flush work
is attributed once, identically, to all members.  In-flight-dedupe joiners
likewise link the leader's trace id instead of fabricating duplicate
engine spans.  This is the latency-attribution counterpart of the
batched==sequential bit-identity contract: the payload a member receives
is indistinguishable from a solo run, and its trace says precisely which
shared work it waited on.

Completed traces land in a thread-safe, **byte-capped ring** with
tail-based sampling: error, degraded and slow-percentile traces are always
kept; the rest are sampled by a deterministic hash of the trace id
(``sample=1.0`` keeps everything, the default).  Ring listings and full
trees are served on ``GET /traces`` / ``GET /traces/<id>``, and every
trace exports to Chrome trace-event JSON (``?format=chrome``) loadable in
Perfetto.

Everything is stdlib-only, and the disabled path is near-free: with
tracing off (or outside a request) every hook degrades to a single
context-var read returning a no-op span -- the same disarmed-cheapness
contract the PR 6 fault points and the kernel-stats collector follow
(benchmarked in ``benchmarks/bench_tracing.py``).
"""

from __future__ import annotations

import itertools
import json
import logging
import re
import sys
import threading
import time
import uuid
import zlib
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "TRACE_HEADER",
    "JsonLogFormatter",
    "NULL_SPAN",
    "RequestTraceContext",
    "Span",
    "Trace",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "render_trace_tree",
]

#: Request/response header carrying the trace id end to end.
TRACE_HEADER = "X-Repro-Trace-Id"

_VALID_TRACE_ID = re.compile(r"^[A-Za-z0-9_-]{4,64}$")

_current_trace: ContextVar[Optional["Trace"]] = ContextVar(
    "repro_current_trace", default=None
)
_current_span: ContextVar[Optional["Span"]] = ContextVar(
    "repro_current_span", default=None
)

#: Process-wide span id counter (``itertools.count`` is atomic in CPython).
_SPAN_IDS = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def coerce_trace_id(value: Optional[str]) -> str:
    """A usable trace id: the caller's if well-formed, else a fresh one."""
    if value and _VALID_TRACE_ID.match(value):
        return value
    return new_trace_id()


def current_trace() -> Optional["Trace"]:
    """The trace active in this context (``None`` outside a request)."""
    return _current_trace.get()


def current_trace_id() -> Optional[str]:
    trace = _current_trace.get()
    return trace.trace_id if trace is not None else None


class _NullSpan:
    """No-op span returned by every hook when tracing is off."""

    __slots__ = ()
    span_id = None
    name = "null"

    def set(self, key: str, value: Any) -> None:
        pass

    def set_error(self) -> None:
        pass

    def finish(self) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One timed node of a trace tree (monotonic clock, microsecond-ish)."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "error",
        "children",
    )

    def __init__(self, name: str, parent_id: Optional[str] = None) -> None:
        self.name = name
        self.span_id = f"s{next(_SPAN_IDS)}"
        self.parent_id = parent_id
        self.start = time.monotonic()
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.error = False
        #: Shared-subtree children (spans attached directly, outside any
        #: single trace -- the flush span carries its engine spans here).
        self.children: Optional[List["Span"]] = None

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_error(self) -> None:
        self.error = True

    def finish(self) -> None:
        if self.end is None:
            self.end = time.monotonic()

    def attach(self, child: "Span") -> None:
        """Attach ``child`` as a shared-subtree child of this span."""
        if self.children is None:
            self.children = []
        child.parent_id = self.span_id
        self.children.append(child)

    def __bool__(self) -> bool:
        return True


class RequestTraceContext:
    """The trace baggage a :class:`~repro.service.batching.BatchRequest` carries.

    Bridges the thread hop: the submitter opens the ``batcher.queue`` span
    on the request thread; the flush (batcher thread) calls
    :meth:`join_flush` to finish it and link the shared flush span into
    the member's trace with the queue span as local parent.
    """

    __slots__ = ("trace", "queue_span")

    def __init__(self, trace: "Trace", queue_span: "Span") -> None:
        self.trace = trace
        self.queue_span = queue_span

    def join_flush(self, flush_span: "Span") -> None:
        self.queue_span.finish()
        self.trace.link_span(
            flush_span, local_parent=self.queue_span.span_id, kind="flush"
        )


class Trace:
    """A request's span tree plus links to shared spans and other traces."""

    __slots__ = (
        "trace_id",
        "name",
        "root",
        "spans",
        "links",
        "start_wall",
        "degraded",
        "error",
        "finished",
        "_lock",
    )

    def __init__(self, name: str, trace_id: str) -> None:
        self.trace_id = trace_id
        self.name = name
        self.root = Span(name)
        self.spans: List[Span] = [self.root]
        #: Link records: ``{"span_id", "local_parent", "kind"}`` for shared
        #: spans, ``{"trace_id", "kind"}`` for trace-to-trace links.
        self.links: List[Dict[str, Any]] = []
        self.start_wall = time.time()
        self.degraded = False
        self.error = False
        self.finished = False
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            if not self.finished:
                self.spans.append(span)

    def link_span(self, span: Span, *, local_parent: str, kind: str) -> None:
        """Link a shared span (e.g. the batch flush) into this trace.

        The shared span keeps its own identity; ``local_parent`` names the
        span of *this* trace it hangs under when the tree is rendered.
        No-op once the trace is finished (a late flush cannot resurrect an
        already-exported trace).
        """
        with self._lock:
            if self.finished:
                return
            self.spans.append(span)
            self.links.append(
                {
                    "span_id": span.span_id,
                    "local_parent": local_parent,
                    "kind": kind,
                }
            )

    def link_trace(self, trace_id: str, *, kind: str) -> None:
        with self._lock:
            if not self.finished:
                self.links.append({"trace_id": trace_id, "kind": kind})


def _span_payload(
    span: Span,
    t0: float,
    now: float,
    shared: bool,
    parent_override: Optional[str] = None,
) -> Dict[str, Any]:
    end = span.end if span.end is not None else now
    doc: Dict[str, Any] = {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": parent_override or span.parent_id,
        "start_ms": (span.start - t0) * 1e3,
        "duration_ms": max(end - span.start, 0.0) * 1e3,
        "attributes": dict(span.attributes),
    }
    if span.error:
        doc["error"] = True
    if shared:
        doc["shared"] = True
    if span.end is None:
        doc["incomplete"] = True
    return doc


def _trace_payload(trace: Trace) -> Dict[str, Any]:
    """Serialise a finished trace: its spans plus every linked shared subtree."""
    now = time.monotonic()
    t0 = trace.root.start
    local_parent = {
        link["span_id"]: link["local_parent"]
        for link in trace.links
        if "span_id" in link
    }
    shared_ids = set(local_parent)
    spans: List[Dict[str, Any]] = []
    seen: set = set()

    def emit(span: Span, shared: bool) -> None:
        if span.span_id in seen:
            return
        seen.add(span.span_id)
        spans.append(
            _span_payload(
                span, t0, now, shared, local_parent.get(span.span_id)
            )
        )
        for child in span.children or ():
            emit(child, True)

    for span in trace.spans:
        emit(span, span.span_id in shared_ids)
    root = trace.root
    duration_ms = ((root.end if root.end is not None else now) - t0) * 1e3
    return {
        "trace_id": trace.trace_id,
        "name": trace.name,
        "start_unix": trace.start_wall,
        "duration_ms": duration_ms,
        "error": trace.error,
        "degraded": trace.degraded,
        "spans": spans,
        "links": trace.links,
    }


def chrome_trace(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Chrome trace-event JSON for one trace payload (Perfetto-loadable).

    Request-local spans render on one track, shared batcher/engine spans on
    another; timestamps are absolute microseconds anchored at the trace's
    wall-clock start so multiple exported traces line up.
    """
    base_us = payload["start_unix"] * 1e6
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": f"request {payload['trace_id'][:8]}"},
        },
        {
            "ph": "M",
            "pid": 1,
            "tid": 2,
            "name": "thread_name",
            "args": {"name": "batcher (shared)"},
        },
    ]
    for span in payload["spans"]:
        args = dict(span["attributes"])
        args["span_id"] = span["span_id"]
        if span.get("error"):
            args["error"] = True
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": base_us + span["start_ms"] * 1e3,
                "dur": span["duration_ms"] * 1e3,
                "pid": 1,
                "tid": 2 if span.get("shared") else 1,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": payload["trace_id"]},
    }


def _attr_text(attributes: Dict[str, Any]) -> str:
    """Compact ``k=v`` rendering of span attributes for the tree view."""
    parts = []
    for key, value in attributes.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:g}")
        elif isinstance(value, (dict, list)):
            parts.append(f"{key}={json.dumps(value, default=str)}")
        else:
            parts.append(f"{key}={value}")
    return "  ".join(parts)


def render_trace_tree(payload: Dict[str, Any]) -> str:
    """ASCII span tree of one trace payload with per-stage percentages.

    Percentages are relative to the root span, so a stage's share of the
    observed request latency reads off directly.  Shared (batch-scoped)
    spans are marked ``[shared]``: their time was spent once for the whole
    batch this request rode in.
    """
    spans = payload["spans"]
    by_parent: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent_id"), []).append(span)
    for siblings in by_parent.values():
        siblings.sort(key=lambda entry: entry["start_ms"])
    total = payload["duration_ms"]
    header = (
        f"trace {payload['trace_id']}  {payload['name']}  {total:.2f} ms"
    )
    if payload.get("error"):
        header += "  [ERROR]"
    if payload.get("degraded"):
        header += "  [DEGRADED]"
    lines = [header]
    emitted = set()

    def walk(span: Dict[str, Any], depth: int) -> None:
        emitted.add(span["span_id"])
        pct = (span["duration_ms"] / total * 100.0) if total > 0 else 0.0
        name = "  " * depth + span["name"]
        flags = ""
        if span.get("shared"):
            flags += " [shared]"
        if span.get("error"):
            flags += " [error]"
        if span.get("incomplete"):
            flags += " [incomplete]"
        attrs = _attr_text(span.get("attributes", {}))
        lines.append(
            f"  {name:<34} {span['duration_ms']:9.2f} ms  {pct:5.1f}%"
            f"{flags}" + (f"  {attrs}" if attrs else "")
        )
        for child in by_parent.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    for span in spans:  # orphans (defensive: never expected)
        if span["span_id"] not in emitted:
            walk(span, 0)
    for link in payload.get("links", []):
        if "trace_id" in link:
            lines.append(f"  -> linked trace {link['trace_id']} ({link['kind']})")
    return "\n".join(lines)


class Tracer:
    """Trace factory + tail-sampled, byte-capped ring of finished traces.

    Parameters
    ----------
    enabled:
        ``False`` turns every hook into a no-op returning :data:`NULL_SPAN`
        (the overhead benchmarked by ``benchmarks/bench_tracing.py``).
    sample:
        Probability of keeping a *normal* finished trace, decided by a
        deterministic hash of the trace id (tail-based: the decision is
        made after the outcome is known).  Error, degraded and slow traces
        are always kept regardless.
    ring_bytes:
        Byte cap of the ring (serialized-payload bytes); oldest traces are
        evicted first.  A single trace larger than the whole cap is
        dropped, so the cap is a hard invariant.
    slow_percentile:
        A finished trace whose duration is at or above this percentile of
        the recent-duration window counts as slow (always kept).
    """

    def __init__(
        self,
        enabled: bool = True,
        sample: float = 1.0,
        ring_bytes: int = 4 << 20,
        slow_percentile: float = 0.95,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if ring_bytes < 0:
            raise ValueError(f"ring_bytes must be >= 0, got {ring_bytes}")
        self.enabled = bool(enabled)
        self.sample = float(sample)
        self.ring_bytes = int(ring_bytes)
        self.slow_percentile = float(slow_percentile)
        self._lock = threading.Lock()
        self._ring: deque = deque()  # (trace_id, payload, nbytes)
        self._by_id: Dict[str, Dict[str, Any]] = {}
        self._ring_total = 0
        self._durations: deque = deque(maxlen=512)
        self._slow_ms = float("inf")
        self.started = 0
        self.kept = 0
        self.sampled_out = 0
        self.evicted = 0

    # -- trace lifecycle -----------------------------------------------
    def start_trace(
        self,
        name: str,
        trace_id: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Optional[Trace]:
        """Begin a trace (``None`` when tracing is disabled)."""
        if not self.enabled:
            return None
        trace = Trace(name, coerce_trace_id(trace_id))
        if attributes:
            trace.root.attributes.update(attributes)
        with self._lock:
            self.started += 1
        return trace

    @contextmanager
    def activate(self, trace: Optional[Trace]) -> Iterator[Optional[Trace]]:
        """Make ``trace`` (and its root span) current for the block."""
        if trace is None:
            yield None
            return
        t_token = _current_trace.set(trace)
        s_token = _current_span.set(trace.root)
        try:
            yield trace
        finally:
            _current_span.reset(s_token)
            _current_trace.reset(t_token)

    def finish_trace(self, trace: Optional[Trace], *, error: bool = False) -> None:
        """Finish the root span, apply tail sampling, store in the ring."""
        if trace is None:
            return
        trace.root.finish()
        trace.error = trace.error or error or trace.root.error
        duration_ms = (trace.root.end - trace.root.start) * 1e3
        with trace._lock:
            trace.finished = True
        payload = _trace_payload(trace)
        keep = (
            trace.error
            or trace.degraded
            or self._is_slow(duration_ms)
            or self._sampled_in(trace.trace_id)
        )
        with self._lock:
            self._durations.append(duration_ms)
            if len(self._durations) >= 32 and (len(self._durations) % 16) == 0:
                window = sorted(self._durations)
                index = min(
                    int(len(window) * self.slow_percentile), len(window) - 1
                )
                self._slow_ms = window[index]
            if not keep:
                self.sampled_out += 1
                return
            nbytes = len(
                json.dumps(payload, separators=(",", ":"), default=str)
            )
            if nbytes > self.ring_bytes:
                self.sampled_out += 1
                return
            while self._ring and self._ring_total + nbytes > self.ring_bytes:
                old_id, _, old_bytes = self._ring.popleft()
                self._ring_total -= old_bytes
                self._by_id.pop(old_id, None)
                self.evicted += 1
            self._by_id.pop(trace.trace_id, None)  # id reuse: last write wins
            self._ring.append((trace.trace_id, payload, nbytes))
            self._by_id[trace.trace_id] = payload
            self._ring_total += nbytes
            self.kept += 1

    def _is_slow(self, duration_ms: float) -> bool:
        return duration_ms >= self._slow_ms

    def _sampled_in(self, trace_id: str) -> bool:
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        bucket = zlib.crc32(trace_id.encode("utf-8", "replace")) / 0xFFFFFFFF
        return bucket < self.sample

    # -- span helpers ---------------------------------------------------
    @contextmanager
    def span(
        self, name: str, attributes: Optional[Dict[str, Any]] = None
    ) -> Iterator[Any]:
        """A child span of the current span (no-op outside a trace)."""
        trace = _current_trace.get()
        if trace is None or not self.enabled:
            yield NULL_SPAN
            return
        parent = _current_span.get()
        span = Span(name, parent.span_id if parent is not None else None)
        if attributes:
            span.attributes.update(attributes)
        trace.add(span)
        token = _current_span.set(span)
        try:
            yield span
        except BaseException:
            span.set_error()
            raise
        finally:
            span.finish()
            _current_span.reset(token)

    def start_span(self, name: str) -> Any:
        """An *unclosed* child span of the current span (caller finishes it).

        Used for spans whose end is observed on another thread -- e.g.
        ``batcher.queue`` starts at enqueue on the request thread and is
        finished by the flush on the batcher thread.
        """
        trace = _current_trace.get()
        if trace is None or not self.enabled:
            return NULL_SPAN
        parent = _current_span.get()
        span = Span(name, parent.span_id if parent is not None else None)
        trace.add(span)
        return span

    def new_shared_span(self, name: str) -> Any:
        """A free-floating span, linked into member traces by the caller."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name)

    @contextmanager
    def shared_child(
        self, parent: Any, name: str, attributes: Optional[Dict[str, Any]] = None
    ) -> Iterator[Any]:
        """A timed child attached to a shared span's subtree."""
        if not self.enabled or parent is NULL_SPAN or parent is None:
            yield NULL_SPAN
            return
        span = Span(name)
        if attributes:
            span.attributes.update(attributes)
        parent.attach(span)
        try:
            yield span
        except BaseException:
            span.set_error()
            raise
        finally:
            span.finish()

    # -- ring access ----------------------------------------------------
    def list_traces(
        self,
        limit: int = 50,
        slow: bool = False,
        errors: bool = False,
    ) -> List[Dict[str, Any]]:
        """Newest-first ring summaries, optionally filtered."""
        with self._lock:
            entries = [payload for _, payload, _ in reversed(self._ring)]
            slow_ms = self._slow_ms
        out = []
        for payload in entries:
            if errors and not (payload["error"] or payload["degraded"]):
                continue
            if slow and payload["duration_ms"] < slow_ms:
                continue
            out.append(
                {
                    "trace_id": payload["trace_id"],
                    "name": payload["name"],
                    "start_unix": payload["start_unix"],
                    "duration_ms": payload["duration_ms"],
                    "error": payload["error"],
                    "degraded": payload["degraded"],
                    "spans": len(payload["spans"]),
                }
            )
            if len(out) >= limit:
                break
        return out

    def get_trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._by_id.get(trace_id)

    def ring_stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "sample": self.sample,
                "ring_bytes": self._ring_total,
                "ring_capacity_bytes": self.ring_bytes,
                "ring_traces": len(self._ring),
                "started": self.started,
                "kept": self.kept,
                "sampled_out": self.sampled_out,
                "evicted": self.evicted,
                "slow_threshold_ms": (
                    None if self._slow_ms == float("inf") else self._slow_ms
                ),
            }


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
class JsonLogFormatter(logging.Formatter):
    """One JSON object per record, carrying the active trace id."""

    def format(self, record: logging.LogRecord) -> str:
        doc: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        if trace_id:
            doc["trace_id"] = trace_id
        data = getattr(record, "data", None)
        if isinstance(data, dict):
            doc.update(data)
        if record.exc_info:
            doc["exception"] = self.formatException(record.exc_info)
        return json.dumps(doc, separators=(",", ":"), default=str)


def configure_logging(level: str = "warning", stream: Any = None) -> logging.Logger:
    """Point the ``repro.service`` logger tree at a JSON stream handler.

    Idempotent: reconfiguring replaces the previous handler.  Returns the
    configured root-of-tree logger.
    """
    logger = logging.getLogger("repro.service")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(numeric)
    logger.propagate = False
    return logger
