"""Random DAG task generation (the paper's Section 5.1 experimental setup).

* :mod:`repro.generator.config` -- generator and offload parameter objects;
* :mod:`repro.generator.random_dag` -- the recursive fork/join (series-
  parallel) structure generator used by the paper;
* :mod:`repro.generator.layered` -- a layered random DAG generator used for
  ablations;
* :mod:`repro.generator.offload` -- offloaded-node selection and ``C_off``
  sizing;
* :mod:`repro.generator.presets` -- the paper's "small tasks" / "large tasks"
  workload presets;
* :mod:`repro.generator.sweep` -- batches of tasks per target ``C_off``
  fraction, as consumed by the experiment drivers;
* :mod:`repro.generator.arrivals` -- seeded arrival processes (periodic /
  sporadic / trace) for online multi-instance workloads.
"""

from .arrivals import (
    ArrivalProcess,
    PeriodicArrivals,
    SporadicArrivals,
    TraceArrivals,
    arrival_from_dict,
    arrival_to_dict,
)
from .config import GeneratorConfig, OffloadConfig
from .layered import LayeredConfig, LayeredDagGenerator, generate_layered_task
from .offload import (
    assign_offloaded_wcet,
    make_heterogeneous,
    pin_offloaded_fraction,
    select_offloaded_node,
)
from .presets import (
    CORE_COUNTS,
    LARGE_TASKS,
    LARGE_TASKS_FIG6,
    LARGE_TASKS_UPPER_RANGE,
    SMALL_TASKS,
    SMALL_TASKS_FIG7_M2,
    SMALL_TASKS_FIG7_M8,
    preset_by_name,
)
from .random_dag import DagStructureGenerator, generate_graph, generate_host_task
from .sweep import (
    SweepPoint,
    chunked_offload_fraction_sweep,
    default_fraction_grid,
    offload_fraction_sweep,
)

__all__ = [
    "ArrivalProcess",
    "PeriodicArrivals",
    "SporadicArrivals",
    "TraceArrivals",
    "arrival_from_dict",
    "arrival_to_dict",
    "GeneratorConfig",
    "OffloadConfig",
    "DagStructureGenerator",
    "generate_graph",
    "generate_host_task",
    "LayeredConfig",
    "LayeredDagGenerator",
    "generate_layered_task",
    "select_offloaded_node",
    "assign_offloaded_wcet",
    "pin_offloaded_fraction",
    "make_heterogeneous",
    "SweepPoint",
    "offload_fraction_sweep",
    "chunked_offload_fraction_sweep",
    "default_fraction_grid",
    "CORE_COUNTS",
    "SMALL_TASKS",
    "SMALL_TASKS_FIG7_M2",
    "SMALL_TASKS_FIG7_M8",
    "LARGE_TASKS",
    "LARGE_TASKS_FIG6",
    "LARGE_TASKS_UPPER_RANGE",
    "preset_by_name",
]
