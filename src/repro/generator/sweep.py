"""Parameter sweeps over the offloaded-workload fraction.

Every figure of the paper's evaluation varies the percentage of ``C_off``
over the task volume while keeping the structural distribution fixed, and
generates "100 DAGs for each target value of ``C_off``".  This module
provides that machinery:

* :class:`SweepPoint` -- one (fraction, tasks) pair;
* :func:`offload_fraction_sweep` -- generate a batch of heterogeneous tasks
  for every requested fraction, reusing the same structural draws across
  fractions (paired design) or drawing fresh structures per fraction
  (independent design).

The paired design -- the default -- mirrors how the original experiments
compare quantities "for the same DAG" while sweeping ``C_off``, and it
substantially reduces the sampling noise of the reproduced curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.task import DagTask
from ..parallel import parallel_map, spawn_seeds
from .config import GeneratorConfig, OffloadConfig
from .offload import pin_offloaded_fraction, select_offloaded_node
from .random_dag import DagStructureGenerator

__all__ = [
    "SweepPoint",
    "offload_fraction_sweep",
    "chunked_offload_fraction_sweep",
    "default_fraction_grid",
]


@dataclass
class SweepPoint:
    """All tasks generated for one target offloaded fraction.

    Attributes
    ----------
    fraction:
        The target value of ``C_off / vol(G)``.
    tasks:
        The heterogeneous tasks generated for this point, each with ``C_off``
        pinned so that its offloaded fraction equals ``fraction`` (up to the
        ``minimum_wcet`` floor for tiny fractions).
    """

    fraction: float
    tasks: list[DagTask] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tasks)

    def realised_fractions(self) -> list[float]:
        """The actually realised ``C_off / vol`` of every task of the point."""
        return [task.offloaded_fraction() for task in self.tasks]


def default_fraction_grid(
    start: float = 0.01, stop: float = 0.50, points: int = 12
) -> list[float]:
    """A geometric grid of offloaded fractions.

    The paper sweeps ``C_off`` from fractions of a percent up to 50-70 % of
    the volume and its x-axes are logarithmic-ish; a geometric grid captures
    the small-fraction region (where the crossovers happen) with enough
    resolution while keeping the number of points manageable.
    """
    if points < 2:
        return [start]
    grid = np.geomspace(start, stop, points)
    return [float(value) for value in grid]


def offload_fraction_sweep(
    fractions: Sequence[float] | Iterable[float],
    dags_per_point: int,
    generator_config: GeneratorConfig,
    offload_config: OffloadConfig = OffloadConfig(),
    rng: np.random.Generator | int | None = None,
    paired: bool = True,
) -> list[SweepPoint]:
    """Generate heterogeneous tasks for every target offloaded fraction.

    Parameters
    ----------
    fractions:
        Target values of ``C_off / vol(G)``.
    dags_per_point:
        Number of DAG tasks per fraction (the paper uses 100).
    generator_config:
        Structural parameters of the DAG generator.
    offload_config:
        Offloaded-node selection policy (``target_fraction`` is overridden by
        the sweep).
    rng:
        Seed or generator for reproducibility.
    paired:
        When ``True`` (default) the same ``dags_per_point`` structures -- and
        the same ``v_off`` selections -- are reused for every fraction, with
        only ``C_off`` re-pinned.  When ``False`` fresh structures are drawn
        for every fraction.

    Returns
    -------
    list[SweepPoint]
        One entry per requested fraction, in the given order.
    """
    rng = np.random.default_rng(rng)
    fraction_list = [float(value) for value in fractions]
    structure_generator = DagStructureGenerator(generator_config, rng)

    if paired:
        base_tasks = [
            select_offloaded_node(
                structure_generator.generate_task(name=f"tau_{index}"),
                offload_config,
                rng,
            )
            for index in range(dags_per_point)
        ]
        points = []
        for fraction in fraction_list:
            tasks = [
                pin_offloaded_fraction(task, fraction, offload_config.minimum_wcet)
                for task in base_tasks
            ]
            points.append(SweepPoint(fraction=fraction, tasks=tasks))
        return points

    points = []
    for fraction in fraction_list:
        tasks = []
        for index in range(dags_per_point):
            task = structure_generator.generate_task(name=f"tau_{fraction:g}_{index}")
            task = select_offloaded_node(task, offload_config, rng)
            task = pin_offloaded_fraction(task, fraction, offload_config.minimum_wcet)
            tasks.append(task)
        points.append(SweepPoint(fraction=fraction, tasks=tasks))
    return points


def _generate_chunk(
    args: tuple[int, int, int, GeneratorConfig, OffloadConfig]
) -> list[DagTask]:
    """Worker: generate one chunk of base tasks from its own child seed."""
    child_seed, count, start_index, generator_config, offload_config = args
    rng = np.random.default_rng(child_seed)
    structure_generator = DagStructureGenerator(generator_config, rng)
    return [
        select_offloaded_node(
            structure_generator.generate_task(name=f"tau_{start_index + index}"),
            offload_config,
            rng,
        )
        for index in range(count)
    ]


def chunked_offload_fraction_sweep(
    fractions: Sequence[float] | Iterable[float],
    dags_per_point: int,
    generator_config: GeneratorConfig,
    offload_config: OffloadConfig = OffloadConfig(),
    root_seed: int = 0,
    jobs: Optional[int] = None,
    chunk_size: int = 8,
) -> list[SweepPoint]:
    """Paired offload-fraction sweep with chunked (parallelisable) generation.

    The ``dags_per_point`` base structures are generated in fixed chunks of
    ``chunk_size`` tasks; every chunk draws from its own child seed derived
    via :func:`repro.parallel.spawn_seeds`, so the drawn ensemble depends
    only on ``(root_seed, dags_per_point, chunk_size, configs)`` -- never on
    the worker count.  ``jobs=N`` therefore produces *draw-identical*
    results to the serial path while parallelising the generation itself
    (the sequential-RNG :func:`offload_fraction_sweep` can only parallelise
    downstream evaluation).

    The fraction grid is then applied exactly like the paired design of
    :func:`offload_fraction_sweep`: the same structures and ``v_off``
    selections are reused for every fraction with only ``C_off`` re-pinned.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    fraction_list = [float(value) for value in fractions]
    chunk_counts = [
        min(chunk_size, dags_per_point - start)
        for start in range(0, dags_per_point, chunk_size)
    ]
    seeds = spawn_seeds(root_seed, len(chunk_counts))
    starts = [sum(chunk_counts[:index]) for index in range(len(chunk_counts))]
    chunks = parallel_map(
        _generate_chunk,
        [
            (seed, count, start, generator_config, offload_config)
            for seed, count, start in zip(seeds, chunk_counts, starts)
        ],
        jobs=jobs,
    )
    base_tasks = [task for chunk in chunks for task in chunk]

    points = []
    for fraction in fraction_list:
        tasks = [
            pin_offloaded_fraction(task, fraction, offload_config.minimum_wcet)
            for task in base_tasks
        ]
        points.append(SweepPoint(fraction=fraction, tasks=tasks))
    return points
