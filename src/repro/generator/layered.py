"""Layered (Erdős–Rényi style) random DAG generator.

The paper's generator produces nested fork/join (series-parallel) graphs.
Many related works (e.g. the conditional-DAG analyses of reference [12] and
the fixed-priority analysis of reference [18]) additionally evaluate on
*layered* random DAGs, where nodes are organised in layers and edges connect
earlier layers to later layers with a given probability.  This generator is
provided as an ablation: it produces graphs that are *not* series-parallel
(arbitrary fan-in/fan-out across layers), allowing the robustness of the
transformation and of Theorem 1 to be exercised on a structurally different
population.  The generated graphs still satisfy every system-model
assumption: single source, single sink, no transitive edges (a transitive
reduction is applied), acyclicity by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import GenerationError
from ..core.graph import DirectedAcyclicGraph
from ..core.task import DagTask

__all__ = ["LayeredConfig", "LayeredDagGenerator", "generate_layered_task"]


@dataclass(frozen=True)
class LayeredConfig:
    """Parameters of the layered DAG generator.

    Attributes
    ----------
    n_min, n_max:
        Node-count range of the generated DAG (dummy source/sink included).
    layers_min, layers_max:
        Number of layers the inner nodes are spread over.
    edge_probability:
        Probability of adding an edge between a node and each node of the
        next layer; at least one incoming and one outgoing edge per inner
        node is always guaranteed so the graph stays connected.
    c_min, c_max:
        Uniform integer WCET range.
    """

    n_min: int = 20
    n_max: int = 60
    layers_min: int = 3
    layers_max: int = 8
    edge_probability: float = 0.3
    c_min: int = 1
    c_max: int = 100

    def __post_init__(self) -> None:
        if self.n_min < 3 or self.n_max < self.n_min:
            raise GenerationError(
                f"invalid node-count range [{self.n_min}, {self.n_max}]"
            )
        if self.layers_min < 1 or self.layers_max < self.layers_min:
            raise GenerationError(
                f"invalid layer range [{self.layers_min}, {self.layers_max}]"
            )
        if not 0.0 <= self.edge_probability <= 1.0:
            raise GenerationError("edge_probability must lie in [0, 1]")
        if self.c_min < 0 or self.c_max < self.c_min:
            raise GenerationError(f"invalid WCET range [{self.c_min}, {self.c_max}]")


class LayeredDagGenerator:
    """Generator of layered random DAG tasks."""

    def __init__(
        self,
        config: LayeredConfig = LayeredConfig(),
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config
        self.rng = np.random.default_rng(rng)

    def generate_structure(self) -> DirectedAcyclicGraph:
        """Generate one layered DAG with a single source and sink."""
        config = self.config
        rng = self.rng
        total = int(rng.integers(config.n_min, config.n_max + 1))
        inner = max(1, total - 2)  # source and sink are added explicitly
        layer_count = int(
            rng.integers(config.layers_min, min(config.layers_max, inner) + 1)
        )

        graph = DirectedAcyclicGraph()
        graph.add_node("source", 0)
        graph.add_node("sink", 0)

        # Distribute the inner nodes over the layers (every layer non-empty).
        assignment = sorted(int(rng.integers(0, layer_count)) for _ in range(inner))
        layers: list[list[str]] = [[] for _ in range(layer_count)]
        for index, layer in enumerate(assignment):
            node_id = f"v{index + 1}"
            graph.add_node(node_id, 0)
            layers[layer].append(node_id)
        layers = [layer for layer in layers if layer]

        # Connect consecutive layers with the configured probability,
        # guaranteeing at least one predecessor and one successor per node.
        previous = ["source"]
        for layer in layers:
            for node in layer:
                predecessors = [
                    candidate
                    for candidate in previous
                    if rng.random() < config.edge_probability
                ]
                if not predecessors:
                    predecessors = [previous[int(rng.integers(0, len(previous)))]]
                for candidate in predecessors:
                    graph.add_edge(candidate, node)
            # Every node of the previous layer needs at least one successor.
            for candidate in previous:
                if not graph.successors(candidate):
                    target = layer[int(rng.integers(0, len(layer)))]
                    if not graph.has_edge(candidate, target):
                        graph.add_edge(candidate, target)
            previous = layer
        for node in previous:
            graph.add_edge(node, "sink")
        # Inner nodes with no successor (possible when a later layer skipped
        # them) are wired to the sink as well.
        for node in graph.nodes():
            if node != "sink" and not graph.successors(node):
                graph.add_edge(node, "sink")

        graph = graph.transitive_reduction()
        return graph

    def assign_wcets(self, graph: DirectedAcyclicGraph) -> None:
        """Draw a uniform integer WCET in ``[c_min, c_max]`` for inner nodes.

        The dummy source and sink keep a zero WCET, matching the system
        model's treatment of added dummy nodes.
        """
        for node in graph.nodes():
            if node in ("source", "sink"):
                continue
            graph.set_wcet(node, int(self.rng.integers(self.config.c_min, self.config.c_max + 1)))

    def generate_task(self, name: str = "tau") -> DagTask:
        """Generate a complete host-only layered task."""
        graph = self.generate_structure()
        self.assign_wcets(graph)
        return DagTask(graph=graph, offloaded_node=None, name=name)


def generate_layered_task(
    config: LayeredConfig = LayeredConfig(),
    rng: np.random.Generator | int | None = None,
    name: str = "tau",
) -> DagTask:
    """Convenience wrapper: one layered host-only task draw."""
    return LayeredDagGenerator(config, rng).generate_task(name)
