"""Named workload presets reproducing Section 5.1 of the paper.

Two classes of DAG tasks are used throughout the evaluation:

* **Small tasks** -- ``n <= 100`` nodes, ``n_par = 6``, ``maxdepth = 3``
  (longest possible path: 7 nodes).  Used for the comparison against the ILP
  solver, which cannot handle larger tasks.  Figure 7 further restricts the
  node count to ``n in [3, 20]`` for ``m = 2`` and ``n in [30, 60]`` for
  ``m = 8``.
* **Large tasks** -- ``n in [100, 400]`` nodes, ``n_par = 8``,
  ``maxdepth = 5`` (longest possible path: 11 nodes).  Figures 6, 8 and 9 use
  the ``n in [100, 250]`` sub-range (the paper notes similar trends for
  ``n in [250, 400]``).

Both presets use ``p_par = 0.5`` and WCETs uniform in ``[1, 100]``.
"""

from __future__ import annotations

from .config import GeneratorConfig

__all__ = [
    "SMALL_TASKS",
    "SMALL_TASKS_FIG7_M2",
    "SMALL_TASKS_FIG7_M8",
    "LARGE_TASKS",
    "LARGE_TASKS_FIG6",
    "LARGE_TASKS_UPPER_RANGE",
    "CORE_COUNTS",
    "preset_by_name",
]

#: Host core counts evaluated by every experiment of the paper.
CORE_COUNTS: tuple[int, ...] = (2, 4, 8, 16)

#: Small tasks (Section 5.1): n <= 100, n_par = 6, maxdepth = 3.
SMALL_TASKS = GeneratorConfig(
    p_par=0.5,
    n_par=6,
    max_depth=3,
    n_min=3,
    n_max=100,
    c_min=1,
    c_max=100,
)

#: Small tasks as used by Figure 7(a): m = 2 cores, n in [3, 20].
SMALL_TASKS_FIG7_M2 = SMALL_TASKS.with_node_range(3, 20)

#: Small tasks as used by Figure 7(b): m = 8 cores, n in [30, 60].
SMALL_TASKS_FIG7_M8 = SMALL_TASKS.with_node_range(30, 60)

#: Large tasks (Section 5.1): n in [100, 400], n_par = 8, maxdepth = 5.
LARGE_TASKS = GeneratorConfig(
    p_par=0.5,
    n_par=8,
    max_depth=5,
    n_min=100,
    n_max=400,
    c_min=1,
    c_max=100,
)

#: Large tasks restricted to n in [100, 250], the range shown in Figures 6,
#: 8 and 9.
LARGE_TASKS_FIG6 = LARGE_TASKS.with_node_range(100, 250)

#: Large tasks in the upper range n in [250, 400] ("similar trends have been
#: observed"), provided so the claim can be re-checked.
LARGE_TASKS_UPPER_RANGE = LARGE_TASKS.with_node_range(250, 400)

_PRESETS: dict[str, GeneratorConfig] = {
    "small": SMALL_TASKS,
    "small-fig7-m2": SMALL_TASKS_FIG7_M2,
    "small-fig7-m8": SMALL_TASKS_FIG7_M8,
    "large": LARGE_TASKS,
    "large-fig6": LARGE_TASKS_FIG6,
    "large-upper": LARGE_TASKS_UPPER_RANGE,
}


def preset_by_name(name: str) -> GeneratorConfig:
    """Look up a preset configuration by its short name.

    Valid names: ``small``, ``small-fig7-m2``, ``small-fig7-m8``, ``large``,
    ``large-fig6``, ``large-upper``.
    """
    try:
        return _PRESETS[name]
    except KeyError:
        valid = ", ".join(sorted(_PRESETS))
        raise KeyError(f"unknown preset {name!r}; valid presets: {valid}") from None
