"""Seeded arrival processes for online multi-instance workloads.

A :class:`JobStream <repro.simulation.workload.JobStream>` couples one DAG
task with an *arrival process* describing when new job instances of that
task are released.  Three models cover the standard real-time taxonomy:

* :class:`PeriodicArrivals` -- strictly periodic releases ``offset + k * T``,
  optionally perturbed by a per-release uniform jitter in ``[0, jitter)``;
* :class:`SporadicArrivals` -- consecutive releases separated by a uniform
  random gap in ``[min_gap, max_gap)`` (``min_gap`` is the classical minimum
  inter-arrival time of the sporadic task model);
* :class:`TraceArrivals` -- an explicit, replayable release-time list
  (measured traces, hand-built edge cases).

Draw-identity contract
----------------------
Random processes are **stateless**: every call to :meth:`release_times`
regenerates the same values from the stored seed, which is what makes
workload requests fingerprintable and cacheable by the service layer.
Generation is *chunked* exactly like the library's task generator: draw
``k`` of chunk ``c`` always comes from the child seed
``spawn_seeds(seed, c + 1)[c]``, never from a sequential stream, so a
parallel ``jobs=N`` generation is bit-identical to the serial one and the
test-suite asserts it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..parallel import parallel_map, spawn_seeds

__all__ = [
    "ArrivalProcess",
    "PeriodicArrivals",
    "SporadicArrivals",
    "TraceArrivals",
    "arrival_from_dict",
    "arrival_to_dict",
]

#: Releases generated per child seed.  Small enough that quick workloads
#: exercise several chunks (so the draw-identity contract is really tested),
#: large enough that chunking overhead is invisible.
ARRIVAL_CHUNK = 64


def _draw_chunk(args: tuple[int, int, int]) -> np.ndarray:
    """Uniform draws for one chunk (module-level: must pickle for jobs=N)."""
    seed, chunk, count = args
    child = spawn_seeds(seed, chunk + 1)[chunk]
    return np.random.default_rng(child).random(count)


def _chunked_uniform(
    seed: int, count: int, jobs: Optional[int] = None
) -> np.ndarray:
    """``count`` uniform [0, 1) draws, chunk ``c`` from child seed ``c``.

    The value of draw ``k`` depends only on ``(seed, k)`` -- not on ``count``
    (children of a :class:`~numpy.random.SeedSequence` are independent of how
    many siblings are spawned) and not on ``jobs``.
    """
    if count <= 0:
        return np.empty(0, dtype=np.float64)
    n_chunks = math.ceil(count / ARRIVAL_CHUNK)
    sizes = [
        min(ARRIVAL_CHUNK, count - chunk * ARRIVAL_CHUNK)
        for chunk in range(n_chunks)
    ]
    chunks = parallel_map(
        _draw_chunk,
        [(seed, chunk, size) for chunk, size in enumerate(sizes)],
        jobs=jobs,
    )
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


class ArrivalProcess:
    """Base protocol of an arrival process (see module docstring)."""

    kind: str = "arrivals"

    def release_times(
        self, horizon: float, jobs: Optional[int] = None
    ) -> np.ndarray:
        """Sorted float64 release times in ``[0, horizon)``.

        ``jobs`` parallelises the chunked draws without changing a single
        bit of the result; deterministic processes ignore it.
        """
        raise NotImplementedError

    def to_dict(self) -> dict:
        """Canonical JSON-style spec (wire format and fingerprint input)."""
        raise NotImplementedError


def _check_horizon(horizon: float) -> float:
    horizon = float(horizon)
    if not math.isfinite(horizon) or horizon < 0:
        raise ValueError(f"horizon must be finite and >= 0, got {horizon}")
    return horizon


@dataclass(frozen=True)
class PeriodicArrivals(ArrivalProcess):
    """Releases at ``offset + k * period (+ jitter_k)`` for ``k = 0, 1, ...``.

    ``jitter_k`` is uniform in ``[0, jitter)``, drawn per release from the
    stored seed; ``jitter=0`` (the default) is the strictly periodic model
    and consumes no randomness.  Releases pushed past the horizon by their
    jitter are dropped, mirroring the "release after horizon" rule of
    :func:`repro.simulation.workload.build_workload`.
    """

    period: float
    offset: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    kind = "periodic"

    def __post_init__(self) -> None:
        if not (math.isfinite(self.period) and self.period > 0):
            raise ValueError(f"period must be finite and > 0, got {self.period}")
        if not (math.isfinite(self.offset) and self.offset >= 0):
            raise ValueError(f"offset must be finite and >= 0, got {self.offset}")
        if not (math.isfinite(self.jitter) and self.jitter >= 0):
            raise ValueError(f"jitter must be finite and >= 0, got {self.jitter}")

    def release_times(
        self, horizon: float, jobs: Optional[int] = None
    ) -> np.ndarray:
        horizon = _check_horizon(horizon)
        if self.offset >= horizon:
            return np.empty(0, dtype=np.float64)
        count = math.ceil((horizon - self.offset) / self.period)
        base = self.offset + np.arange(count, dtype=np.float64) * self.period
        base = base[base < horizon]
        if self.jitter > 0 and base.size:
            base = base + self.jitter * _chunked_uniform(
                self.seed, base.size, jobs=jobs
            )
            base = np.sort(base[base < horizon])
        return base

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "period": float(self.period),
            "offset": float(self.offset),
            "jitter": float(self.jitter),
            "seed": int(self.seed),
        }


@dataclass(frozen=True)
class SporadicArrivals(ArrivalProcess):
    """Releases separated by uniform random gaps in ``[min_gap, max_gap)``.

    The first release happens at ``offset + gap_0``: a sporadic source that
    has *just* released (at the origin) and then honours its minimum
    inter-arrival time.  ``min_gap`` must be positive so any horizon is
    covered by finitely many draws.
    """

    min_gap: float
    max_gap: float
    offset: float = 0.0
    seed: int = 0

    kind = "sporadic"

    def __post_init__(self) -> None:
        if not (math.isfinite(self.min_gap) and self.min_gap > 0):
            raise ValueError(
                f"min_gap must be finite and > 0, got {self.min_gap}"
            )
        if not (math.isfinite(self.max_gap) and self.max_gap >= self.min_gap):
            raise ValueError(
                f"max_gap must be finite and >= min_gap, got {self.max_gap}"
            )
        if not (math.isfinite(self.offset) and self.offset >= 0):
            raise ValueError(f"offset must be finite and >= 0, got {self.offset}")

    def release_times(
        self, horizon: float, jobs: Optional[int] = None
    ) -> np.ndarray:
        horizon = _check_horizon(horizon)
        span = horizon - self.offset
        if span <= 0:
            return np.empty(0, dtype=np.float64)
        # Upper-bound the number of gaps that can fit before the horizon and
        # draw them all at once: gap k always comes from chunk k // CHUNK, so
        # the (deliberately generous) count never changes any draw.
        count = math.ceil(span / self.min_gap)
        draws = _chunked_uniform(self.seed, count, jobs=jobs)
        gaps = self.min_gap + (self.max_gap - self.min_gap) * draws
        releases = self.offset + np.cumsum(gaps)
        return releases[releases < horizon]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "min_gap": float(self.min_gap),
            "max_gap": float(self.max_gap),
            "offset": float(self.offset),
            "seed": int(self.seed),
        }


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """An explicit release-time trace, replayed verbatim (then sorted)."""

    times: tuple = field(default_factory=tuple)

    kind = "trace"

    def __init__(self, times: Union[Sequence[float], np.ndarray] = ()) -> None:
        values = tuple(sorted(float(value) for value in times))
        for value in values:
            if not math.isfinite(value) or value < 0:
                raise ValueError(
                    f"trace release times must be finite and >= 0, got {value}"
                )
        object.__setattr__(self, "times", values)

    def release_times(
        self, horizon: float, jobs: Optional[int] = None
    ) -> np.ndarray:
        horizon = _check_horizon(horizon)
        values = np.asarray(self.times, dtype=np.float64)
        return values[values < horizon]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "times": [float(value) for value in self.times]}


_ARRIVAL_KINDS: dict[str, type] = {
    PeriodicArrivals.kind: PeriodicArrivals,
    SporadicArrivals.kind: SporadicArrivals,
    TraceArrivals.kind: TraceArrivals,
}


def arrival_to_dict(process: ArrivalProcess) -> dict:
    """Canonical dict spec of ``process`` (inverse of :func:`arrival_from_dict`)."""
    return process.to_dict()


def arrival_from_dict(document: dict) -> ArrivalProcess:
    """Rebuild an arrival process from its canonical dict spec."""
    if not isinstance(document, dict):
        raise ValueError(f"arrival spec must be a dict, got {type(document).__name__}")
    spec = dict(document)
    kind = spec.pop("kind", None)
    cls = _ARRIVAL_KINDS.get(kind)
    if cls is None:
        valid = ", ".join(sorted(_ARRIVAL_KINDS))
        raise ValueError(f"unknown arrival kind {kind!r}; valid kinds: {valid}")
    if cls is TraceArrivals:
        return TraceArrivals(spec.get("times", ()))
    try:
        return cls(**spec)
    except TypeError as error:
        raise ValueError(f"malformed {kind!r} arrival spec: {error}") from None
