"""Configuration objects for the random DAG task generators.

The evaluation of the paper (Section 5.1) generates random DAG tasks "by
recursively expanding nodes either to terminal nodes or parallel sub-DAGs,
until a maximum recursion depth ``maxdepth`` is reached".  The parameters of
that process are grouped in :class:`GeneratorConfig`; the two workload
classes used by the paper -- *small tasks* (for the ILP comparison) and
*large tasks* -- are provided as ready-made presets in
:mod:`repro.generator.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.exceptions import GenerationError

__all__ = ["GeneratorConfig", "OffloadConfig"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the recursive-expansion DAG generator (Section 5.1).

    Attributes
    ----------
    p_par:
        Probability that a node expands into a parallel sub-DAG rather than a
        terminal node.  The paper uses ``0.5``.
    n_par:
        Maximum number of branches of a parallel sub-DAG.  The paper uses
        ``6`` for small tasks and ``8`` for large tasks.
    max_depth:
        Maximum recursion depth.  It also determines the longest possible
        path of the generated DAG (``2 * max_depth + 1`` nodes): ``3`` gives
        a longest path of 7 nodes, ``5`` gives 11, exactly as in the paper.
    n_min, n_max:
        Minimum and maximum number of nodes; DAGs outside the range are
        rejected and re-drawn.
    c_min, c_max:
        Bounds of the uniform integer WCET distribution of host nodes; the
        paper uses ``[1, 100]``.
    force_root_expansion:
        Always expand the root node into a parallel sub-DAG (instead of
        possibly producing a single-node DAG), which makes rejection sampling
        of the ``[n_min, n_max]`` constraint far more efficient.  The
        single-node DAGs it suppresses would be rejected anyway for every
        configuration used in the paper (``n_min >= 3``).
    max_attempts:
        Number of rejection-sampling attempts before giving up.
    """

    p_par: float = 0.5
    n_par: int = 8
    max_depth: int = 5
    n_min: int = 100
    n_max: int = 400
    c_min: int = 1
    c_max: int = 100
    force_root_expansion: bool = True
    max_attempts: int = 2000

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_par <= 1.0:
            raise GenerationError(f"p_par must be within [0, 1], got {self.p_par}")
        if self.n_par < 2:
            raise GenerationError(f"n_par must be >= 2, got {self.n_par}")
        if self.max_depth < 1:
            raise GenerationError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.n_min < 1 or self.n_max < self.n_min:
            raise GenerationError(
                f"invalid node-count range [{self.n_min}, {self.n_max}]"
            )
        if self.c_min < 0 or self.c_max < self.c_min:
            raise GenerationError(
                f"invalid WCET range [{self.c_min}, {self.c_max}]"
            )
        if self.max_attempts < 1:
            raise GenerationError("max_attempts must be >= 1")

    @property
    def longest_possible_path(self) -> int:
        """Longest possible path in nodes: ``2 * max_depth + 1``.

        Each level of recursion adds a fork and a join node around the
        longest branch; the innermost level is a single terminal node.
        """
        return 2 * self.max_depth + 1

    def with_node_range(self, n_min: int, n_max: int) -> "GeneratorConfig":
        """Return a copy with a different ``[n_min, n_max]`` node range."""
        return replace(self, n_min=n_min, n_max=n_max)


@dataclass(frozen=True)
class OffloadConfig:
    """How to select the offloaded node and assign its WCET ``C_off``.

    The paper randomly selects ``v_off`` among all nodes; ``C_off`` is either
    drawn uniformly from ``[1, C_off_max]`` where ``C_off_max`` is a
    percentage of the DAG volume (up to 60 %), or pinned to an exact target
    fraction of the volume -- the experiments sweep that target fraction.

    Attributes
    ----------
    target_fraction:
        When set, ``C_off`` is chosen so that ``C_off / vol(G)`` equals this
        value (``vol(G)`` *includes* ``C_off``, as in the paper's figures).
    max_fraction:
        When ``target_fraction`` is ``None``, ``C_off`` is drawn uniformly
        from ``[1, max_fraction * vol(G_host) / (1 - max_fraction)]``.
    exclude_source_sink:
        Do not pick the DAG source or sink as the offloaded node.  Disabled
        by default to match the paper ("randomly select v_off among all the
        nodes").
    minimum_wcet:
        Lower bound for ``C_off`` (the paper draws it from ``[1, ...]``).
    """

    target_fraction: Optional[float] = None
    max_fraction: float = 0.6
    exclude_source_sink: bool = False
    minimum_wcet: float = 1.0

    def __post_init__(self) -> None:
        if self.target_fraction is not None and not 0.0 <= self.target_fraction < 1.0:
            raise GenerationError(
                f"target_fraction must be within [0, 1), got {self.target_fraction}"
            )
        if not 0.0 < self.max_fraction < 1.0:
            raise GenerationError(
                f"max_fraction must be within (0, 1), got {self.max_fraction}"
            )
        if self.minimum_wcet < 0:
            raise GenerationError("minimum_wcet must be >= 0")

    def with_target_fraction(self, fraction: float) -> "OffloadConfig":
        """Return a copy pinning ``C_off`` to ``fraction`` of the volume."""
        return replace(self, target_fraction=fraction)
