"""Selection and sizing of the offloaded node ``v_off``.

Section 5.1 of the paper: "Once a DAG is generated, we randomly select
``v_off`` among all the nodes.  ``C_off`` is assigned within the interval
``[1, C_off_max]`` where ``C_off_max`` represents a percentage (up to 60 %)
of the DAG's volume."

The evaluation figures, however, sweep the *exact* percentage of ``C_off``
over the task volume ("we generate 100 DAGs for each target value of
``C_off``").  Both policies are implemented:

* :func:`select_offloaded_node` picks ``v_off`` uniformly at random,
* :func:`assign_offloaded_wcet` draws ``C_off`` uniformly below a volume
  fraction, and
* :func:`pin_offloaded_fraction` sets ``C_off`` so the offloaded workload is
  exactly a target fraction of the (resulting) total volume, which is what
  the experiment drivers use.

All functions return *new* tasks; the input task is never modified.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.exceptions import GenerationError
from ..core.graph import NodeId
from ..core.task import DagTask
from .config import OffloadConfig

__all__ = [
    "select_offloaded_node",
    "assign_offloaded_wcet",
    "pin_offloaded_fraction",
    "make_heterogeneous",
]


def select_offloaded_node(
    task: DagTask,
    config: OffloadConfig = OffloadConfig(),
    rng: np.random.Generator | int | None = None,
) -> DagTask:
    """Return a copy of ``task`` with a randomly chosen offloaded node.

    The WCET of the chosen node is left untouched; combine with
    :func:`assign_offloaded_wcet` or :func:`pin_offloaded_fraction` to size
    ``C_off``.
    """
    rng = np.random.default_rng(rng)
    candidates: list[NodeId] = list(task.graph.nodes())
    if config.exclude_source_sink:
        excluded = set(task.graph.sources()) | set(task.graph.sinks())
        candidates = [node for node in candidates if node not in excluded]
    if not candidates:
        raise GenerationError(
            "no candidate node available for offloading "
            "(graph too small for exclude_source_sink)"
        )
    chosen = candidates[int(rng.integers(0, len(candidates)))]
    return task.with_offloaded_node(chosen)


def assign_offloaded_wcet(
    task: DagTask,
    config: OffloadConfig = OffloadConfig(),
    rng: np.random.Generator | int | None = None,
) -> DagTask:
    """Draw ``C_off`` uniformly from ``[minimum_wcet, C_off_max]``.

    ``C_off_max`` is chosen so that the offloaded node can represent at most
    ``config.max_fraction`` of the resulting task volume:
    ``C_off_max = max_fraction * vol_host / (1 - max_fraction)``.
    """
    if task.offloaded_node is None:
        raise GenerationError("task has no offloaded node; call select_offloaded_node first")
    rng = np.random.default_rng(rng)
    host_volume = task.host_volume()
    upper = config.max_fraction * host_volume / (1.0 - config.max_fraction)
    upper = max(upper, config.minimum_wcet)
    wcet = float(rng.uniform(config.minimum_wcet, upper))
    wcet = max(config.minimum_wcet, round(wcet))
    return task.with_offloaded_wcet(wcet)


def pin_offloaded_fraction(
    task: DagTask,
    fraction: float,
    minimum_wcet: float = 1.0,
) -> DagTask:
    """Set ``C_off`` so that ``C_off / vol(G)`` equals ``fraction``.

    ``vol(G)`` includes ``C_off`` itself (this is how the paper's x-axes are
    defined), so the assignment solves ``C_off = fraction * (vol_host +
    C_off)``, i.e. ``C_off = fraction * vol_host / (1 - fraction)``.

    Parameters
    ----------
    task:
        A task with an offloaded node already designated.
    fraction:
        Target value of ``C_off / vol(G)``, in ``[0, 1)``.
    minimum_wcet:
        ``C_off`` is never set below this value (the paper draws it from
        ``[1, ...]``); pass ``0`` to allow a zero-size offloaded node.
    """
    if task.offloaded_node is None:
        raise GenerationError("task has no offloaded node; call select_offloaded_node first")
    if not 0.0 <= fraction < 1.0:
        raise GenerationError(f"fraction must lie in [0, 1), got {fraction}")
    host_volume = task.host_volume()
    if fraction == 0.0:
        wcet = minimum_wcet
    else:
        wcet = fraction * host_volume / (1.0 - fraction)
        wcet = max(minimum_wcet, wcet)
    return task.with_offloaded_wcet(wcet)


def make_heterogeneous(
    task: DagTask,
    config: OffloadConfig = OffloadConfig(),
    rng: np.random.Generator | int | None = None,
    target_fraction: Optional[float] = None,
) -> DagTask:
    """Select ``v_off`` and size ``C_off`` in one call.

    ``target_fraction`` (or ``config.target_fraction``) pins the offloaded
    fraction exactly; otherwise ``C_off`` is drawn uniformly below
    ``config.max_fraction`` of the volume.
    """
    rng = np.random.default_rng(rng)
    with_node = select_offloaded_node(task, config, rng)
    fraction = target_fraction if target_fraction is not None else config.target_fraction
    if fraction is not None:
        return pin_offloaded_fraction(with_node, fraction, config.minimum_wcet)
    return assign_offloaded_wcet(with_node, config, rng)
