"""Batched, memoised exact-makespan oracle over task ensembles.

Figure 7 and the ILP ablation evaluate the exact oracles over *ensembles*:
hundreds of ``(task, m)`` instances across sweep points, core counts and --
within one process -- repeated experiment invocations.  Paired ``C_off``
sweeps re-pin the offloaded WCET on the *same* structures, so distinct
sweep points regularly collapse onto identical instances (small fractions
all clamp to the ``minimum_wcet`` floor).  This module is the batched entry
point that exploits this:

* instances are canonicalised into a structural key (WCETs, edges,
  offloaded designation, platform, solver settings) and **deduplicated
  before any work is dispatched** -- each unique instance is solved exactly
  once per batch;
* solved instances are kept in a process-wide cache, so later batches
  (other sweep points, other experiments, repeated runs in one session)
  reuse them;
* the unique instances are evaluated through
  :func:`repro.parallel.parallel_map`, preserving the library-wide
  determinism contract: the oracles are exact and deterministic, so
  ``jobs=N`` is bit-identical to the serial path and to any cache state.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.task import DagTask
from ..parallel import parallel_map
from .makespan import MakespanMethod, MakespanResult, minimum_makespan

__all__ = ["oracle_cache_clear", "oracle_cache_size", "minimum_makespans_many"]

#: Process-wide ``instance key -> MakespanResult`` memo.  Bounded by
#: :data:`_CACHE_LIMIT`; cleared wholesale when the bound is hit (the
#: entries are cheap to recompute relative to bookkeeping an LRU order).
_ORACLE_CACHE: dict[tuple, MakespanResult] = {}
_CACHE_LIMIT = 100_000


def oracle_cache_clear() -> None:
    """Drop every memoised oracle result (results are unaffected)."""
    _ORACLE_CACHE.clear()


def oracle_cache_size() -> int:
    """Number of currently memoised ``(instance, platform)`` results."""
    return len(_ORACLE_CACHE)


def _instance_key(
    task: DagTask,
    cores: int,
    accelerators: int,
    method: MakespanMethod,
    time_limit: Optional[float],
    warm_start: bool,
) -> tuple:
    """Canonical structural key of one oracle instance.

    Node identifiers are hashable by contract; ``repr`` keeps the key
    picklable and insertion order keeps it deterministic for the paired
    sweeps (re-pinned copies share the construction order).
    """
    graph = task.graph
    return (
        tuple((repr(node), graph.wcet(node)) for node in graph.nodes()),
        tuple((repr(src), repr(dst)) for src, dst in graph.edges()),
        repr(task.offloaded_node),
        cores,
        accelerators,
        method.value,
        time_limit,
        warm_start,
    )


def _solve_one(
    args: tuple[DagTask, int, int, MakespanMethod, Optional[float], bool]
) -> MakespanResult:
    """Worker: solve one deduplicated oracle instance."""
    task, cores, accelerators, method, time_limit, warm_start = args
    return minimum_makespan(
        task,
        cores,
        accelerators,
        method=method,
        time_limit=time_limit,
        warm_start=warm_start,
    )


def minimum_makespans_many(
    tasks: Iterable[DagTask],
    cores: int,
    accelerators: int = 1,
    method: MakespanMethod = MakespanMethod.AUTO,
    time_limit: Optional[float] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    warm_start: bool = True,
) -> list[MakespanResult]:
    """Exact minimum makespans of a batch of tasks on ``m`` cores + device.

    Parameters
    ----------
    tasks:
        The tasks to solve (order is preserved in the result).
    cores, accelerators, method, time_limit, warm_start:
        Passed through to :func:`repro.ilp.makespan.minimum_makespan`
        (``warm_start=False`` forces genuine cold HiGHS solves, e.g. for
        oracle cross-checks).
    jobs:
        Worker-process count for the unique instances; ``None``/``0``/``1``
        run serially.  Results are bit-identical to the serial path.
    use_cache:
        Consult and fill the process-wide oracle memo.  ``False`` forces
        every unique instance to be re-solved (batch-local deduplication
        still applies).

    Returns
    -------
    list[MakespanResult]
        One result per task, aligned with the input order.  Duplicated
        instances share one result object.
    """
    task_list = list(tasks)
    keys = [
        _instance_key(task, cores, accelerators, method, time_limit, warm_start)
        for task in task_list
    ]

    resolved: dict[tuple, MakespanResult] = {}
    pending: list[tuple] = []
    pending_work: list[tuple] = []
    for task, key in zip(task_list, keys):
        if key in resolved:
            continue
        if use_cache and key in _ORACLE_CACHE:
            resolved[key] = _ORACLE_CACHE[key]
            continue
        resolved[key] = None  # type: ignore[assignment]  # placeholder
        pending.append(key)
        pending_work.append(
            (task, cores, accelerators, method, time_limit, warm_start)
        )

    if pending_work:
        solutions = parallel_map(_solve_one, pending_work, jobs=jobs)
        for key, solution in zip(pending, solutions):
            resolved[key] = solution
            if use_cache:
                if len(_ORACLE_CACHE) >= _CACHE_LIMIT:
                    _ORACLE_CACHE.clear()
                _ORACLE_CACHE[key] = solution

    return [resolved[key] for key in keys]
