"""Batched, memoised exact-makespan oracle over task ensembles.

Figure 7 and the ILP ablation evaluate the exact oracles over *ensembles*:
hundreds of ``(task, m)`` instances across sweep points, core counts and --
within one process -- repeated experiment invocations.  Paired ``C_off``
sweeps re-pin the offloaded WCET on the *same* structures, so distinct
sweep points regularly collapse onto identical instances (small fractions
all clamp to the ``minimum_wcet`` floor).  This module is the batched entry
point that exploits this:

* instances are canonicalised into a structural key (WCETs, edges,
  offloaded designation, platform, solver settings) and **deduplicated
  before any work is dispatched** -- each unique instance is solved exactly
  once per batch;
* solved instances are kept in a process-wide cache, so later batches
  (other sweep points, other experiments, repeated runs in one session)
  reuse them;
* the unique instances are evaluated through
  :func:`repro.parallel.parallel_map`, preserving the library-wide
  determinism contract: the oracles are exact and deterministic, so
  ``jobs=N`` is bit-identical to the serial path and to any cache state.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.task import DagTask
from ..parallel import parallel_map, resolve_jobs
from ..resilience import CircuitBreaker, Deadline, fault_point
from .makespan import (
    MakespanMethod,
    MakespanResult,
    degraded_makespan_result,
    minimum_makespan,
)

__all__ = ["oracle_cache_clear", "oracle_cache_size", "minimum_makespans_many"]

#: Process-wide ``instance key -> MakespanResult`` memo.  Bounded by
#: :data:`_CACHE_LIMIT`; cleared wholesale when the bound is hit (the
#: entries are cheap to recompute relative to bookkeeping an LRU order).
_ORACLE_CACHE: dict[tuple, MakespanResult] = {}
_CACHE_LIMIT = 100_000


def oracle_cache_clear() -> None:
    """Drop every memoised oracle result (results are unaffected)."""
    _ORACLE_CACHE.clear()


def oracle_cache_size() -> int:
    """Number of currently memoised ``(instance, platform)`` results."""
    return len(_ORACLE_CACHE)


def _instance_key(
    task: DagTask,
    cores: int,
    accelerators: int,
    method: MakespanMethod,
    time_limit: Optional[float],
    warm_start: bool,
) -> tuple:
    """Canonical structural key of one oracle instance.

    Node identifiers are hashable by contract; ``repr`` keeps the key
    picklable and insertion order keeps it deterministic for the paired
    sweeps (re-pinned copies share the construction order).
    """
    graph = task.graph
    return (
        tuple((repr(node), graph.wcet(node)) for node in graph.nodes()),
        tuple((repr(src), repr(dst)) for src, dst in graph.edges()),
        repr(task.offloaded_node),
        cores,
        accelerators,
        method.value,
        time_limit,
        warm_start,
    )


def _solve_one(
    args: tuple[DagTask, int, int, MakespanMethod, Optional[float], bool]
) -> MakespanResult:
    """Worker: solve one deduplicated oracle instance."""
    task, cores, accelerators, method, time_limit, warm_start = args
    fault_point("oracle.solve")
    return minimum_makespan(
        task,
        cores,
        accelerators,
        method=method,
        time_limit=time_limit,
        warm_start=warm_start,
    )


def _solve_pending(
    pending_work: list[tuple],
    deadline: Deadline,
    time_limit: Optional[float],
    jobs: Optional[int],
) -> list[MakespanResult]:
    """Solve the deduplicated instances under a shared time budget.

    Serially, the deadline is consulted *between* instances: the remaining
    budget caps each solver's ``time_limit``, and once it is exhausted the
    rest of the batch degrades to the bound sandwich instead of queueing
    behind a budget that is already gone.  The budgeted parallel path
    dispatches in worker-sized waves and re-consults the deadline between
    waves -- a running worker cannot be preempted (its solver is capped by
    the remaining budget instead), but no *new* solve is ever queued behind
    a budget that is already spent.  With an unbounded deadline both paths
    reduce exactly to the pre-budget behaviour (one pool, one dispatch).
    """
    workers = resolve_jobs(jobs)
    if workers == 1 or len(pending_work) <= 1:
        solutions = []
        for task, cores, accelerators, method, _limit, warm_start in pending_work:
            if deadline.expired:
                solutions.append(
                    degraded_makespan_result(
                        task,
                        cores,
                        accelerators,
                        method=method,
                        reason="budget-exhausted",
                    )
                )
                continue
            solutions.append(
                _solve_one(
                    (
                        task,
                        cores,
                        accelerators,
                        method,
                        deadline.cap(time_limit),
                        warm_start,
                    )
                )
            )
        return solutions
    if deadline.unbounded:
        work = [
            (task, cores, accelerators, method, time_limit, warm_start)
            for task, cores, accelerators, method, _limit, warm_start in pending_work
        ]
        return parallel_map(_solve_one, work, jobs=jobs)
    solutions: list[MakespanResult] = []
    for start in range(0, len(pending_work), workers):
        wave = pending_work[start : start + workers]
        if deadline.expired:
            solutions.extend(
                degraded_makespan_result(
                    task,
                    cores,
                    accelerators,
                    method=method,
                    reason="budget-exhausted",
                )
                for task, cores, accelerators, method, _limit, warm_start in wave
            )
            continue
        capped = deadline.cap(time_limit)
        solutions.extend(
            parallel_map(
                _solve_one,
                [
                    (task, cores, accelerators, method, capped, warm_start)
                    for task, cores, accelerators, method, _limit, warm_start in wave
                ],
                jobs=jobs,
            )
        )
    return solutions


def minimum_makespans_many(
    tasks: Iterable[DagTask],
    cores: int,
    accelerators: int = 1,
    method: MakespanMethod = MakespanMethod.AUTO,
    time_limit: Optional[float] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    warm_start: bool = True,
    budget: Optional[float] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> list[MakespanResult]:
    """Exact minimum makespans of a batch of tasks on ``m`` cores + device.

    Parameters
    ----------
    tasks:
        The tasks to solve (order is preserved in the result).
    cores, accelerators, method, time_limit, warm_start:
        Passed through to :func:`repro.ilp.makespan.minimum_makespan`
        (``warm_start=False`` forces genuine cold HiGHS solves, e.g. for
        oracle cross-checks).
    jobs:
        Worker-process count for the unique instances; ``None``/``0``/``1``
        run serially.  Results are bit-identical to the serial path.
    use_cache:
        Consult and fill the process-wide oracle memo.  ``False`` forces
        every unique instance to be re-solved (batch-local deduplication
        still applies).
    budget:
        Wall-clock seconds for the *whole batch*.  The remaining budget
        caps each solver's ``time_limit``; instances reached after the
        budget is spent fall back to the verified bound sandwich
        (:func:`~repro.ilp.makespan.degraded_makespan_result`) and come
        back flagged ``degraded=True``.  ``None`` (the default) keeps the
        unbudgeted behaviour bit-identical.
    breaker:
        Optional :class:`~repro.resilience.CircuitBreaker` guarding the
        exact engines.  While open, the batch degrades immediately (no
        solver is invoked); a batch with any degradation or an engine
        exception records a failure, a fully exact batch records a success.

    Returns
    -------
    list[MakespanResult]
        One result per task, aligned with the input order.  Duplicated
        instances share one result object.  Degraded results are never
        written to the process-wide memo.
    """
    task_list = list(tasks)
    keys = [
        _instance_key(task, cores, accelerators, method, time_limit, warm_start)
        for task in task_list
    ]
    deadline = Deadline.after(budget)

    resolved: dict[tuple, MakespanResult] = {}
    pending: list[tuple] = []
    pending_work: list[tuple] = []
    for task, key in zip(task_list, keys):
        if key in resolved:
            continue
        if use_cache and key in _ORACLE_CACHE:
            resolved[key] = _ORACLE_CACHE[key]
            continue
        resolved[key] = None  # type: ignore[assignment]  # placeholder
        pending.append(key)
        pending_work.append(
            (task, cores, accelerators, method, time_limit, warm_start)
        )

    if pending_work:
        if breaker is not None and not breaker.allow():
            for key, work in zip(pending, pending_work):
                resolved[key] = degraded_makespan_result(
                    work[0], cores, accelerators, method=method, reason="breaker-open"
                )
        else:
            try:
                solutions = _solve_pending(pending_work, deadline, time_limit, jobs)
            except BaseException:
                if breaker is not None:
                    breaker.record_failure()
                raise
            any_degraded = False
            for key, solution in zip(pending, solutions):
                resolved[key] = solution
                if solution.degraded:
                    any_degraded = True
                    continue  # a bound sandwich is not an exact answer
                if use_cache and (budget is None or solution.optimal):
                    # A budget-capped non-optimal solve ran under a tighter
                    # effective time limit than its key claims -- keep it
                    # out of the cross-batch memo.
                    if len(_ORACLE_CACHE) >= _CACHE_LIMIT:
                        _ORACLE_CACHE.clear()
                    _ORACLE_CACHE[key] = solution
            if breaker is not None:
                if any_degraded:
                    breaker.record_failure()
                else:
                    breaker.record_success()

    return [resolved[key] for key in keys]
