"""HiGHS-based solver for the time-indexed minimum-makespan ILP.

The paper solves its ILP with IBM CPLEX; this reproduction uses the HiGHS
mixed-integer solver bundled with SciPy (:func:`scipy.optimize.milp`), which
is freely available and returns the same quantity -- the minimum makespan of
a heterogeneous DAG task on ``m`` host cores plus one accelerator -- for the
instance sizes used in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.exceptions import SolverError
from ..core.graph import NodeId
from ..core.task import DagTask
from .formulation import TimeIndexedFormulation, build_formulation

__all__ = ["IlpSolution", "solve_formulation", "solve_minimum_makespan"]


@dataclass
class IlpSolution:
    """Solution of a minimum-makespan ILP instance.

    Attributes
    ----------
    makespan:
        The optimal (or best found, see ``optimal``) makespan.
    start_times:
        Per-node start times decoded from the solution.
    optimal:
        ``True`` when the solver proved optimality within its limits.
    status:
        Raw solver status string, useful for diagnostics.
    variable_count, constraint_count:
        Size of the solved model.
    """

    makespan: float
    start_times: dict[NodeId, float]
    optimal: bool
    status: str
    variable_count: int
    constraint_count: int

    def __float__(self) -> float:
        return float(self.makespan)


def solve_formulation(
    formulation: TimeIndexedFormulation,
    time_limit: Optional[float] = None,
    mip_gap: float = 0.0,
) -> IlpSolution:
    """Solve a previously built :class:`TimeIndexedFormulation` with HiGHS.

    Parameters
    ----------
    formulation:
        The MILP instance.
    time_limit:
        Wall-clock limit in seconds handed to HiGHS (``None``: no limit).
    mip_gap:
        Relative optimality gap at which HiGHS may stop early; ``0`` requires
        a proven optimum.

    Raises
    ------
    SolverError
        If HiGHS reports the instance infeasible or returns no solution.
    """
    options: dict[str, object] = {"disp": False}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_gap:
        options["mip_rel_gap"] = float(mip_gap)

    result = milp(
        c=formulation.objective,
        constraints=LinearConstraint(
            formulation.constraints_matrix,
            formulation.constraints_lower,
            formulation.constraints_upper,
        ),
        integrality=formulation.integrality,
        bounds=Bounds(formulation.variable_lower, formulation.variable_upper),
        options=options,
    )
    if result.x is None:
        raise SolverError(
            f"HiGHS did not return a solution (status={result.status}, "
            f"message={result.message!r})"
        )
    solution = np.asarray(result.x)
    makespan = float(solution[formulation.makespan_index])
    start_times = formulation.start_times_from_solution(solution)
    # The makespan variable is only lower-bounded by completion times; tighten
    # it to the actual completion time of the decoded schedule.
    actual_makespan = max(
        start_times[node] + formulation.task.graph.wcet(node)
        for node in formulation.task.graph.nodes()
    )
    makespan = min(makespan, actual_makespan) if makespan > 0 else actual_makespan
    return IlpSolution(
        makespan=float(actual_makespan),
        start_times=start_times,
        optimal=bool(result.status == 0),
        status=str(result.message),
        variable_count=formulation.variable_count,
        constraint_count=formulation.constraint_count,
    )


def solve_minimum_makespan(
    task: DagTask,
    cores: int,
    accelerators: int = 1,
    horizon: Optional[int] = None,
    time_limit: Optional[float] = None,
    mip_gap: float = 0.0,
) -> IlpSolution:
    """Build and solve the minimum-makespan ILP for a task in one call."""
    formulation = build_formulation(task, cores, accelerators, horizon)
    return solve_formulation(formulation, time_limit=time_limit, mip_gap=mip_gap)
