"""HiGHS-based solver for the time-indexed minimum-makespan ILP.

The paper solves its ILP with IBM CPLEX; this reproduction uses the HiGHS
mixed-integer solver bundled with SciPy (:func:`scipy.optimize.milp`), which
is freely available and returns the same quantity -- the minimum makespan of
a heterogeneous DAG task on ``m`` host cores plus one accelerator -- for the
instance sizes used in the experiments.

Warm start (PR 2)
-----------------
``scipy.optimize.milp`` does not expose HiGHS MIP starts, so the warm start
injects the incumbent through the *model* instead of through the solver:

* the horizon defaults to the best known upper bound -- the better of the
  two list schedules (:func:`repro.ilp.bounds.best_list_schedule`),
  optionally improved by a truncated branch-and-bound probe whose incumbent
  is a genuine schedule and therefore a valid horizon;
* the per-node start windows are tightened to ``[est_i, H - tail_i]``
  (:func:`repro.ilp.formulation.build_formulation`);
* when the upper bound already matches the makespan lower bound the list
  schedule is provably optimal and no MILP is solved at all.

All of this changes model size and solve time only -- never the optimum.
Pass ``warm_start=False`` to reproduce the pre-PR-2 cold model (used by the
cross-oracle property harness so HiGHS genuinely solves every instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.exceptions import SolverError
from ..core.graph import NodeId
from ..core.task import DagTask
from .bounds import best_list_schedule, makespan_lower_bound
from .formulation import TimeIndexedFormulation, _integer_wcets, build_formulation

__all__ = ["IlpSolution", "solve_formulation", "solve_minimum_makespan"]


class _TimeLimitNoSolution(SolverError):
    """HiGHS hit its wall-clock/iteration limit before finding any solution."""


#: State cap of the branch-and-bound probe that improves the warm-start
#: horizon; small enough to be cheap next to any non-trivial MILP solve.
_PROBE_STATE_LIMIT = 5_000


@dataclass
class IlpSolution:
    """Solution of a minimum-makespan ILP instance.

    Attributes
    ----------
    makespan:
        The optimal (or best found, see ``optimal``) makespan.
    start_times:
        Per-node start times decoded from the solution.
    optimal:
        ``True`` when the solver proved optimality within its limits.
    status:
        Raw solver status string, useful for diagnostics.
    variable_count, constraint_count:
        Size of the solved model (``0`` when the warm start proved the list
        schedule optimal and no MILP was built).
    horizon:
        Scheduling horizon of the solved model (``0`` when no MILP was
        built).
    warm_started:
        ``True`` when the model was sized by the warm-start bounds.
    """

    makespan: float
    start_times: dict[NodeId, float]
    optimal: bool
    status: str
    variable_count: int
    constraint_count: int
    horizon: int = 0
    warm_started: bool = False

    def __float__(self) -> float:
        return float(self.makespan)


def solve_formulation(
    formulation: TimeIndexedFormulation,
    time_limit: Optional[float] = None,
    mip_gap: float = 0.0,
) -> IlpSolution:
    """Solve a previously built :class:`TimeIndexedFormulation` with HiGHS.

    Parameters
    ----------
    formulation:
        The MILP instance.
    time_limit:
        Wall-clock limit in seconds handed to HiGHS (``None``: no limit).
    mip_gap:
        Relative optimality gap at which HiGHS may stop early; ``0`` requires
        a proven optimum.

    Raises
    ------
    SolverError
        If HiGHS reports the instance infeasible or returns no solution.
    """
    options: dict[str, object] = {"disp": False}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_gap:
        options["mip_rel_gap"] = float(mip_gap)

    result = milp(
        c=formulation.objective,
        constraints=LinearConstraint(
            formulation.constraints_matrix,
            formulation.constraints_lower,
            formulation.constraints_upper,
        ),
        integrality=formulation.integrality,
        bounds=Bounds(formulation.variable_lower, formulation.variable_upper),
        options=options,
    )
    if result.x is None:
        # scipy.optimize.milp status 1 = iteration or time limit reached;
        # tag that case so callers can distinguish "ran out of budget before
        # any incumbent" (recoverable via a warm-start fallback) from
        # genuine infeasibility or numerical failure (which must stay loud).
        error_type = (
            _TimeLimitNoSolution if result.status == 1 else SolverError
        )
        raise error_type(
            f"HiGHS did not return a solution (status={result.status}, "
            f"message={result.message!r})"
        )
    solution = np.asarray(result.x)
    makespan = float(solution[formulation.makespan_index])
    start_times = formulation.start_times_from_solution(solution)
    # The makespan variable is only lower-bounded by completion times; tighten
    # it to the actual completion time of the decoded schedule.
    actual_makespan = max(
        start_times[node] + formulation.task.graph.wcet(node)
        for node in formulation.task.graph.nodes()
    )
    makespan = min(makespan, actual_makespan) if makespan > 0 else actual_makespan
    return IlpSolution(
        makespan=float(actual_makespan),
        start_times=start_times,
        optimal=bool(result.status == 0),
        status=str(result.message),
        variable_count=formulation.variable_count,
        constraint_count=formulation.constraint_count,
        horizon=formulation.horizon,
    )


def solve_minimum_makespan(
    task: DagTask,
    cores: int,
    accelerators: int = 1,
    horizon: Optional[int] = None,
    time_limit: Optional[float] = None,
    mip_gap: float = 0.0,
    warm_start: bool = True,
) -> IlpSolution:
    """Build and solve the minimum-makespan ILP for a task in one call.

    Parameters
    ----------
    warm_start:
        Size the model with the warm-start bounds (see the module
        docstring): tightened per-node windows, a horizon equal to the best
        known incumbent, and a no-solve short circuit when the incumbent
        matches the lower bound.  ``False`` reproduces the pre-PR-2 cold
        model; an explicitly passed ``horizon`` always wins over the
        warm-start horizon.
    """
    if not warm_start:
        formulation = build_formulation(
            task, cores, accelerators, horizon, tighten_windows=False
        )
        return solve_formulation(formulation, time_limit=time_limit, mip_gap=mip_gap)

    # The warm path must honour the same contract as the cold model even
    # when it short-circuits before building a formulation.
    if cores < 1:
        raise SolverError(f"cores must be >= 1, got {cores}")
    if accelerators < 0:
        raise SolverError(f"accelerators must be >= 0, got {accelerators}")
    _integer_wcets(task)

    upper, upper_starts = best_list_schedule(task, cores, accelerators)
    lower = makespan_lower_bound(task, cores, accelerators)
    if horizon is None and upper <= lower + 1e-9:
        # The list schedule matches the lower bound: provably optimal, and
        # the witnessing schedule is already in hand.
        return IlpSolution(
            makespan=float(upper),
            start_times={node: float(s) for node, s in upper_starts.items()},
            optimal=True,
            status="warm start: list schedule matches the lower bound "
            "(no MILP solved)",
            variable_count=0,
            constraint_count=0,
            warm_started=True,
        )

    best_makespan, best_starts = upper, upper_starts
    if horizon is None:
        # A truncated branch-and-bound probe often finds a better incumbent;
        # its schedule is feasible, so its makespan is a valid horizon.  The
        # probe only shrinks the model -- HiGHS still solves the instance,
        # keeping the two oracles independent.
        from .branch_and_bound import _MAX_NODES, branch_and_bound_makespan

        busy = sum(1 for node in task.graph.nodes() if task.graph.wcet(node) > 0)
        if busy <= _MAX_NODES:
            probe = branch_and_bound_makespan(
                task,
                cores,
                accelerators,
                state_limit=_PROBE_STATE_LIMIT,
                _seed_bounds=(upper, upper_starts, lower),
            )
            if probe.makespan < best_makespan:
                best_makespan, best_starts = probe.makespan, probe.start_times
    incumbent = int(round(best_makespan))

    formulation = build_formulation(
        task,
        cores,
        accelerators,
        horizon if horizon is not None else incumbent,
        tighten_windows=True,
    )
    try:
        solution = solve_formulation(formulation, time_limit=time_limit, mip_gap=mip_gap)
    except _TimeLimitNoSolution:
        if time_limit is None or horizon is not None:
            # Without a limit the failure is genuine; with a caller-supplied
            # horizon the model can be legitimately infeasible (the horizon
            # may undercut the optimum), so the error must surface.  (Other
            # SolverErrors -- infeasibility, numerical failure -- are never
            # caught here: they must stay loud.)
            raise
        # The model was built on our own incumbent horizon, which the
        # warm-start schedule satisfies -- the formulation is feasible by
        # construction and the only way HiGHS comes back empty-handed is a
        # tripped wall-clock limit before it found any solution (hard
        # instances at large WCET horizons).  Degrade to the warm-start
        # schedule instead of failing the whole batch -- mirroring how a
        # tripped limit with an incumbent already returns a sub-optimal
        # result.  Callers see ``optimal=False`` and the schedule still
        # passes :func:`repro.ilp.makespan.verify_schedule`.
        return IlpSolution(
            makespan=float(best_makespan),
            start_times={node: float(s) for node, s in best_starts.items()},
            optimal=False,
            status=(
                "time limit reached before HiGHS produced a solution; "
                "returning the warm-start incumbent"
            ),
            variable_count=formulation.variable_count,
            constraint_count=formulation.constraint_count,
            horizon=formulation.horizon,
            warm_started=True,
        )
    solution.warm_started = True
    return solution
