"""Makespan lower and upper bounds used by the exact solvers.

Both the time-indexed ILP (which needs a finite horizon) and the
branch-and-bound search (which needs pruning bounds) rely on cheap bounds on
the minimum makespan of a heterogeneous DAG task on ``m`` host cores plus one
accelerator:

* :func:`makespan_lower_bound` -- the maximum of the critical-path bound, the
  host load bound and the accelerator load bound; no schedule can beat it;
* :func:`list_schedule_upper_bound` -- the makespan of a concrete
  work-conserving schedule (critical-path-first list scheduling), which the
  optimal makespan can never exceed.
"""

from __future__ import annotations

from typing import Union

from ..core.graph import NodeId
from ..core.task import DagTask
from ..simulation.platform import Platform
from ..simulation.schedulers import BreadthFirstPolicy, CriticalPathFirstPolicy

__all__ = [
    "makespan_lower_bound",
    "list_schedule_upper_bound",
    "best_list_schedule",
]


def makespan_lower_bound(task: DagTask, cores: int, accelerators: int = 1) -> float:
    """A valid lower bound on the makespan of any schedule of the task.

    The bound is ``max(len(G), host_volume / m, C_off / accelerators)``:

    * no schedule finishes before the critical path does,
    * the host workload needs at least ``host_volume / m`` time on ``m``
      cores, and
    * the offloaded workload needs the accelerator for ``C_off``.
    """
    host_volume = task.host_volume()
    accelerator_load = 0.0
    if task.is_heterogeneous and accelerators > 0:
        accelerator_load = task.offloaded_wcet / accelerators
    elif task.is_heterogeneous:
        # Without accelerator the offloaded node runs on the host.
        host_volume += task.offloaded_wcet
    return max(task.critical_path_length, host_volume / cores, accelerator_load)


def best_list_schedule(
    task: DagTask, cores: int, accelerators: int = 1
) -> tuple[float, dict[NodeId, float]]:
    """Best concrete list schedule: ``(makespan, start times)``.

    Two list schedules are evaluated -- critical-path-first and
    breadth-first -- and the one with the smaller makespan is returned
    together with its per-node start times.  The schedule doubles as the
    initial incumbent of the branch-and-bound search and as the warm-start
    upper bound that sizes the time-indexed ILP (horizon and per-node slot
    windows), which is why the witnessing start times matter and not just
    the makespan.
    """
    from ..simulation.engine import simulate

    platform = Platform(host_cores=cores, accelerators=accelerators)
    offload = task.is_heterogeneous and accelerators > 0
    best: tuple[float, dict[NodeId, float]] | None = None
    for policy in (CriticalPathFirstPolicy(), BreadthFirstPolicy()):
        trace = simulate(task, platform, policy, offload_enabled=offload)
        makespan = trace.makespan()
        if best is None or makespan < best[0]:
            best = (
                makespan,
                {record.node: record.start for record in trace.executions},
            )
    assert best is not None
    return best


def list_schedule_upper_bound(
    task: DagTask, cores: int, accelerators: int = 1
) -> float:
    """Makespan of a concrete work-conserving schedule (upper bound).

    Two list schedules are evaluated -- critical-path-first and
    breadth-first -- and the smaller makespan is returned; the optimum can
    only be smaller or equal.
    """
    return best_list_schedule(task, cores, accelerators)[0]


def _as_platform(platform_or_cores: Union[Platform, int]) -> Platform:
    """Internal helper mirroring the simulator's platform coercion."""
    if isinstance(platform_or_cores, Platform):
        return platform_or_cores
    return Platform(host_cores=int(platform_or_cores), accelerators=1)
