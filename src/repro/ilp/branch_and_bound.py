"""Exact branch-and-bound minimum-makespan solver (integer start times).

An independent exact solver used to cross-check the ILP.  The paper only had
CPLEX as its makespan oracle; having two independent oracles materially
increases confidence in the reproduction (see
``benchmarks/bench_ablation_ilp.py`` and ``tests/test_ilp.py``).

Approach
--------
With integer WCETs there always exists an optimal schedule whose start times
are integers: repeatedly left-shifting every node of an optimal schedule to
the earliest instant allowed by its predecessors and by the resource capacity
terminates with every start time equal to a sum of WCETs.  The solver
therefore performs a depth-first search over *integer start-time assignments*
processed in topological order:

* a node may start at any integer time between the completion of its latest
  predecessor and ``incumbent - bottom_level(node)``;
* host nodes are checked against the host-core capacity ``m``, the offloaded
  node against the accelerator capacity;
* branches whose optimistic completion (current makespan, remaining
  critical path, remaining host load) cannot beat the incumbent are pruned;
* the incumbent is initialised with a list-schedule makespan, which is also
  returned if it happens to be optimal.

The search is exponential; it is intended for the *small task* sizes the
paper uses in its ILP comparison (and, in this reproduction, mainly as an
independent check of the HiGHS results on tiny instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.exceptions import SolverError
from ..core.graph import NodeId
from ..core.task import DagTask
from .bounds import list_schedule_upper_bound, makespan_lower_bound

__all__ = ["BranchAndBoundResult", "branch_and_bound_makespan"]

#: Hard limit on the number of non-zero-WCET nodes the search will accept.
_MAX_NODES = 20


@dataclass
class BranchAndBoundResult:
    """Outcome of the branch-and-bound search.

    Attributes
    ----------
    makespan:
        The minimum makespan (equal to the incumbent when the search was
        truncated by ``state_limit``; see ``optimal``).
    start_times:
        A start-time assignment achieving ``makespan``.
    explored_states:
        Number of partial assignments visited.
    optimal:
        ``True`` when the search ran to completion, i.e. the result is the
        proven optimum.
    """

    makespan: float
    start_times: dict[NodeId, float]
    explored_states: int
    optimal: bool

    def __float__(self) -> float:
        return float(self.makespan)


def branch_and_bound_makespan(
    task: DagTask,
    cores: int,
    accelerators: int = 1,
    state_limit: int = 5_000_000,
) -> BranchAndBoundResult:
    """Exact minimum makespan of a (small) heterogeneous DAG task.

    Parameters
    ----------
    task:
        The task to schedule; WCETs must be integers.
    cores:
        Number of identical host cores ``m``.
    accelerators:
        Number of accelerator devices; ``0`` forces the offloaded node (if
        any) onto the host.
    state_limit:
        Safety cap on the number of explored partial assignments; when hit,
        the best incumbent is returned with ``optimal=False``.

    Raises
    ------
    SolverError
        If the task has more than 20 non-trivial nodes or fractional WCETs.
    """
    graph = task.graph
    graph.check_acyclic()
    if cores < 1:
        raise SolverError(f"cores must be >= 1, got {cores}")
    nodes = graph.topological_order()
    for node in nodes:
        wcet = graph.wcet(node)
        if abs(wcet - round(wcet)) > 1e-9:
            raise SolverError(
                f"branch-and-bound requires integer WCETs; node {node!r} has {wcet}"
            )
    busy_nodes = [node for node in nodes if graph.wcet(node) > 0]
    if len(busy_nodes) > _MAX_NODES:
        raise SolverError(
            f"branch-and-bound is limited to {_MAX_NODES} non-trivial nodes, "
            f"task has {len(busy_nodes)}; use the ILP solver instead"
        )

    offloaded: Optional[NodeId] = task.offloaded_node if accelerators > 0 else None
    wcet = {node: int(round(graph.wcet(node))) for node in nodes}
    predecessors = {node: graph.predecessors(node) for node in nodes}
    tail = graph.longest_tail_lengths()
    total_host_work = sum(wcet[node] for node in nodes if node != offloaded)

    incumbent = int(round(list_schedule_upper_bound(task, cores, accelerators)))
    incumbent_starts = _list_schedule_starts(task, cores, accelerators)
    global_lower = makespan_lower_bound(task, cores, accelerators)

    explored = 0
    truncated = False

    starts: dict[NodeId, int] = {}
    # Busy intervals committed so far, per resource class.
    host_intervals: list[tuple[int, int]] = []
    accel_intervals: list[tuple[int, int]] = []

    def capacity_ok(
        intervals: list[tuple[int, int]], start: int, end: int, capacity: int
    ) -> bool:
        """Can an interval [start, end) be added while respecting capacity?"""
        if start == end:
            return True
        points = sorted(
            {start}
            | {s for s, e in intervals if start < s < end}
        )
        for point in points:
            overlap = sum(1 for s, e in intervals if s <= point < e)
            if overlap + 1 > capacity:
                return False
        return True

    def dfs(index: int, current_makespan: int, scheduled_host_work: int) -> None:
        nonlocal incumbent, incumbent_starts, explored, truncated
        if truncated:
            return
        explored += 1
        if explored > state_limit:
            truncated = True
            return
        if index == len(nodes):
            if current_makespan < incumbent:
                incumbent = current_makespan
                incumbent_starts = {node: float(starts[node]) for node in nodes}
            return
        # Optimistic completion of what remains.
        remaining_host = total_host_work - scheduled_host_work
        load_bound = current_makespan if cores == 0 else remaining_host / cores
        if max(current_makespan, load_bound, global_lower) >= incumbent:
            return

        node = nodes[index]
        duration = wcet[node]
        ready = max(
            (starts[p] + wcet[p] for p in predecessors[node]), default=0
        )
        # A node may never start so late that even a perfect continuation
        # fails to beat the incumbent: start + tail(node) <= incumbent - 1.
        latest_start = incumbent - 1 - int(tail[node])
        if duration == 0:
            # Zero-WCET nodes (sync / dummy) are placed at their ready time;
            # delaying them can never help any successor.
            candidate_range = [ready] if ready <= latest_start else []
        else:
            candidate_range = range(ready, latest_start + 1)

        for start in candidate_range:
            end = start + duration
            if duration > 0:
                if node == offloaded:
                    if not capacity_ok(accel_intervals, start, end, accelerators):
                        continue
                    accel_intervals.append((start, end))
                else:
                    if not capacity_ok(host_intervals, start, end, cores):
                        continue
                    host_intervals.append((start, end))
            starts[node] = start
            dfs(
                index + 1,
                max(current_makespan, end),
                scheduled_host_work + (duration if node != offloaded else 0),
            )
            del starts[node]
            if duration > 0:
                if node == offloaded:
                    accel_intervals.pop()
                else:
                    host_intervals.pop()
            if truncated:
                return

    dfs(0, 0, 0)

    return BranchAndBoundResult(
        makespan=float(incumbent),
        start_times=incumbent_starts,
        explored_states=explored,
        optimal=not truncated,
    )


def _list_schedule_starts(
    task: DagTask, cores: int, accelerators: int
) -> dict[NodeId, float]:
    """Start times of a critical-path-first list schedule (initial incumbent)."""
    from ..simulation.engine import simulate
    from ..simulation.platform import Platform
    from ..simulation.schedulers import CriticalPathFirstPolicy

    platform = Platform(host_cores=cores, accelerators=max(accelerators, 1))
    trace = simulate(
        task,
        platform,
        CriticalPathFirstPolicy(),
        offload_enabled=task.is_heterogeneous and accelerators > 0,
    )
    return {record.node: record.start for record in trace.executions}
