"""Exact branch-and-bound minimum-makespan solver with dominance pruning.

An independent exact solver used to cross-check the ILP.  The paper only had
CPLEX as its makespan oracle; having two independent oracles materially
increases confidence in the reproduction (see ``benchmarks/bench_ilp.py`` and
``tests/test_oracle_properties.py``).

Approach
--------
The search enumerates *precedence-feasible node sequences* (linear
extensions) and turns each prefix into a schedule with the serial
schedule-generation scheme: every dispatched node starts at the earliest
instant compatible with its already-scheduled predecessors and with the
host/accelerator capacity profile.  This is exact:

  Take any optimal schedule and sort its nodes by ``(start time, dense
  index)``.  Replaying that sequence with earliest-feasible placement can
  only left-shift nodes -- a node placed earlier never newly overlaps the
  window of a later node of the sequence, because every earlier node of the
  sequence originally *ended* at or before the later node's start or already
  overlapped it -- so the replay produces a feasible schedule whose makespan
  is no larger than the optimum.  Enumerating all sequences therefore visits
  an optimal schedule.

On top of the enumeration the search applies three dominance rules and an
incremental lower bound, all computed from the cached graph kernel of
``repro.core.graph`` (topological order, bottom levels):

* **symmetric-core canonicalisation** -- resources are modelled as capacity
  profiles (``usage[t] <= m``), never as labelled cores, so the ``m!``
  per-core relabellings of every schedule collapse into one search state;
* **equal-WCET node ordering** -- *twin* nodes (equal WCET, same resource
  class, identical predecessor and successor sets) are interchangeable;
  the search only dispatches a twin once all its lower-indexed twins are
  scheduled, removing the factorial blow-up of parallel sections with
  repeated WCETs;
* **scheduled-prefix memoisation** -- two sequence prefixes that schedule
  the same node set with the same resource profiles and the same finish
  times of nodes that still have unscheduled successors generate identical
  subtrees; revisited states are cut (sound because the incumbent only
  improves over time, so the first visit explored the subtree at least as
  permissively);
* **incremental lower-bound pruning** -- each state is bounded by the
  critical path of the remainder (precedence-based earliest starts plus
  cached bottom levels) and by an energetic host-work bound
  ``t + ceil((work released at or after t + committed host work after t)
  / m)``; states that cannot beat the incumbent are discarded, and a state
  in which some unscheduled node can no longer start early enough to beat
  the incumbent is discarded outright (earliest feasible starts only grow
  along a branch).

The incumbent is initialised with the better of two list schedules
(critical-path-first and breadth-first), which is also returned when it
happens to be optimal.

The pre-PR-2 engine -- depth-first enumeration of integer start times in
topological order with only the tail/host-load bound -- is retained verbatim
as ``pruning=False``; the benchmark harness uses it as the unpruned
reference the pruned search must agree with (``BENCH_PR2.json``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

from ..core.exceptions import SolverError
from ..core.graph import NodeId
from ..core.task import DagTask
from .bounds import best_list_schedule, makespan_lower_bound

__all__ = ["BranchAndBoundResult", "branch_and_bound_makespan"]

#: Hard limit on the number of non-zero-WCET nodes the search will accept.
_MAX_NODES = 20

#: Safety cap on the memory held by the scheduled-prefix memo.  Each
#: signature embeds two horizon-length byte strings, so the per-call entry
#: budget is derived from the horizon rather than fixed in entries.
_MEMO_BYTE_LIMIT = 64 << 20


@dataclass
class BranchAndBoundResult:
    """Outcome of the branch-and-bound search.

    Attributes
    ----------
    makespan:
        The minimum makespan (equal to the incumbent when the search was
        truncated by ``state_limit``; see ``optimal``).
    start_times:
        A start-time assignment achieving ``makespan``.
    explored_states:
        Number of partial assignments visited.
    optimal:
        ``True`` when the search ran to completion, i.e. the result is the
        proven optimum.
    engine:
        ``"pruned"`` for the PR-2 dominance-pruned sequence search,
        ``"reference"`` for the retained unpruned start-time enumeration.
    memo_hits:
        Number of states cut by the scheduled-prefix memo (``0`` for the
        reference engine).
    """

    makespan: float
    start_times: dict[NodeId, float]
    explored_states: int
    optimal: bool
    engine: str = "pruned"
    memo_hits: int = 0

    def __float__(self) -> float:
        return float(self.makespan)


def branch_and_bound_makespan(
    task: DagTask,
    cores: int,
    accelerators: int = 1,
    state_limit: int = 5_000_000,
    pruning: bool = True,
    time_limit: Optional[float] = None,
    _seed_bounds: Optional[tuple[float, dict, float]] = None,
) -> BranchAndBoundResult:
    """Exact minimum makespan of a (small) heterogeneous DAG task.

    Parameters
    ----------
    task:
        The task to schedule; WCETs must be integers.
    cores:
        Number of identical host cores ``m``.
    accelerators:
        Number of accelerator devices; ``0`` forces the offloaded node (if
        any) onto the host.
    state_limit:
        Safety cap on the number of explored partial assignments; when hit,
        the best incumbent is returned with ``optimal=False``.
    pruning:
        ``True`` (default) runs the dominance-pruned sequence search;
        ``False`` runs the retained pre-PR-2 start-time enumeration, kept
        as the unpruned reference for benchmarks and cross-checks.
    time_limit:
        Optional wall-clock budget in seconds for the pruned search
        (checked every few thousand states); when exceeded the incumbent is
        returned with ``optimal=False``.  A tripped limit trades the
        bit-determinism of the result for bounded runtime, exactly like the
        ILP solver's ``time_limit``.  Ignored by the frozen reference
        engine.
    _seed_bounds:
        Internal: precomputed ``(upper, upper_starts, lower)`` incumbent
        bounds, so callers that already evaluated the list schedules (the
        ILP warm start) do not pay for them twice.

    Raises
    ------
    SolverError
        If the task has more than 20 non-trivial nodes or fractional WCETs.
    """
    graph = task.graph
    graph.check_acyclic()
    if cores < 1:
        raise SolverError(f"cores must be >= 1, got {cores}")
    nodes = graph.topological_order()
    for node in nodes:
        wcet = graph.wcet(node)
        if abs(wcet - round(wcet)) > 1e-9:
            raise SolverError(
                f"branch-and-bound requires integer WCETs; node {node!r} has {wcet}"
            )
    busy_nodes = [node for node in nodes if graph.wcet(node) > 0]
    if len(busy_nodes) > _MAX_NODES:
        raise SolverError(
            f"branch-and-bound is limited to {_MAX_NODES} non-trivial nodes, "
            f"task has {len(busy_nodes)}; use the ILP solver instead"
        )
    if pruning:
        return _search_pruned(
            task, cores, accelerators, state_limit, time_limit, _seed_bounds
        )
    return _search_reference(task, cores, accelerators, state_limit)


def _search_pruned(
    task: DagTask,
    cores: int,
    accelerators: int,
    state_limit: int,
    time_limit: Optional[float] = None,
    seed_bounds: Optional[tuple[float, dict, float]] = None,
) -> BranchAndBoundResult:
    """Dominance-pruned serial schedule-generation search (see module docs)."""
    graph = task.graph
    nodes = graph.topological_order()
    n = len(nodes)
    if seed_bounds is None:
        ub, ub_starts = best_list_schedule(task, cores, accelerators)
        lower = makespan_lower_bound(task, cores, accelerators)
    else:
        ub, ub_starts, lower = seed_bounds
    incumbent = int(round(ub))
    incumbent_starts = {node: float(ub_starts[node]) for node in nodes}
    global_lower = int(math.ceil(lower - 1e-9))
    if not nodes or incumbent <= global_lower:
        # The list schedule already matches the lower bound: proven optimal.
        return BranchAndBoundResult(
            makespan=float(incumbent),
            start_times=incumbent_starts,
            explored_states=0,
            optimal=True,
        )

    index = {node: i for i, node in enumerate(nodes)}
    wcet = [int(round(graph.wcet(node))) for node in nodes]
    offloaded: Optional[int] = (
        index[task.offloaded_node]
        if task.offloaded_node is not None and accelerators > 0
        else None
    )
    accel_cap = max(accelerators, 1)
    # Dense indices follow the cached topological order, so predecessors of a
    # node always carry a smaller index than the node itself.
    preds = [sorted(index[p] for p in graph.predecessors(node)) for node in nodes]
    succs = [sorted(index[s] for s in graph.successors(node)) for node in nodes]
    tail_map = graph.longest_tail_lengths()
    tail = [int(round(tail_map[node])) for node in nodes]

    # Equal-WCET node ordering: twins (same WCET, same resource class, same
    # neighbourhoods) may only be dispatched in dense-index order.
    twin_prev = [-1] * n
    twin_groups: dict[tuple, int] = {}
    for i in range(n):
        key = (wcet[i], i == offloaded, tuple(preds[i]), tuple(succs[i]))
        if key in twin_groups:
            twin_prev[i] = twin_groups[key]
        twin_groups[key] = i

    horizon = incumbent  # every considered interval ends before the incumbent
    host_usage = bytearray(horizon)
    accel_usage = bytearray(horizon)
    starts = [-1] * n
    finish = [0] * n
    unscheduled_preds = [len(preds[i]) for i in range(n)]
    host_intervals: list[tuple[int, int]] = []
    scheduled_mask = 0
    full_mask = (1 << n) - 1

    explored = 0
    truncated = False
    memo_hits = 0
    memo: set[tuple] = set()
    # Entry budget sized so the memo stays within _MEMO_BYTE_LIMIT even for
    # horizon-length profile strings (~2*horizon bytes plus tuple overhead).
    memo_limit = max(1 << 14, _MEMO_BYTE_LIMIT // (2 * horizon + 128))

    def earliest_start(i: int, latest: int) -> Optional[int]:
        """Earliest feasible start of node ``i``, or ``None`` if > ``latest``."""
        ready = 0
        for p in preds[i]:
            if finish[p] > ready:
                ready = finish[p]
        duration = wcet[i]
        if duration == 0:
            return ready if ready <= latest else None
        usage, cap = (
            (accel_usage, accel_cap) if i == offloaded else (host_usage, cores)
        )
        t = ready
        while t <= latest:
            conflict = -1
            for x in range(t + duration - 1, t - 1, -1):
                if usage[x] >= cap:
                    conflict = x
                    break
            if conflict < 0:
                return t
            t = conflict + 1
        return None

    def lower_bound(current_makespan: int) -> int:
        """Critical-path-of-remainder and energetic host-work bound."""
        est = [0] * n
        bound = current_makespan
        host_events: set[int] = set()
        for i in range(n):  # topological order
            if scheduled_mask >> i & 1:
                continue
            ready = 0
            for p in preds[i]:
                done = finish[p] if scheduled_mask >> p & 1 else est[p] + wcet[p]
                if done > ready:
                    ready = done
            est[i] = ready
            if ready + tail[i] > bound:
                bound = ready + tail[i]
            if i != offloaded and wcet[i] > 0:
                host_events.add(ready)
        for t in host_events:
            work = 0
            for i in range(n):
                if (
                    not scheduled_mask >> i & 1
                    and i != offloaded
                    and est[i] >= t
                ):
                    work += wcet[i]
            committed = 0
            for s, e in host_intervals:
                if e > t:
                    committed += e - max(s, t)
            candidate = t + -(-(work + committed) // cores)
            if candidate > bound:
                bound = candidate
        return bound

    def signature() -> tuple:
        """Canonical state key: scheduled set, profiles, relevant finishes."""
        relevant = []
        for i in range(n):
            if scheduled_mask >> i & 1:
                for s in succs[i]:
                    if not scheduled_mask >> s & 1:
                        relevant.append(finish[i])
                        break
        return (
            scheduled_mask,
            bytes(host_usage),
            bytes(accel_usage),
            tuple(relevant),
        )

    def place(i: int, start: int) -> None:
        nonlocal scheduled_mask
        starts[i] = start
        end = start + wcet[i]
        finish[i] = end
        if wcet[i]:
            if i == offloaded:
                for x in range(start, end):
                    accel_usage[x] += 1
            else:
                for x in range(start, end):
                    host_usage[x] += 1
                host_intervals.append((start, end))
        for s in succs[i]:
            unscheduled_preds[s] -= 1
        scheduled_mask |= 1 << i

    def unplace(i: int) -> None:
        nonlocal scheduled_mask
        scheduled_mask &= ~(1 << i)
        for s in succs[i]:
            unscheduled_preds[s] += 1
        start, end = starts[i], finish[i]
        if wcet[i]:
            if i == offloaded:
                for x in range(start, end):
                    accel_usage[x] -= 1
            else:
                for x in range(start, end):
                    host_usage[x] -= 1
                host_intervals.pop()
        starts[i] = -1

    deadline = time.perf_counter() + time_limit if time_limit is not None else None

    def dfs(current_makespan: int) -> None:
        nonlocal incumbent, incumbent_starts, explored, truncated, memo_hits
        if truncated:
            return
        explored += 1
        if explored > state_limit:
            truncated = True
            return
        if (
            deadline is not None
            and explored % 2048 == 0
            and time.perf_counter() > deadline
        ):
            truncated = True
            return
        if scheduled_mask == full_mask:
            if current_makespan < incumbent:
                incumbent = current_makespan
                incumbent_starts = {nodes[i]: float(starts[i]) for i in range(n)}
            return
        if lower_bound(current_makespan) >= incumbent:
            return
        key = signature()
        if key in memo:
            memo_hits += 1
            return
        if len(memo) < memo_limit:
            memo.add(key)

        children: list[tuple[int, int, int]] = []
        for i in range(n):
            if scheduled_mask >> i & 1 or unscheduled_preds[i]:
                continue
            if twin_prev[i] >= 0 and not scheduled_mask >> twin_prev[i] & 1:
                continue  # equal-WCET ordering: earlier twin goes first
            start = earliest_start(i, incumbent - 1 - tail[i])
            if start is None:
                # Earliest feasible starts only grow along a branch, so no
                # extension of this prefix can beat the incumbent.
                return
            children.append((start, -tail[i], i))
        children.sort()
        for start, _neg_tail, i in children:
            if truncated:
                return
            if start + tail[i] >= incumbent:
                continue  # the incumbent improved since the child was built
            place(i, start)
            dfs(current_makespan if finish[i] < current_makespan else finish[i])
            unplace(i)

    dfs(0)

    return BranchAndBoundResult(
        makespan=float(incumbent),
        start_times=incumbent_starts,
        explored_states=explored,
        optimal=not truncated,
        memo_hits=memo_hits,
    )


def _search_reference(
    task: DagTask, cores: int, accelerators: int, state_limit: int
) -> BranchAndBoundResult:
    """Unpruned pre-PR-2 engine: integer start-time enumeration.

    Kept verbatim (modulo the shared incumbent initialisation) as the
    reference the pruned search is benchmarked and cross-checked against.
    """
    graph = task.graph
    nodes = graph.topological_order()
    offloaded: Optional[NodeId] = task.offloaded_node if accelerators > 0 else None
    wcet = {node: int(round(graph.wcet(node))) for node in nodes}
    predecessors = {node: graph.predecessors(node) for node in nodes}
    tail = graph.longest_tail_lengths()
    total_host_work = sum(wcet[node] for node in nodes if node != offloaded)

    ub, ub_starts = best_list_schedule(task, cores, accelerators)
    incumbent = int(round(ub))
    incumbent_starts = {node: float(ub_starts[node]) for node in nodes}
    global_lower = makespan_lower_bound(task, cores, accelerators)

    explored = 0
    truncated = False

    starts: dict[NodeId, int] = {}
    # Busy intervals committed so far, per resource class.
    host_intervals: list[tuple[int, int]] = []
    accel_intervals: list[tuple[int, int]] = []

    def capacity_ok(
        intervals: list[tuple[int, int]], start: int, end: int, capacity: int
    ) -> bool:
        """Can an interval [start, end) be added while respecting capacity?"""
        if start == end:
            return True
        points = sorted(
            {start}
            | {s for s, e in intervals if start < s < end}
        )
        for point in points:
            overlap = sum(1 for s, e in intervals if s <= point < e)
            if overlap + 1 > capacity:
                return False
        return True

    def dfs(index: int, current_makespan: int, scheduled_host_work: int) -> None:
        nonlocal incumbent, incumbent_starts, explored, truncated
        if truncated:
            return
        explored += 1
        if explored > state_limit:
            truncated = True
            return
        if index == len(nodes):
            if current_makespan < incumbent:
                incumbent = current_makespan
                incumbent_starts = {node: float(starts[node]) for node in nodes}
            return
        # Optimistic completion of what remains.
        remaining_host = total_host_work - scheduled_host_work
        load_bound = current_makespan if cores == 0 else remaining_host / cores
        if max(current_makespan, load_bound, global_lower) >= incumbent:
            return

        node = nodes[index]
        duration = wcet[node]
        ready = max(
            (starts[p] + wcet[p] for p in predecessors[node]), default=0
        )
        # A node may never start so late that even a perfect continuation
        # fails to beat the incumbent: start + tail(node) <= incumbent - 1.
        latest_start = incumbent - 1 - int(tail[node])
        if duration == 0:
            # Zero-WCET nodes (sync / dummy) are placed at their ready time;
            # delaying them can never help any successor.
            candidate_range = [ready] if ready <= latest_start else []
        else:
            candidate_range = range(ready, latest_start + 1)

        for start in candidate_range:
            end = start + duration
            if duration > 0:
                if node == offloaded:
                    if not capacity_ok(accel_intervals, start, end, accelerators):
                        continue
                    accel_intervals.append((start, end))
                else:
                    if not capacity_ok(host_intervals, start, end, cores):
                        continue
                    host_intervals.append((start, end))
            starts[node] = start
            dfs(
                index + 1,
                max(current_makespan, end),
                scheduled_host_work + (duration if node != offloaded else 0),
            )
            del starts[node]
            if duration > 0:
                if node == offloaded:
                    accel_intervals.pop()
                else:
                    host_intervals.pop()
            if truncated:
                return

    dfs(0, 0, 0)

    return BranchAndBoundResult(
        makespan=float(incumbent),
        start_times=incumbent_starts,
        explored_states=explored,
        optimal=not truncated,
        engine="reference",
    )
