"""Time-indexed ILP formulation of the minimum-makespan problem.

The paper evaluates the accuracy of its response-time bounds against "an ILP
formulation (based on [13]) that computes the minimum time interval needed to
execute a given heterogeneous DAG task on ``m`` cores and one accelerator
device", solved with IBM CPLEX.  CPLEX is not available offline, so this
module builds the equivalent mixed-integer program in the standard
time-indexed form and :mod:`repro.ilp.solver` solves it with the HiGHS solver
shipped with SciPy (:func:`scipy.optimize.milp`).

Model
-----
Let ``H`` be a horizon no smaller than the optimal makespan (a list-schedule
makespan is used).  For every node ``i`` and slot ``t in {0, ..., H - C_i}``
the binary variable ``x[i, t]`` equals 1 iff node ``i`` starts at time ``t``.
A continuous variable ``M`` models the makespan.

* each node starts exactly once: ``sum_t x[i, t] = 1``;
* precedence ``(i, j)``: ``start_j >= start_i + C_i`` with
  ``start_i = sum_t t * x[i, t]``;
* host capacity: for every slot ``t``, the number of host nodes executing at
  ``t`` (i.e. started in ``(t - C_i, t]``) is at most ``m``;
* accelerator capacity: likewise, at most the number of devices (1);
* makespan: ``M >= start_i + C_i`` for every node;
* objective: minimise ``M``.

Warm-start window tightening (PR 2)
-----------------------------------
The number of binary variables is ``sum_i |window_i|``, so the model size is
governed by the per-node start windows.  With ``tighten_windows=True`` (the
default) the window of node ``i`` is reduced from ``[0, H - C_i]`` to
``[est_i, H - tail_i]`` where ``est_i`` is the precedence-based earliest
start (longest path into ``i``) and ``tail_i`` the bottom level (longest
path from ``i``, inclusive), both read from the cached graph kernel.  Any
schedule with makespan ``<= H`` satisfies ``start_i >= est_i`` and
``start_i + tail_i <= H``, so the reduction never cuts off a feasible
schedule within the horizon -- it only removes slots no optimal schedule
can use.  Combined with a warm-start horizon equal to the best known upper
bound (list schedule, optionally improved by a truncated branch-and-bound
probe; see :func:`repro.ilp.solver.solve_minimum_makespan`) this typically
shrinks the model severalfold.

WCETs must be integers (the paper draws them from ``[1, 100]``); the
formulation refuses fractional WCETs rather than silently rounding them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy import sparse

from ..core.exceptions import SolverError
from ..core.graph import NodeId
from ..core.task import DagTask
from .bounds import list_schedule_upper_bound, makespan_lower_bound

__all__ = ["TimeIndexedFormulation", "build_formulation"]


@dataclass
class TimeIndexedFormulation:
    """A fully materialised time-indexed MILP instance.

    The arrays follow the conventions of :func:`scipy.optimize.milp`:
    minimise ``c @ x`` subject to ``lower <= A @ x <= upper``, with
    integrality flags and variable bounds.

    Attributes
    ----------
    task, cores, accelerators, horizon:
        Problem description the formulation was built for.
    objective:
        The cost vector ``c``.
    constraints_matrix:
        Sparse constraint matrix ``A`` (CSR).
    constraints_lower, constraints_upper:
        Row bounds.
    integrality:
        Per-variable integrality flags (1 = integer).
    variable_lower, variable_upper:
        Variable bounds.
    start_variable_index:
        ``(node, t) -> column`` mapping for the binary start variables.
    makespan_index:
        Column of the makespan variable ``M``.
    slot_windows:
        Per-node inclusive start-slot window ``node -> (first, last)`` used
        to build the model (tightened when ``tighten_windows`` was set).
    """

    task: DagTask
    cores: int
    accelerators: int
    horizon: int
    objective: np.ndarray
    constraints_matrix: sparse.csr_matrix
    constraints_lower: np.ndarray
    constraints_upper: np.ndarray
    integrality: np.ndarray
    variable_lower: np.ndarray
    variable_upper: np.ndarray
    start_variable_index: dict[tuple[NodeId, int], int] = field(default_factory=dict)
    makespan_index: int = 0
    slot_windows: dict[NodeId, tuple[int, int]] = field(default_factory=dict)

    @property
    def variable_count(self) -> int:
        """Total number of decision variables."""
        return int(self.objective.shape[0])

    @property
    def constraint_count(self) -> int:
        """Total number of constraint rows."""
        return int(self.constraints_matrix.shape[0])

    def start_times_from_solution(self, solution: np.ndarray) -> dict[NodeId, float]:
        """Decode the per-node start times from a solver solution vector."""
        starts: dict[NodeId, float] = {}
        for (node, slot), column in self.start_variable_index.items():
            if solution[column] > 0.5:
                starts[node] = float(slot)
        missing = set(self.task.graph.nodes()) - set(starts)
        if missing:
            raise SolverError(
                f"solution does not assign a start slot to nodes {sorted(map(repr, missing))}"
            )
        return starts


def _integer_wcets(task: DagTask) -> dict[NodeId, int]:
    wcets: dict[NodeId, int] = {}
    for node in task.graph.nodes():
        wcet = task.graph.wcet(node)
        if abs(wcet - round(wcet)) > 1e-9:
            raise SolverError(
                "the time-indexed ILP requires integer WCETs; "
                f"node {node!r} has WCET {wcet}"
            )
        wcets[node] = int(round(wcet))
    return wcets


def build_formulation(
    task: DagTask,
    cores: int,
    accelerators: int = 1,
    horizon: Optional[int] = None,
    tighten_windows: bool = True,
) -> TimeIndexedFormulation:
    """Construct the time-indexed MILP for a heterogeneous DAG task.

    Parameters
    ----------
    task:
        The task to schedule.  A homogeneous task (no offloaded node) is
        accepted: every node is then a host node.
    cores:
        Number of identical host cores ``m``.
    accelerators:
        Number of accelerator devices (the paper's model uses one).
    horizon:
        Scheduling horizon ``H``.  Defaults to the makespan of a list
        schedule, which is always sufficient; passing a smaller value makes
        the model infeasible if it cuts the optimum off.
    tighten_windows:
        Restrict each node's start window to ``[est_i, H - tail_i]``
        (see the module docstring) instead of ``[0, H - C_i]``.  Never
        changes the optimum; ``False`` reproduces the pre-PR-2 model and is
        used by benchmarks to measure the reduction.
    """
    if cores < 1:
        raise SolverError(f"cores must be >= 1, got {cores}")
    if accelerators < 0:
        raise SolverError(f"accelerators must be >= 0, got {accelerators}")
    wcets = _integer_wcets(task)
    graph = task.graph
    offloaded = task.offloaded_node if accelerators > 0 else None

    if horizon is None:
        horizon = int(round(list_schedule_upper_bound(task, cores, accelerators)))
    lower_bound = makespan_lower_bound(task, cores, accelerators)
    if horizon < lower_bound:
        raise SolverError(
            f"horizon {horizon} is below the makespan lower bound {lower_bound}"
        )

    nodes = graph.nodes()
    if tighten_windows:
        finish = graph.earliest_finish_times()
        tails = graph.longest_tail_lengths()
        windows = {
            node: (
                int(round(finish[node] - graph.wcet(node))),
                horizon - int(round(tails[node])),
            )
            for node in nodes
        }
    else:
        windows = {node: (0, horizon - wcets[node]) for node in nodes}

    columns: dict[tuple[NodeId, int], int] = {}
    next_column = 0
    for node in nodes:
        first, last = windows[node]
        if first > last:
            raise SolverError(
                f"node {node!r} (WCET {wcets[node]}) does not fit in horizon {horizon}"
            )
        for slot in range(first, last + 1):
            columns[(node, slot)] = next_column
            next_column += 1
    makespan_index = next_column
    variable_count = next_column + 1

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    lower: list[float] = []
    upper: list[float] = []
    row = 0

    def add_entry(r: int, c: int, value: float) -> None:
        rows.append(r)
        cols.append(c)
        data.append(value)

    def slots_of(node: NodeId) -> range:
        first, last = windows[node]
        return range(first, last + 1)

    # (1) Every node starts exactly once.
    for node in nodes:
        for slot in slots_of(node):
            add_entry(row, columns[(node, slot)], 1.0)
        lower.append(1.0)
        upper.append(1.0)
        row += 1

    # (2) Precedence constraints: start_j - start_i >= C_i.
    for src, dst in graph.edges():
        for slot in slots_of(src):
            add_entry(row, columns[(src, slot)], -float(slot))
        for slot in slots_of(dst):
            add_entry(row, columns[(dst, slot)], float(slot))
        lower.append(float(wcets[src]))
        upper.append(np.inf)
        row += 1

    # (3) Host capacity per slot.
    host_nodes = [node for node in nodes if node != offloaded and wcets[node] > 0]
    for slot in range(horizon):
        touched = False
        for node in host_nodes:
            first, last = windows[node]
            earliest = max(first, slot - wcets[node] + 1)
            latest = min(slot, last)
            for start in range(earliest, latest + 1):
                add_entry(row, columns[(node, start)], 1.0)
                touched = True
        if touched:
            lower.append(-np.inf)
            upper.append(float(cores))
            row += 1
        else:
            # Remove the empty row bookkeeping (no entries were added).
            pass

    # (4) Accelerator capacity per slot (only when an offloaded node exists).
    if offloaded is not None and wcets[offloaded] > 0 and accelerators >= 0:
        first, last = windows[offloaded]
        for slot in range(horizon):
            earliest = max(first, slot - wcets[offloaded] + 1)
            latest = min(slot, last)
            if earliest > latest:
                continue
            for start in range(earliest, latest + 1):
                add_entry(row, columns[(offloaded, start)], 1.0)
            lower.append(-np.inf)
            upper.append(float(max(accelerators, 0)))
            row += 1

    # (5) Makespan definition: M - start_i >= C_i for every node.
    for node in nodes:
        for slot in slots_of(node):
            add_entry(row, columns[(node, slot)], -float(slot))
        add_entry(row, makespan_index, 1.0)
        lower.append(float(wcets[node]))
        upper.append(np.inf)
        row += 1

    matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(row, variable_count)
    )
    objective = np.zeros(variable_count)
    objective[makespan_index] = 1.0
    integrality = np.ones(variable_count)
    integrality[makespan_index] = 0.0
    variable_lower = np.zeros(variable_count)
    variable_upper = np.ones(variable_count)
    variable_lower[makespan_index] = float(lower_bound)
    variable_upper[makespan_index] = float(horizon)

    return TimeIndexedFormulation(
        task=task,
        cores=cores,
        accelerators=accelerators,
        horizon=horizon,
        objective=objective,
        constraints_matrix=matrix,
        constraints_lower=np.array(lower),
        constraints_upper=np.array(upper),
        integrality=integrality,
        variable_lower=variable_lower,
        variable_upper=variable_upper,
        start_variable_index=columns,
        makespan_index=makespan_index,
        slot_windows=windows,
    )
